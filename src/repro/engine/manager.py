"""The engine: per-isolation-level operation semantics.

Implements the locking/multiversion recipes of [2] that the paper's
theorems assume:

===================  =========================  ==========================
level                reads                      writes
===================  =========================  ==========================
READ UNCOMMITTED     no locks (sees dirty data) long X locks, in place
READ COMMITTED       short S locks              long X locks, in place
READ COMMITTED FCW   short S locks + version    long X locks + first-
                     recording                  committer-wins validation
REPEATABLE READ      long S locks               long X locks, in place
SERIALIZABLE         long S locks + long        long X locks + phantom
                     predicate read locks       checks against predicates
SNAPSHOT             private begin snapshot,    buffered, applied at commit
                     never waits                after first-committer-wins
                                                validation
===================  =========================  ==========================

Reads at READ COMMITTED and above never observe uncommitted row images:
when a row is X-locked by another transaction, the *committed* image is
used to evaluate predicates, and a matching row blocks the reader (the
short/long S lock cannot be granted) — exactly the behaviour of the [2]
lock protocols.

All operations are non-blocking in the thread sense: they either complete
or raise :class:`repro.engine.locks.WouldBlock`; the scheduler owns retry
and deadlock policy.  Every operation appends to ``history`` for the
serializability and anomaly analyses in :mod:`repro.sched`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.core.state import DbState
from repro.engine.locks import EXCLUSIVE, LONG, LockManager, SHARED, SHORT, WouldBlock
from repro.engine.storage import RID, VersionedStore, strip_rid
from repro.engine.transaction import (
    ABORTED,
    ACTIVE,
    ALL_LEVELS,
    COMMITTED,
    SNAPSHOT,
    Txn,
)
from repro.errors import EngineError, FirstCommitterWinsAbort, TransactionAborted


@dataclass
class HistoryOp:
    """One recorded operation, for offline schedule analysis."""

    tick: int
    txn_id: int
    kind: str  # r | w | ins | del | upd | begin | commit | abort
    key: tuple | None = None
    version: int | None = None
    dirty_from: int | None = None
    info: dict = field(default_factory=dict)


class Engine:
    """A cooperative, deterministic multi-level transactional engine."""

    def __init__(self, initial: DbState, phantom_protection: bool = True) -> None:
        self.store = VersionedStore.from_state(initial)
        self.locks = LockManager()
        self.txns: dict = {}
        self.history: list = []
        self._next_id = 1
        self.tick = 0
        #: ablation switch (DESIGN.md §6.3): with predicate locking off,
        #: INSERTs are never blocked by other transactions' predicates —
        #: phantoms leak into SERIALIZABLE readers and into UPDATE/DELETE
        #: predicates, breaking e.g. New_Order even at READ COMMITTED
        self.phantom_protection = phantom_protection

    # -- lifecycle -----------------------------------------------------------
    def begin(self, level: str) -> Txn:
        if level not in ALL_LEVELS:
            raise EngineError(f"unknown isolation level {level!r}")
        txn = Txn(txn_id=self._next_id, level=level, begin_tick=self.tick)
        self._next_id += 1
        if txn.uses_snapshot:
            txn.snapshot_state = self.store.snapshot()
            txn.begin_versions = dict(self.store.versions)
        self.txns[txn.txn_id] = txn
        self._record(txn, "begin")
        return txn

    def commit(self, txn: Txn) -> None:
        self._require_active(txn)
        if txn.uses_snapshot:
            self._commit_snapshot(txn)
        else:
            self.store.reflect_commit(txn.redo)
        self.locks.release_all(txn.txn_id)
        txn.status = COMMITTED
        txn.commit_tick = self.tick
        self._record(txn, "commit", info=self._txn_footprint(txn))

    def abort(self, txn: Txn, reason: str = "explicit") -> None:
        if txn.status in (COMMITTED, ABORTED):
            return
        if not txn.uses_snapshot:
            for entry in reversed(txn.undo):
                self._apply_undo(entry)
        self.locks.release_all(txn.txn_id)
        txn.status = ABORTED
        txn.abort_reason = reason
        info = self._txn_footprint(txn)
        info["reason"] = reason
        self._record(txn, "abort", info=info)

    def _commit_snapshot(self, txn: Txn) -> None:
        begin_versions = getattr(txn, "begin_versions", {})
        for key in txn.write_set:
            if self.store.version_of(key) > begin_versions.get(key, 0):
                self.abort(txn, reason=f"first-committer-wins on {key}")
                raise FirstCommitterWinsAbort(txn.txn_id, str(key))
            holders = self.locks.holders(key)
            others = {t for t, mode in holders.items() if t != txn.txn_id and mode == EXCLUSIVE}
            if others:
                raise WouldBlock(others, key=key, mode=EXCLUSIVE)
        # apply buffered writes to the live state, then reflect as committed
        for entry in txn.redo:
            kind = entry[0]
            if kind == "item":
                _k, name, value = entry
                self.store.write_item(name, value)
            elif kind == "field":
                _k, array, index, attr, value = entry
                self.store.write_field(array, index, attr, value)
            elif kind == "insert":
                _k, table, rid, row = entry
                stored = dict(row)
                stored[RID] = rid
                self.store.current.insert_row(table, stored)
            elif kind == "delete":
                _k, table, rid, _row = entry
                self.store.current.delete_rows(table, lambda r: r.get(RID) == rid)
            elif kind == "update":
                _k, table, rid, changes = entry
                row = self.store.find_row(table, rid)
                if row is not None:
                    row.update(changes)
        self.store.reflect_commit(txn.redo)

    # -- conventional reads ----------------------------------------------------
    def read_item(self, txn: Txn, name: str):
        self._require_active(txn)
        if txn.uses_snapshot:
            value = txn.snapshot_state.read_item(name)
            self._record(txn, "r", ("item", name), info={"value": value})
            return value
        key = ("item", name)
        self._read_lock(txn, key)
        value = self.store.read_item(name)
        txn.read_versions.setdefault(key, self.store.version_of(key))
        self._record(
            txn, "r", key, dirty_from=self._dirty_writer(txn, key), info={"value": value}
        )
        return value

    def read_field(self, txn: Txn, array: str, index: int, attr):
        self._require_active(txn)
        if txn.uses_snapshot:
            value = txn.snapshot_state.read_field(array, index, attr)
            self._record(txn, "r", ("record", array, index), info={"attr": attr, "value": value})
            return value
        key = ("record", array, index)
        self._read_lock(txn, key)
        value = self.store.read_field(array, index, attr)
        txn.read_versions.setdefault(key, self.store.version_of(key))
        self._record(
            txn,
            "r",
            key,
            dirty_from=self._dirty_writer(txn, key),
            info={"attr": attr, "value": value},
        )
        return value

    def read_record(self, txn: Txn, array: str, index: int, attrs: Iterable[str]) -> dict:
        """Atomically read several attributes of one record (one lock)."""
        self._require_active(txn)
        if txn.uses_snapshot:
            values = {
                attr: txn.snapshot_state.read_field(array, index, attr) for attr in attrs
            }
            self._record(
                txn, "r", ("record", array, index), info={"attrs": tuple(attrs), "values": dict(values)}
            )
            return values
        key = ("record", array, index)
        self._read_lock(txn, key)
        values = {attr: self.store.read_field(array, index, attr) for attr in attrs}
        txn.read_versions.setdefault(key, self.store.version_of(key))
        self._record(
            txn,
            "r",
            key,
            dirty_from=self._dirty_writer(txn, key),
            info={"attrs": tuple(attrs), "values": dict(values)},
        )
        return values

    # -- conventional writes -----------------------------------------------------
    def write_item(self, txn: Txn, name: str, value) -> None:
        self._require_active(txn)
        key = ("item", name)
        if txn.uses_snapshot:
            txn.snapshot_state.write_item(name, value)
            txn.write_set.add(key)
            txn.redo.append(("item", name, value))
            self._record(txn, "w", key, info={"value": value})
            return
        self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
        txn.long_locks.add(key)
        self._validate_fcw(txn, key)
        old = self.store.write_item(name, value)
        txn.undo.append(("item", name, old))
        txn.redo.append(("item", name, value))
        txn.write_set.add(key)
        self._record(txn, "w", key, info={"value": value})

    def write_field(self, txn: Txn, array: str, index: int, attr, value) -> None:
        self._require_active(txn)
        key = ("record", array, index)
        if txn.uses_snapshot:
            txn.snapshot_state.write_field(array, index, attr, value)
            txn.write_set.add(key)
            txn.redo.append(("field", array, index, attr, value))
            self._record(txn, "w", key, info={"attr": attr, "value": value})
            return
        self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
        txn.long_locks.add(key)
        self._validate_fcw(txn, key)
        old = self.store.write_field(array, index, attr, value)
        txn.undo.append(("field", array, index, attr, old))
        txn.redo.append(("field", array, index, attr, value))
        txn.write_set.add(key)
        self._record(txn, "w", key, info={"attr": attr, "value": value})

    # -- relational operations ------------------------------------------------
    def select(self, txn: Txn, table: str, predicate: Callable[[dict], bool]) -> list:
        """Rows (without rids) satisfying the predicate, per-level semantics."""
        self._require_active(txn)
        if txn.uses_snapshot:
            rows = [strip_rid(r) for r in txn.snapshot_state.rows(table) if predicate(strip_rid(r))]
            self._record(txn, "r", ("table", table))
            return rows
        if txn.level == "READ UNCOMMITTED":
            rows = [strip_rid(r) for r in self.store.rows(table) if predicate(strip_rid(r))]
            self._record(txn, "r", ("table", table))
            return rows
        matching = self._visible_matching(txn, table, predicate)
        duration = LONG if txn.read_lock_duration == "long" else SHORT
        acquired: list = []
        try:
            for rid, _image in matching:
                key = ("row", table, rid)
                self.locks.acquire(txn.txn_id, key, SHARED, duration)
                acquired.append(key)
                if duration == LONG:
                    txn.long_locks.add(key)
                txn.read_versions.setdefault(key, self.store.version_of(key))
        except WouldBlock:
            # drop the partial short locks so a retried select starts clean
            for key in acquired:
                if key not in txn.long_locks:
                    self.locks.release(txn.txn_id, key)
            raise
        if txn.takes_predicate_read_locks and self.phantom_protection:
            self.locks.acquire_predicate(txn.txn_id, table, predicate, SHARED, LONG)
        if duration == SHORT:
            for key in acquired:
                if key not in txn.long_locks:
                    self.locks.release(txn.txn_id, key)
        self._record(txn, "r", ("table", table), info={"rids": [rid for rid, _ in matching]})
        return [dict(image) for _rid, image in matching]

    def insert(self, txn: Txn, table: str, row: Mapping) -> None:
        self._require_active(txn)
        image = dict(row)
        if txn.uses_snapshot:
            rid = self.store.new_rid()
            stored = dict(image)
            stored[RID] = rid
            txn.snapshot_state.insert_row(table, stored)
            txn.snapshot_inserted.add(rid)
            txn.redo.append(("insert", table, rid, image))
            txn.write_set.add(("row", table, rid))
            self._record(txn, "ins", ("table", table), info={"row": dict(image)})
            return
        # phantom protection: the new row must not fall into another
        # transaction's predicate (read or write) lock
        if self.phantom_protection:
            self.locks.check_rows_against_predicates(txn.txn_id, table, [image], EXCLUSIVE)
        rid = self.store.insert_row(table, image)
        key = ("row", table, rid)
        self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
        txn.long_locks.add(key)
        txn.undo.append(("insert", table, rid))
        txn.redo.append(("insert", table, rid, image))
        txn.write_set.add(key)
        self._record(txn, "ins", key, info={"row": dict(image)})

    def update(
        self,
        txn: Txn,
        table: str,
        predicate: Callable[[dict], bool],
        changes: Callable[[dict], Mapping],
    ) -> int:
        self._require_active(txn)
        if txn.uses_snapshot:
            updated = 0
            for row in txn.snapshot_state.rows(table):
                image = strip_rid(row)
                if predicate(image):
                    delta = dict(changes(image))
                    row.update(delta)
                    rid = row[RID]
                    txn.write_set.add(("row", table, rid))
                    if rid not in txn.snapshot_inserted:
                        txn.redo.append(("update", table, rid, delta))
                    else:
                        self._merge_snapshot_insert(txn, table, rid, delta)
                    updated += 1
            self._record(txn, "upd", ("table", table))
            return updated
        matching = self._visible_matching(txn, table, predicate)
        updated = 0
        for rid, image in matching:
            key = ("row", table, rid)
            self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
            txn.long_locks.add(key)
            self._validate_fcw(txn, key)
            delta = dict(changes(dict(image)))
            new_image = dict(image)
            new_image.update(delta)
            # moving a row into a SERIALIZABLE reader's predicate is a phantom
            if self.phantom_protection:
                self.locks.check_rows_against_predicates(
                    txn.txn_id, table, [new_image], EXCLUSIVE
                )
            old = self.store.update_row(table, rid, delta)
            txn.undo.append(("update", table, rid, old))
            txn.redo.append(("update", table, rid, delta))
            txn.write_set.add(key)
            updated += 1
        if self.phantom_protection:
            self.locks.acquire_predicate(txn.txn_id, table, predicate, EXCLUSIVE, LONG)
        self._record(txn, "upd", ("table", table), info={"count": updated})
        return updated

    def delete(self, txn: Txn, table: str, predicate: Callable[[dict], bool]) -> int:
        self._require_active(txn)
        if txn.uses_snapshot:
            victims = [
                row
                for row in txn.snapshot_state.rows(table)
                if predicate(strip_rid(row))
            ]
            for row in victims:
                rid = row[RID]
                txn.snapshot_state.delete_rows(table, lambda r: r.get(RID) == rid)
                txn.write_set.add(("row", table, rid))
                if rid not in txn.snapshot_inserted:
                    txn.redo.append(("delete", table, rid, strip_rid(row)))
                else:
                    txn.redo = [
                        entry
                        for entry in txn.redo
                        if not (entry[0] == "insert" and entry[2] == rid)
                    ]
            self._record(txn, "del", ("table", table))
            return len(victims)
        matching = self._visible_matching(txn, table, predicate)
        deleted = 0
        for rid, image in matching:
            key = ("row", table, rid)
            self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
            txn.long_locks.add(key)
            self._validate_fcw(txn, key)
            row = self.store.delete_row(table, rid)
            txn.undo.append(("delete", table, rid, row))
            txn.redo.append(("delete", table, rid, strip_rid(row)))
            txn.write_set.add(key)
            deleted += 1
        if self.phantom_protection:
            self.locks.acquire_predicate(txn.txn_id, table, predicate, EXCLUSIVE, LONG)
        self._record(txn, "del", ("table", table), info={"count": deleted})
        return deleted

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _txn_footprint(txn: Txn) -> dict:
        """Lock footprint published on commit/abort history ops.

        ``writes`` are the keys the transaction installed (its write set —
        what a commit publishes, what an abort's undo reverts); ``reads``
        are the long shared locks it merely released.  Surfaced here so
        schedule analyses (the DPOR race detector) read conflict granules
        off the history instead of re-deriving them from lock-table state.
        """
        writes = tuple(sorted(txn.write_set))
        reads = tuple(sorted(set(txn.long_locks) - set(txn.write_set)))
        return {"writes": writes, "reads": reads}

    def _merge_snapshot_insert(self, txn: Txn, table: str, rid: int, delta: Mapping) -> None:
        for position, entry in enumerate(txn.redo):
            if entry[0] == "insert" and entry[1] == table and entry[2] == rid:
                merged = dict(entry[3])
                merged.update(delta)
                txn.redo[position] = ("insert", table, rid, merged)
                return

    def _visible_matching(
        self, txn: Txn, table: str, predicate: Callable[[dict], bool]
    ) -> list:
        """(rid, image) pairs visible to a locking-level transaction.

        Rows X-locked by other transactions are evaluated against their
        *committed* image (uncommitted changes are invisible at READ
        COMMITTED and above); rows deleted-but-uncommitted by others are
        still visible through their committed image.  Acquiring the row
        lock afterwards is what makes the reader wait for the writer.
        """
        images: dict = {}
        for row in self.store.rows(table):
            rid = row.get(RID)
            images[rid] = strip_rid(row)
        for row in self.store.committed.rows(table):
            rid = row.get(RID)
            key = ("row", table, rid)
            holders = self.locks.holders(key)
            locked_by_other = any(
                holder != txn.txn_id and mode == EXCLUSIVE for holder, mode in holders.items()
            )
            if locked_by_other or rid not in images:
                images[rid] = strip_rid(row)
        matching = []
        for rid, image in images.items():
            if predicate(image):
                matching.append((rid, image))
        matching.sort(key=lambda pair: pair[0])
        return matching

    def _read_lock(self, txn: Txn, key: tuple) -> None:
        duration = txn.read_lock_duration
        if duration is None:
            return
        self.locks.acquire(txn.txn_id, key, SHARED, duration)
        if duration == "long":
            txn.long_locks.add(key)
        elif key not in txn.long_locks:
            self.locks.release(txn.txn_id, key)

    def _validate_fcw(self, txn: Txn, key: tuple) -> None:
        """READ COMMITTED FCW: abort if the item changed since we read it."""
        if txn.level != "READ COMMITTED FCW":
            return
        read_version = txn.read_versions.get(key)
        if read_version is not None and self.store.version_of(key) > read_version:
            self.abort(txn, reason=f"first-committer-wins on {key}")
            raise FirstCommitterWinsAbort(txn.txn_id, str(key))

    def _dirty_writer(self, txn: Txn, key: tuple) -> int | None:
        """The other active transaction holding an X lock on the key, if any."""
        for holder, mode in self.locks.holders(key).items():
            if holder != txn.txn_id and mode == EXCLUSIVE:
                return holder
        return None

    def _apply_undo(self, entry: tuple) -> None:
        kind = entry[0]
        if kind == "item":
            _k, name, old = entry
            self.store.undo_item(name, old)
        elif kind == "field":
            _k, array, index, attr, old = entry
            self.store.undo_field(array, index, attr, old)
        elif kind == "insert":
            _k, table, rid = entry
            self.store.undo_insert(table, rid)
        elif kind == "delete":
            _k, table, rid, row = entry
            self.store.undo_delete(table, row)
        elif kind == "update":
            _k, table, rid, old = entry
            self.store.undo_update(table, rid, old)
        else:
            raise EngineError(f"unknown undo entry {entry!r}")

    def _require_active(self, txn: Txn) -> None:
        if txn.status == ABORTED:
            raise TransactionAborted(txn.txn_id, txn.abort_reason or "aborted")
        if txn.status == COMMITTED:
            raise EngineError(f"transaction {txn.txn_id} already committed")

    def _record(
        self,
        txn: Txn,
        kind: str,
        key: tuple | None = None,
        dirty_from: int | None = None,
        info: dict | None = None,
    ) -> None:
        self.tick += 1
        self.history.append(
            HistoryOp(
                tick=self.tick,
                txn_id=txn.txn_id,
                kind=kind,
                key=key,
                version=self.store.version_of(key) if key is not None else None,
                dirty_from=dirty_from,
                info=info or {},
            )
        )

    # -- inspection ---------------------------------------------------------------
    def preview_commit(self, txn: Txn) -> DbState:
        """The live state as it would look right after ``txn`` commits.

        For locking-level transactions the writes are already in place, so
        this is the live state; for SNAPSHOT transactions the buffered redo
        log is applied to a copy.  Used by pre-commit validators (the
        assertional concurrency control) that must veto *before* the
        buffered writes publish.
        """
        if not txn.uses_snapshot:
            return self.public_live()
        preview = self.store.current.copy()
        for entry in txn.redo:
            kind = entry[0]
            if kind == "item":
                _k, name, value = entry
                preview.write_item(name, value)
            elif kind == "field":
                _k, array, index, attr, value = entry
                preview.write_field(array, index, attr, value)
            elif kind == "insert":
                _k, table, rid, row = entry
                stored = dict(row)
                stored[RID] = rid
                preview.insert_row(table, stored)
            elif kind == "delete":
                _k, table, rid, _row = entry
                preview.delete_rows(table, lambda r: r.get(RID) == rid)
            elif kind == "update":
                _k, table, rid, changes = entry
                for row in preview.rows(table):
                    if row.get(RID) == rid:
                        row.update(changes)
                        break
        for table, rows in preview.tables.items():
            preview.tables[table] = [strip_rid(row) for row in rows]
        return preview

    def public_live(self) -> DbState:
        return self.store.public_state(committed_only=False)

    def committed_state(self) -> DbState:
        return self.store.public_state(committed_only=True)

    def live_state(self) -> DbState:
        return self.store.public_state(committed_only=False)
