"""The engine: per-isolation-level operation semantics.

Implements the locking/multiversion recipes of [2] that the paper's
theorems assume:

===================  =========================  ==========================
level                reads                      writes
===================  =========================  ==========================
READ UNCOMMITTED     no locks (sees dirty data) long X locks, pending
                                                version stamps
READ COMMITTED       short S locks              long X locks, pending
                                                version stamps
READ COMMITTED FCW   short S locks + commit-    long X locks + first-
                     stamp recording            committer-wins validation
REPEATABLE READ      long S locks               long X locks, pending
                                                version stamps
SERIALIZABLE         long S locks + long        long X locks + phantom
                     predicate read locks       checks against predicates
SNAPSHOT             O(1) begin snapshot +      buffered in an overlay,
                     private write overlay,     stamped at commit after
                     never waits                first-committer-wins
                                                validation
===================  =========================  ==========================

Storage is the MVCC store of :mod:`repro.engine.storage`: every write
appends (or folds into) a *pending version* stamped with the writer's
xid, commit marks the xid committed in the transaction log, and abort
unstamps — drops pending versions and clears delete ``xmax`` marks — with
no undo closures.  A SNAPSHOT begin captures an O(1)
:class:`repro.engine.storage.Snapshot` instead of deep-copying state.

Reads at READ COMMITTED and above never observe uncommitted row images:
when a row is X-locked by another transaction, the *committed* version is
used to evaluate predicates, and a matching row blocks the reader (the
short/long S lock cannot be granted) — exactly the behaviour of the [2]
lock protocols.

All operations are non-blocking in the thread sense: they either complete
or raise :class:`repro.engine.locks.WouldBlock`; the scheduler owns retry
and deadlock policy.  Every operation appends to ``history`` for the
serializability and anomaly analyses in :mod:`repro.sched`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.core.state import DbState
from repro.engine.locks import EXCLUSIVE, LONG, LockManager, SHARED, SHORT, WouldBlock
from repro.engine.storage import RID, MvccStore, strip_rid
from repro.engine.transaction import (
    ABORTED,
    ALL_LEVELS,
    COMMITTED,
    Txn,
    WriteOverlay,
)
from repro.errors import EngineError, FirstCommitterWinsAbort, TransactionAborted


@dataclass
class HistoryOp:
    """One recorded operation, for offline schedule analysis."""

    tick: int
    txn_id: int
    kind: str  # r | w | ins | del | upd | begin | commit | abort
    key: tuple | None = None
    version: int | None = None
    dirty_from: int | None = None
    info: dict = field(default_factory=dict)


class Engine:
    """A cooperative, deterministic multi-level transactional engine."""

    def __init__(
        self,
        initial: DbState,
        phantom_protection: bool = True,
        vacuum: str | int = "auto",
    ) -> None:
        self.store = MvccStore.from_state(initial)
        self.locks = LockManager()
        self.txns: dict = {}
        self.history: list = []
        self._next_id = 1
        self.tick = 0
        #: ablation switch (DESIGN.md §6.3): with predicate locking off,
        #: INSERTs are never blocked by other transactions' predicates —
        #: phantoms leak into SERIALIZABLE readers and into UPDATE/DELETE
        #: predicates, breaking e.g. New_Order even at READ COMMITTED
        self.phantom_protection = phantom_protection
        #: version GC policy: "auto" vacuums after every commit, "off"
        #: never (versions accumulate), an int N vacuums every N commits.
        #: All modes are deterministic in the schedule, and vacuum only
        #: reclaims versions no reader can resolve, so verdicts are
        #: identical across modes (the CI vacuum-correctness smoke).
        self.vacuum_mode = vacuum
        self._commits_since_vacuum = 0

    # -- lifecycle -----------------------------------------------------------
    def begin(self, level: str) -> Txn:
        if level not in ALL_LEVELS:
            raise EngineError(f"unknown isolation level {level!r}")
        txn = Txn(txn_id=self._next_id, level=level, begin_tick=self.tick)
        self._next_id += 1
        self.store.clog.begin(txn.txn_id)
        if txn.uses_snapshot:
            txn.snapshot = self.store.take_snapshot(txn.txn_id)
            txn.overlay = WriteOverlay()
        self.txns[txn.txn_id] = txn
        self._record(txn, "begin")
        return txn

    def commit(self, txn: Txn) -> None:
        self._require_active(txn)
        if txn.uses_snapshot:
            self._commit_snapshot(txn)
        else:
            self.store.commit_txn(txn.txn_id, txn.stamped, txn.bump_counts)
        self.locks.release_all(txn.txn_id)
        txn.status = COMMITTED
        txn.commit_tick = self.tick
        self._record(txn, "commit", info=self._txn_footprint(txn))
        self._auto_vacuum()

    def abort(self, txn: Txn, reason: str = "explicit") -> None:
        if txn.status in (COMMITTED, ABORTED):
            return
        if txn.uses_snapshot:
            # buffered writes never reached the store: drop the overlay
            self.store.clog.abort(txn.txn_id)
        else:
            self.store.abort_txn(txn.txn_id, txn.stamped)
        self.locks.release_all(txn.txn_id)
        txn.status = ABORTED
        txn.abort_reason = reason
        info = self._txn_footprint(txn)
        info["reason"] = reason
        self._record(txn, "abort", info=info)

    def _commit_snapshot(self, txn: Txn) -> None:
        snap = txn.snapshot
        for key in txn.write_set:
            if self.store.changed_since(key, snap):
                self.abort(txn, reason=f"first-committer-wins on {key}")
                raise FirstCommitterWinsAbort(txn.txn_id, str(key))
            holders = self.locks.holders(key)
            others = {t for t, mode in holders.items() if t != txn.txn_id and mode == EXCLUSIVE}
            if others:
                raise WouldBlock(others, key=key, mode=EXCLUSIVE)
        # validation passed: stamp the buffered writes as this xid's
        # versions, then mark the xid committed in one step
        overlay = txn.overlay
        xid = txn.txn_id
        stamped: list = []
        for name, value in overlay.items.items():
            self.store.stamp_item(xid, name, value)
            stamped.append(("item", name))
        for (array, index), attrs in overlay.records.items():
            self.store.stamp_record(xid, array, index, attrs)
            stamped.append(("record", array, index))
        for table, changed in overlay.updated.items():
            deleted = overlay.deleted.get(table, set())
            for rid, delta in changed.items():
                if rid in deleted:
                    continue  # the delete stamp below supersedes it
                self.store.stamp_update(xid, table, rid, delta)
                stamped.append(("upd", table, rid))
        for table, rids in overlay.deleted.items():
            for rid in rids:
                self.store.stamp_delete(xid, table, rid)
                stamped.append(("del", table, rid))
        for table, rows in overlay.inserted.items():
            for rid, image in rows.items():
                self.store.stamp_insert(xid, table, rid, image)
                stamped.append(("ins", table, rid))
        self.store.commit_txn(xid, stamped, overlay.bumps)

    def _auto_vacuum(self) -> None:
        mode = self.vacuum_mode
        if mode == "off":
            return
        self._commits_since_vacuum += 1
        interval = 1 if mode == "auto" else int(mode)
        if self._commits_since_vacuum >= interval:
            self._commits_since_vacuum = 0
            self.run_vacuum()

    def run_vacuum(self) -> int:
        """One vacuum pass over recently touched chains; returns reclaimed."""
        live = [
            t.snapshot
            for t in self.txns.values()
            if t.is_active and t.snapshot is not None
        ]
        return self.store.vacuum(live)

    # -- conventional reads ----------------------------------------------------
    def read_item(self, txn: Txn, name: str):
        self._require_active(txn)
        if txn.uses_snapshot:
            if name in txn.overlay.items:
                value = txn.overlay.items[name]
            else:
                value = self.store.read_item(name, snap=txn.snapshot)
            self._record(txn, "r", ("item", name), info={"value": value})
            return value
        key = ("item", name)
        self._read_lock(txn, key)
        value = self.store.read_item(name)
        txn.read_versions.setdefault(key, self.store.commit_stamp(key))
        self._record(
            txn, "r", key, dirty_from=self._dirty_writer(txn, key), info={"value": value}
        )
        return value

    def read_field(self, txn: Txn, array: str, index: int, attr):
        self._require_active(txn)
        if txn.uses_snapshot:
            value = self._snapshot_field(txn, array, index, attr)
            self._record(txn, "r", ("record", array, index), info={"attr": attr, "value": value})
            return value
        key = ("record", array, index)
        self._read_lock(txn, key)
        value = self.store.read_field(array, index, attr)
        txn.read_versions.setdefault(key, self.store.commit_stamp(key))
        self._record(
            txn,
            "r",
            key,
            dirty_from=self._dirty_writer(txn, key),
            info={"attr": attr, "value": value},
        )
        return value

    def read_record(self, txn: Txn, array: str, index: int, attrs: Iterable[str]) -> dict:
        """Atomically read several attributes of one record (one lock)."""
        self._require_active(txn)
        if txn.uses_snapshot:
            values = {
                attr: self._snapshot_field(txn, array, index, attr) for attr in attrs
            }
            self._record(
                txn, "r", ("record", array, index), info={"attrs": tuple(attrs), "values": dict(values)}
            )
            return values
        key = ("record", array, index)
        self._read_lock(txn, key)
        values = {attr: self.store.read_field(array, index, attr) for attr in attrs}
        txn.read_versions.setdefault(key, self.store.commit_stamp(key))
        self._record(
            txn,
            "r",
            key,
            dirty_from=self._dirty_writer(txn, key),
            info={"attrs": tuple(attrs), "values": dict(values)},
        )
        return values

    def _snapshot_field(self, txn: Txn, array: str, index: int, attr):
        """Overlay-then-snapshot resolution of one record attribute."""
        buffered = txn.overlay.records.get((array, index))
        if buffered is not None and attr in buffered:
            return buffered[attr]
        return self.store.read_field(array, index, attr, snap=txn.snapshot)

    # -- conventional writes -----------------------------------------------------
    def write_item(self, txn: Txn, name: str, value) -> None:
        self._require_active(txn)
        key = ("item", name)
        if txn.uses_snapshot:
            txn.overlay.items[name] = value
            txn.write_set.add(key)
            txn.overlay.bump(key)
            self._record(txn, "w", key, info={"value": value})
            return
        self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
        txn.long_locks.add(key)
        self._validate_fcw(txn, key)
        self.store.stamp_item(txn.txn_id, name, value)
        txn.stamped.append(("item", name))
        txn.bump(key)
        txn.write_set.add(key)
        self._record(txn, "w", key, info={"value": value})

    def write_field(self, txn: Txn, array: str, index: int, attr, value) -> None:
        self._require_active(txn)
        key = ("record", array, index)
        if txn.uses_snapshot:
            txn.overlay.records.setdefault((array, index), {})[attr] = value
            txn.write_set.add(key)
            txn.overlay.bump(key)
            self._record(txn, "w", key, info={"attr": attr, "value": value})
            return
        self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
        txn.long_locks.add(key)
        self._validate_fcw(txn, key)
        self.store.stamp_field(txn.txn_id, array, index, attr, value)
        txn.stamped.append(("record", array, index))
        txn.bump(key)
        txn.write_set.add(key)
        self._record(txn, "w", key, info={"attr": attr, "value": value})

    # -- relational operations ------------------------------------------------
    def select(self, txn: Txn, table: str, predicate: Callable[[dict], bool]) -> list:
        """Rows (without rids) satisfying the predicate, per-level semantics."""
        self._require_active(txn)
        if txn.uses_snapshot:
            rows = [
                image
                for _rid, image in self._snapshot_view(txn, table)
                if predicate(image)
            ]
            self._record(txn, "r", ("table", table))
            return rows
        if txn.level == "READ UNCOMMITTED":
            rows = []
            for _rid, image in self.store.dirty_rows(table):
                candidate = dict(image)
                if predicate(candidate):
                    rows.append(candidate)
            self._record(txn, "r", ("table", table))
            return rows
        matching = self._visible_matching(txn, table, predicate)
        duration = LONG if txn.read_lock_duration == "long" else SHORT
        acquired: list = []
        try:
            for rid, _image in matching:
                key = ("row", table, rid)
                self.locks.acquire(txn.txn_id, key, SHARED, duration)
                acquired.append(key)
                if duration == LONG:
                    txn.long_locks.add(key)
                txn.read_versions.setdefault(key, self.store.commit_stamp(key))
        except WouldBlock:
            # drop the partial short locks so a retried select starts clean
            for key in acquired:
                if key not in txn.long_locks:
                    self.locks.release(txn.txn_id, key)
            raise
        if txn.takes_predicate_read_locks and self.phantom_protection:
            self.locks.acquire_predicate(txn.txn_id, table, predicate, SHARED, LONG)
        if duration == SHORT:
            for key in acquired:
                if key not in txn.long_locks:
                    self.locks.release(txn.txn_id, key)
        self._record(txn, "r", ("table", table), info={"rids": [rid for rid, _ in matching]})
        return [dict(image) for _rid, image in matching]

    def insert(self, txn: Txn, table: str, row: Mapping) -> None:
        self._require_active(txn)
        image = dict(row)
        if txn.uses_snapshot:
            rid = self.store.new_rid()
            key = ("row", table, rid)
            txn.overlay.inserted.setdefault(table, {})[rid] = dict(image)
            txn.write_set.add(key)
            txn.overlay.bump(key)
            self._record(txn, "ins", ("table", table), info={"row": dict(image)})
            return
        # phantom protection: the new row must not fall into another
        # transaction's predicate (read or write) lock
        if self.phantom_protection:
            self.locks.check_rows_against_predicates(txn.txn_id, table, [image], EXCLUSIVE)
        rid = self.store.new_rid()
        self.store.stamp_insert(txn.txn_id, table, rid, image)
        key = ("row", table, rid)
        self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
        txn.long_locks.add(key)
        txn.stamped.append(("ins", table, rid))
        txn.bump(key)
        txn.write_set.add(key)
        self._record(txn, "ins", key, info={"row": dict(image)})

    def update(
        self,
        txn: Txn,
        table: str,
        predicate: Callable[[dict], bool],
        changes: Callable[[dict], Mapping],
    ) -> int:
        self._require_active(txn)
        if txn.uses_snapshot:
            updated = 0
            overlay = txn.overlay
            for rid, image in self._snapshot_view(txn, table):
                if not predicate(image):
                    continue
                delta = dict(changes(image))
                key = ("row", table, rid)
                txn.write_set.add(key)
                if overlay.own_insert(table, rid):
                    overlay.inserted[table][rid].update(delta)
                else:
                    overlay.updated.setdefault(table, {}).setdefault(rid, {}).update(delta)
                    overlay.bump(key)
                updated += 1
            self._record(txn, "upd", ("table", table))
            return updated
        matching = self._visible_matching(txn, table, predicate)
        updated = 0
        for rid, image in matching:
            key = ("row", table, rid)
            self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
            txn.long_locks.add(key)
            self._validate_fcw(txn, key)
            delta = dict(changes(dict(image)))
            new_image = dict(image)
            new_image.update(delta)
            # moving a row into a SERIALIZABLE reader's predicate is a phantom
            if self.phantom_protection:
                self.locks.check_rows_against_predicates(
                    txn.txn_id, table, [new_image], EXCLUSIVE
                )
            self.store.stamp_update(txn.txn_id, table, rid, delta)
            txn.stamped.append(("upd", table, rid))
            txn.bump(key)
            txn.write_set.add(key)
            updated += 1
        if self.phantom_protection:
            self.locks.acquire_predicate(txn.txn_id, table, predicate, EXCLUSIVE, LONG)
        self._record(txn, "upd", ("table", table), info={"count": updated})
        return updated

    def delete(self, txn: Txn, table: str, predicate: Callable[[dict], bool]) -> int:
        self._require_active(txn)
        if txn.uses_snapshot:
            overlay = txn.overlay
            victims = [
                (rid, image)
                for rid, image in self._snapshot_view(txn, table)
                if predicate(image)
            ]
            for rid, _image in victims:
                key = ("row", table, rid)
                txn.write_set.add(key)
                if overlay.own_insert(table, rid):
                    del overlay.inserted[table][rid]
                    overlay.bump(key, -1)
                else:
                    overlay.deleted.setdefault(table, set()).add(rid)
                    overlay.bump(key)
            self._record(txn, "del", ("table", table))
            return len(victims)
        matching = self._visible_matching(txn, table, predicate)
        deleted = 0
        for rid, _image in matching:
            key = ("row", table, rid)
            self.locks.acquire(txn.txn_id, key, EXCLUSIVE, LONG)
            txn.long_locks.add(key)
            self._validate_fcw(txn, key)
            self.store.stamp_delete(txn.txn_id, table, rid)
            txn.stamped.append(("del", table, rid))
            txn.bump(key)
            txn.write_set.add(key)
            deleted += 1
        if self.phantom_protection:
            self.locks.acquire_predicate(txn.txn_id, table, predicate, EXCLUSIVE, LONG)
        self._record(txn, "del", ("table", table), info={"count": deleted})
        return deleted

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _txn_footprint(txn: Txn) -> dict:
        """Lock footprint published on commit/abort history ops.

        ``writes`` are the keys the transaction installed (its write set —
        what a commit publishes, what an abort's unstamping reverts);
        ``reads`` are the long shared locks it merely released.  Surfaced
        here so schedule analyses (the DPOR race detector) read conflict
        granules off the history instead of re-deriving them from
        lock-table state.
        """
        writes = tuple(sorted(txn.write_set))
        reads = tuple(sorted(set(txn.long_locks) - set(txn.write_set)))
        return {"writes": writes, "reads": reads}

    def _snapshot_view(self, txn: Txn, table: str) -> Iterable[tuple]:
        """(rid, image) pairs of a SNAPSHOT transaction's private view.

        Snapshot-visible rows come first in committed order (their images
        merged with the transaction's own buffered updates, minus its own
        deletes), then its own inserts in insertion order — the same
        physical order the old deep-copied private state produced.
        """
        overlay = txn.overlay
        deleted = overlay.deleted.get(table, set())
        changed = overlay.updated.get(table, {})
        for rid, image in self.store.snapshot_rows(table, txn.snapshot):
            if rid in deleted:
                continue
            merged = dict(image)
            delta = changed.get(rid)
            if delta:
                merged.update(delta)
            yield rid, merged
        for rid, image in overlay.inserted.get(table, {}).items():
            yield rid, dict(image)

    def _visible_matching(
        self, txn: Txn, table: str, predicate: Callable[[dict], bool]
    ) -> list:
        """(rid, image) pairs visible to a locking-level transaction.

        Rows X-locked by other transactions are evaluated against their
        *committed* version (uncommitted changes are invisible at READ
        COMMITTED and above); rows deleted-but-uncommitted by others are
        still visible through their committed version.  Acquiring the row
        lock afterwards is what makes the reader wait for the writer.
        """
        images: dict = {}
        for rid, image in self.store.dirty_rows(table):
            images[rid] = dict(image)
        for rid, image in self.store.committed_rows(table):
            key = ("row", table, rid)
            holders = self.locks.holders(key)
            locked_by_other = any(
                holder != txn.txn_id and mode == EXCLUSIVE for holder, mode in holders.items()
            )
            if locked_by_other or rid not in images:
                images[rid] = dict(image)
        matching = []
        for rid, image in images.items():
            if predicate(image):
                matching.append((rid, image))
        matching.sort(key=lambda pair: pair[0])
        return matching

    def _read_lock(self, txn: Txn, key: tuple) -> None:
        duration = txn.read_lock_duration
        if duration is None:
            return
        self.locks.acquire(txn.txn_id, key, SHARED, duration)
        if duration == "long":
            txn.long_locks.add(key)
        elif key not in txn.long_locks:
            self.locks.release(txn.txn_id, key)

    def _validate_fcw(self, txn: Txn, key: tuple) -> None:
        """READ COMMITTED FCW: abort if the location changed since we read
        it — the chain's commit stamp moved past the one we recorded."""
        if txn.level != "READ COMMITTED FCW":
            return
        read_stamp = txn.read_versions.get(key)
        if read_stamp is not None and self.store.commit_stamp(key) != read_stamp:
            self.abort(txn, reason=f"first-committer-wins on {key}")
            raise FirstCommitterWinsAbort(txn.txn_id, str(key))

    def _dirty_writer(self, txn: Txn, key: tuple) -> int | None:
        """The other active transaction holding an X lock on the key, if any."""
        for holder, mode in self.locks.holders(key).items():
            if holder != txn.txn_id and mode == EXCLUSIVE:
                return holder
        return None

    def _require_active(self, txn: Txn) -> None:
        if txn.status == ABORTED:
            raise TransactionAborted(txn.txn_id, txn.abort_reason or "aborted")
        if txn.status == COMMITTED:
            raise EngineError(f"transaction {txn.txn_id} already committed")

    def _record(
        self,
        txn: Txn,
        kind: str,
        key: tuple | None = None,
        dirty_from: int | None = None,
        info: dict | None = None,
    ) -> None:
        self.tick += 1
        self.history.append(
            HistoryOp(
                tick=self.tick,
                txn_id=txn.txn_id,
                kind=kind,
                key=key,
                version=self.store.version_of(key) if key is not None else None,
                dirty_from=dirty_from,
                info=info or {},
            )
        )

    # -- inspection ---------------------------------------------------------------
    def preview_commit(self, txn: Txn) -> DbState:
        """The live state as it would look right after ``txn`` commits.

        For locking-level transactions the pending versions are already
        the dirty truth, so this is the live state; for SNAPSHOT
        transactions the overlay is applied to a materialised copy.  Used
        by pre-commit validators (the assertional concurrency control)
        that must veto *before* the buffered writes publish.
        """
        if not txn.uses_snapshot:
            return self.public_live()
        preview = self.store.materialize(dirty=True, with_rids=True)
        overlay = txn.overlay
        for name, value in overlay.items.items():
            preview.write_item(name, value)
        for (array, index), attrs in overlay.records.items():
            for attr, value in attrs.items():
                preview.write_field(array, index, attr, value)
        for table, changed in overlay.updated.items():
            for rid, delta in changed.items():
                for row in preview.rows(table):
                    if row.get(RID) == rid:
                        row.update(delta)
                        break
        for table, rids in overlay.deleted.items():
            for rid in rids:
                preview.delete_rows(table, lambda r: r.get(RID) == rid)
        for table, rows in overlay.inserted.items():
            for rid, image in rows.items():
                stored = dict(image)
                stored[RID] = rid
                preview.insert_row(table, stored)
        for table, rows in preview.tables.items():
            preview.tables[table] = [strip_rid(row) for row in rows]
        return preview

    def public_live(self) -> DbState:
        return self.store.public_state(committed_only=False)

    def committed_state(self) -> DbState:
        return self.store.public_state(committed_only=True)

    def live_state(self) -> DbState:
        return self.store.public_state(committed_only=False)
