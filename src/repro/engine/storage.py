"""The multi-version (MVCC) store underlying the engine.

Every logical location — scalar *item*, record array element, table *row*
— carries a **version chain**: a list of :class:`Version` entries stamped
with the transaction id that created them (``xmin``) and, once superseded
or deleted, the transaction id that ended them (``xmax``), exactly the
PostgreSQL tuple-header discipline.  On top of the chains the store keeps:

* a **transaction log** (:class:`TxnLog`, the ``clog``): per-xid commit
  status plus the set of in-flight xids, so version visibility is a pure
  predicate over stamps instead of a property of where a value is stored;
* O(1) **snapshots** (:class:`Snapshot`): a ``(xmax, in-flight set)``
  capture — no state is copied at SNAPSHOT begin, reads resolve through
  :meth:`MvccStore.snapshot_item` & friends against the chains;
* per-chain ``last_commit_xid`` stamps — the basis of first-committer-wins
  validation: a location changed since a snapshot iff the xid of its most
  recent committed change is invisible to that snapshot.  The stamp is a
  scalar, so vacuum can trim dead versions without weakening validation;
* a **vacuum** pass (:meth:`MvccStore.vacuum`) reclaiming versions that no
  live snapshot — and no present or future reader — can resolve, bounded
  by the oldest-active-snapshot horizon;
* the per-location **commit counters** (``versions``) of the original
  store, kept byte-compatible because recorded histories publish them
  (:attr:`repro.engine.manager.HistoryOp.version`).

Aborts are **xmax-unstamping**: dropping the aborting transaction's
pending versions and clearing its delete stamps restores the previous
visible state exactly, with no undo closures.

Rows carry a hidden ``_rid`` (stable row identity) used for row locks and
version tracking; ``_rid`` never leaks into row images returned to
transactions.  Row chains are keyed ``rid -> chain`` per table — the row
index that replaces the old per-operation linear scans — while two
presentation orders reproduce the old store's observable row orders:
the *live* order (physical arrival in the dirty view; an ordered dict, so
a row deleted and restored by abort re-enters at the end, like the old
undo's re-append) and the *committed* order (ascending ``commit_seq``,
the order inserts were reflected into the committed view).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.core.state import DbState
from repro.errors import EngineError, EvaluationError

RID = "_rid"

#: Bootstrap pseudo-transaction: initial-state versions are stamped with
#: xid 0, which every snapshot considers committed-and-visible.
BOOTSTRAP_XID = 0


def strip_rid(row: Mapping) -> dict:
    """A row image without the engine-internal row id."""
    return {key: value for key, value in row.items() if key != RID}


# --------------------------------------------------------------------------
# telemetry
# --------------------------------------------------------------------------

#: Capture/vacuum latencies are micro-scale; buckets from 1µs to 10ms.
_STATS_BUCKETS = (
    0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
)


class _FixedHistogram:
    """A dependency-free fixed-bucket histogram (Prometheus semantics).

    Lives here rather than in :mod:`repro.service.telemetry` because the
    engine must not import the service layer; the service bridges it onto
    ``/metrics`` via :meth:`expose` (cumulative bucket counts).
    """

    def __init__(self, buckets: tuple = _STATS_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self._counts[index] += 1
        self._sum += value
        self._count += 1

    def expose(self) -> dict:
        """``(le -> cumulative count, sum, count)`` for exposition bridges."""
        cumulative, out = 0, {}
        for i, bound in enumerate(self.buckets):
            cumulative += self._counts[i]
            out[bound] = cumulative
        return {"buckets": out, "sum": self._sum, "count": self._count}

    def snapshot(self) -> dict:
        mean = self._sum / self._count if self._count else 0.0
        return {"count": self._count, "sum": round(self._sum, 9), "mean": round(mean, 9)}


class StorageStats:
    """Process-wide storage telemetry (snapshot captures, vacuum passes).

    Mutations are single ``+=`` slots (GIL-atomic enough for monitoring,
    matching the service telemetry's lock-free contract); the service and
    ``analyze --stats`` read it through :meth:`snapshot` /
    the histograms' :meth:`~_FixedHistogram.expose`.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.snapshot_captures = 0
        self.snapshot_inflight_total = 0
        self.vacuum_passes = 0
        self.vacuum_reclaimed = 0
        self.capture_seconds = _FixedHistogram()
        self.vacuum_seconds = _FixedHistogram()

    def record_capture(self, seconds: float, inflight: int) -> None:
        self.snapshot_captures += 1
        self.snapshot_inflight_total += inflight
        self.capture_seconds.observe(seconds)

    def record_vacuum(self, seconds: float, reclaimed: int) -> None:
        self.vacuum_passes += 1
        self.vacuum_reclaimed += reclaimed
        self.vacuum_seconds.observe(seconds)

    def snapshot(self) -> dict:
        return {
            "snapshot_captures": self.snapshot_captures,
            "snapshot_inflight_total": self.snapshot_inflight_total,
            "snapshot_capture_seconds": self.capture_seconds.snapshot(),
            "vacuum_passes": self.vacuum_passes,
            "vacuum_reclaimed": self.vacuum_reclaimed,
            "vacuum_seconds": self.vacuum_seconds.snapshot(),
        }


#: The process-wide stats instance every store reports into.
STORAGE_STATS = StorageStats()


# --------------------------------------------------------------------------
# versions, chains, snapshots
# --------------------------------------------------------------------------


@dataclass
class Version:
    """One tuple version: a payload plus its creating/ending stamps.

    ``value`` is the item value, the record's full attribute dict, or the
    row image (without ``_rid``).  ``xmax`` is ``None`` while the version
    is the newest of its chain; it is stamped with the superseding or
    deleting transaction's xid and *unstamped* if that transaction aborts.
    """

    value: object
    xmin: int
    xmax: int | None = None


@dataclass
class Chain:
    """A version chain for one location, oldest first.

    ``last_commit_xid`` survives vacuum so first-committer-wins stays
    sound after dead versions are trimmed; ``commit_seq`` (rows only) is
    the order the insert entered the committed view, reproducing the old
    store's committed row order without keeping a committed state.
    """

    versions: list = field(default_factory=list)
    last_commit_xid: int = BOOTSTRAP_XID
    commit_seq: int | None = None

    def newest(self) -> Version | None:
        return self.versions[-1] if self.versions else None


@dataclass(frozen=True)
class Snapshot:
    """An O(1) begin capture: everything below ``xmax`` minus ``xip``.

    A committed xid is visible iff it is strictly below ``xmax`` (the
    capturing transaction's own xid — later transactions have later xids)
    and was not in flight at capture time (``xip``).
    """

    xmax: int
    xip: frozenset


class TxnLog:
    """The commit log (``clog``): xid statuses plus the in-flight set."""

    __slots__ = ("status", "in_flight", "next_xid")

    def __init__(self) -> None:
        self.status: dict = {BOOTSTRAP_XID: "C"}
        self.in_flight: set = set()
        self.next_xid = 1

    def begin(self, xid: int) -> None:
        self.in_flight.add(xid)
        self.next_xid = max(self.next_xid, xid + 1)

    def commit(self, xid: int) -> None:
        self.status[xid] = "C"
        self.in_flight.discard(xid)

    def abort(self, xid: int) -> None:
        self.status[xid] = "A"
        self.in_flight.discard(xid)

    def is_committed(self, xid: int) -> bool:
        return self.status.get(xid) == "C"

    def is_aborted(self, xid: int) -> bool:
        return self.status.get(xid) == "A"


class MvccStore:
    """Version chains for items, records and rows + clog + commit counters."""

    def __init__(self) -> None:
        self.items: dict = {}  # name -> Chain (value payloads)
        self.records: dict = {}  # (array, index) -> Chain (attr-dict payloads)
        self.tables: dict = {}  # table -> {rid -> Chain} (row payloads)
        self.clog = TxnLog()
        self.versions: dict = {}  # location key -> int (history parity)
        self._rid_counter = itertools.count(1)
        self._commit_seq = itertools.count(1)
        #: table -> ordered dict of rids present in the dirty view
        self._live_order: dict = {}
        #: chains touched since the last vacuum pass
        self._vacuum_pending: set = set()
        self.stats = STORAGE_STATS

    @classmethod
    def from_state(cls, initial: DbState) -> "MvccStore":
        """Initialise from a plain state; assigns row ids to table rows."""
        store = cls()
        for name, value in initial.items.items():
            store.items[name] = Chain([Version(value, BOOTSTRAP_XID)])
        for array, elems in initial.arrays.items():
            for index, attrs in elems.items():
                store.records[(array, index)] = Chain(
                    [Version(dict(attrs), BOOTSTRAP_XID)]
                )
        for table, rows in initial.tables.items():
            chains = store.tables.setdefault(table, {})
            order = store._live_order.setdefault(table, {})
            for row in rows:
                rid = next(store._rid_counter)
                chain = Chain([Version(dict(row), BOOTSTRAP_XID)])
                chain.commit_seq = next(store._commit_seq)
                chains[rid] = chain
                order[rid] = None
        return store

    def new_rid(self) -> int:
        return next(self._rid_counter)

    # -- version bookkeeping (history parity) ---------------------------------
    def version_of(self, key: tuple) -> int:
        return self.versions.get(key, 0)

    def bump_version(self, key: tuple, count: int = 1) -> None:
        self.versions[key] = self.versions.get(key, 0) + count

    # -- visibility predicates ------------------------------------------------
    def _xid_visible(self, xid: int, snap: Snapshot) -> bool:
        if xid == BOOTSTRAP_XID:
            return True
        return self.clog.is_committed(xid) and xid < snap.xmax and xid not in snap.xip

    def _resolve_snapshot(self, chain: Chain, snap: Snapshot) -> Version | None:
        """The version of ``chain`` a snapshot reads, or None."""
        for version in reversed(chain.versions):
            if not self._xid_visible(version.xmin, snap):
                continue
            if version.xmax is not None and self._xid_visible(version.xmax, snap):
                return None  # deleted before the snapshot began
            return version
        return None

    def _resolve_committed(self, chain: Chain) -> Version | None:
        """The newest committed version, or None (pending heads skipped)."""
        for version in reversed(chain.versions):
            if version.xmin != BOOTSTRAP_XID and not self.clog.is_committed(version.xmin):
                continue
            if version.xmax is not None and self.clog.is_committed(version.xmax):
                return None
            return version
        return None

    def _resolve_dirty(self, chain: Chain) -> Version | None:
        """The newest live version including uncommitted writes, or None.

        Aborted versions are unstamped eagerly, so the chain head is the
        dirty truth: invisible only when carrying a live delete stamp.
        """
        head = chain.newest()
        if head is None:
            return None
        if head.xmax is not None and not self.clog.is_aborted(head.xmax):
            return None
        return head

    # -- reads: items and records --------------------------------------------
    def read_item(self, name: str, snap: Snapshot | None = None):
        chain = self.items.get(name)
        version = self._resolve(chain, snap) if chain else None
        if version is None:
            raise EvaluationError(f"unknown database item {name!r}")
        return version.value

    def read_field(self, array: str, index: int, attr, snap: Snapshot | None = None):
        chain = self.records.get((array, index))
        version = self._resolve(chain, snap) if chain else None
        if version is None or attr not in version.value:
            where = f"{array}[{index}]" + (f".{attr}" if attr is not None else "")
            raise EvaluationError(f"unknown array element {where}")
        return version.value[attr]

    def record_image(self, array: str, index: int, snap: Snapshot | None = None) -> dict | None:
        """The visible attribute dict of one record, or None."""
        chain = self.records.get((array, index))
        version = self._resolve(chain, snap) if chain else None
        return None if version is None else dict(version.value)

    def _resolve(self, chain: Chain, snap: Snapshot | None) -> Version | None:
        if snap is None:
            return self._resolve_dirty(chain)
        return self._resolve_snapshot(chain, snap)

    # -- reads: rows ----------------------------------------------------------
    def dirty_rows(self, table: str) -> Iterator[tuple]:
        """(rid, image) pairs of the dirty view, in live arrival order."""
        chains = self.tables.get(table, {})
        for rid in self._live_order.get(table, {}):
            version = self._resolve_dirty(chains[rid])
            if version is not None:
                yield rid, version.value

    def committed_rows(self, table: str) -> Iterator[tuple]:
        """(rid, image) pairs of the committed view, in committed order."""
        yield from self.snapshot_rows(table, None)

    def snapshot_rows(self, table: str, snap: Snapshot | None) -> Iterator[tuple]:
        """(rid, image) pairs a snapshot sees, ascending ``commit_seq``.

        Committed inserts only ever appended to the old committed state,
        so ascending ``commit_seq`` *is* the old committed row order — at
        the present time and at every historical snapshot.
        """
        visible = []
        for rid, chain in self.tables.get(table, {}).items():
            if chain.commit_seq is None:
                continue  # never committed (pending insert)
            version = (
                self._resolve_committed(chain)
                if snap is None
                else self._resolve_snapshot(chain, snap)
            )
            if version is not None:
                visible.append((chain.commit_seq, rid, version.value))
        visible.sort(key=lambda entry: entry[0])
        for _seq, rid, image in visible:
            yield rid, image

    # -- first-committer-wins -------------------------------------------------
    def changed_since(self, key: tuple, snap: Snapshot) -> bool:
        """True iff a committed change to ``key`` is invisible to ``snap``."""
        chain = self._chain_for(key)
        if chain is None:
            return False
        return not self._xid_visible(chain.last_commit_xid, snap)

    def commit_stamp(self, key: tuple) -> int:
        """The xid of the most recent committed change to ``key`` (or 0)."""
        chain = self._chain_for(key)
        return BOOTSTRAP_XID if chain is None else chain.last_commit_xid

    def _chain_for(self, key: tuple) -> Chain | None:
        kind = key[0]
        if kind == "item":
            return self.items.get(key[1])
        if kind == "record":
            return self.records.get((key[1], key[2]))
        if kind == "row":
            return self.tables.get(key[1], {}).get(key[2])
        return None

    # -- writes (pending version stamping) ------------------------------------
    def stamp_item(self, xid: int, name: str, value) -> None:
        chain = self.items.setdefault(name, Chain())
        self._stamp(chain, xid, value)
        self._vacuum_pending.add(("item", name))

    def stamp_field(self, xid: int, array: str, index: int, attr, value) -> None:
        chain = self.records.setdefault((array, index), Chain())
        version = self._resolve_dirty(chain)
        base = dict(version.value) if version is not None else {}
        base[attr] = value
        self._stamp(chain, xid, base)
        self._vacuum_pending.add(("record", array, index))

    def stamp_record(self, xid: int, array: str, index: int, attrs: Mapping) -> None:
        """Install a whole-record image (SNAPSHOT commit application)."""
        chain = self.records.setdefault((array, index), Chain())
        version = self._resolve_dirty(chain)
        base = dict(version.value) if version is not None else {}
        base.update(attrs)
        self._stamp(chain, xid, base)
        self._vacuum_pending.add(("record", array, index))

    def stamp_insert(self, xid: int, table: str, rid: int, image: Mapping) -> None:
        chains = self.tables.setdefault(table, {})
        if rid in chains:
            raise EngineError(f"row {rid} already exists in {table}")
        chains[rid] = Chain([Version(dict(image), xid)])
        self._live_order.setdefault(table, {})[rid] = None
        self._vacuum_pending.add(("row", table, rid))

    def stamp_update(self, xid: int, table: str, rid: int, changes: Mapping) -> dict:
        """Append (or merge into) a pending version with ``changes`` applied."""
        chain = self.tables.get(table, {}).get(rid)
        version = self._resolve_dirty(chain) if chain else None
        if version is None:
            raise EngineError(f"row {rid} not found in {table}")
        merged = dict(version.value)
        merged.update(changes)
        self._stamp(chain, xid, merged)
        self._vacuum_pending.add(("row", table, rid))
        return merged

    def stamp_delete(self, xid: int, table: str, rid: int) -> dict:
        """Stamp ``xmax`` on the newest live version; hides it from the
        dirty view immediately (the old store popped the row in place)."""
        chain = self.tables.get(table, {}).get(rid)
        version = self._resolve_dirty(chain) if chain else None
        if version is None:
            raise EngineError(f"row {rid} not found in {table}")
        version.xmax = xid
        self._live_order.get(table, {}).pop(rid, None)
        self._vacuum_pending.add(("row", table, rid))
        return dict(version.value)

    def _stamp(self, chain: Chain, xid: int, value) -> None:
        head = chain.newest()
        if head is not None and head.xmin == xid and not self.clog.is_committed(xid):
            # a transaction's re-write folds into its own pending version,
            # matching the old store's write-in-place observable behaviour
            head.value = value
            return
        chain.versions.append(Version(value, xid))

    # -- lifecycle: commit / abort --------------------------------------------
    def take_snapshot(self, xid: int) -> Snapshot:
        started = time.perf_counter()
        snap = Snapshot(xmax=xid, xip=frozenset(self.clog.in_flight - {xid}))
        self.stats.record_capture(time.perf_counter() - started, len(snap.xip))
        return snap

    def commit_txn(self, xid: int, stamped: Iterable[tuple], bump_counts: Mapping) -> None:
        """Finalise a transaction's pending stamps as committed.

        ``stamped`` is the op-ordered list of granule touches recorded by
        the engine (``("item", name) | ("record", array, index) |
        ("ins"|"upd"|"del", table, rid)``); ``bump_counts`` carries the
        per-location commit-counter increments (one per write *operation*,
        matching the old redo-log reflection byte for byte).
        """
        self.clog.commit(xid)
        for entry in stamped:
            kind = entry[0]
            if kind == "item":
                chain = self.items.get(entry[1])
            elif kind == "record":
                chain = self.records.get((entry[1], entry[2]))
            else:
                chain = self.tables.get(entry[1], {}).get(entry[2])
            if chain is None:
                continue
            chain.last_commit_xid = xid
            if kind == "ins" and chain.commit_seq is None:
                chain.commit_seq = next(self._commit_seq)
            # stamp the superseded version's xmax (tuple-header bookkeeping)
            if len(chain.versions) >= 2 and chain.versions[-1].xmin == xid:
                prior = chain.versions[-2]
                if prior.xmax is None:
                    prior.xmax = xid
        for key, count in bump_counts.items():
            self.bump_version(key, count)

    def abort_txn(self, xid: int, stamped: Iterable[tuple]) -> None:
        """Roll back by unstamping: drop pending versions, clear delete
        stamps.  ``stamped`` is processed in reverse op order so restored
        rows re-enter the live order exactly as the old undo replay did."""
        self.clog.abort(xid)
        for entry in reversed(list(stamped)):
            kind = entry[0]
            if kind == "item":
                key, chain = ("item", entry[1]), self.items.get(entry[1])
            elif kind == "record":
                key = ("record", entry[1], entry[2])
                chain = self.records.get((entry[1], entry[2]))
            else:
                key = ("row", entry[1], entry[2])
                chain = self.tables.get(entry[1], {}).get(entry[2])
            if chain is None:
                continue
            if kind == "del":
                head = chain.newest()
                if head is not None and head.xmax == xid:
                    head.xmax = None
                    # the old undo re-inserted at the end of the table list
                    self._live_order.setdefault(entry[1], {})[entry[2]] = None
                continue
            head = chain.newest()
            if head is not None and head.xmin == xid:
                chain.versions.pop()
            if not chain.versions:
                if kind == "item":
                    self.items.pop(entry[1], None)
                elif kind == "record":
                    self.records.pop((entry[1], entry[2]), None)
                else:
                    self.tables.get(entry[1], {}).pop(entry[2], None)
                    self._live_order.get(entry[1], {}).pop(entry[2], None)

    # -- vacuum ----------------------------------------------------------------
    def vacuum(self, live_snapshots: Iterable[Snapshot]) -> int:
        """Reclaim versions no present or future reader can resolve.

        A version survives iff it is (a) the dirty head, (b) the current
        committed version, (c) the version some live snapshot resolves to,
        or (d) stamped by a still-in-flight transaction.  A row chain is
        dropped whole once its delete is visible to every live snapshot
        and nothing keeps any of its versions — ``last_commit_xid``
        removal is safe then, because a deleted-and-invisible row can
        never again be written (first-committer-wins would need the
        stamp only on a write, and writes require visibility).

        Only chains touched since the last pass are scanned, so the cost
        is O(recent writes), not O(database).
        """
        started = time.perf_counter()
        snaps = list(live_snapshots)
        reclaimed = 0
        pending, self._vacuum_pending = self._vacuum_pending, set()
        for key in pending:
            chain = self._chain_for(key)
            if chain is None:
                continue
            keep = self._keep_indices(chain, snaps)
            if not keep and key[0] == "row":
                if all(self._xid_visible(chain.last_commit_xid, s) for s in snaps):
                    reclaimed += len(chain.versions)
                    self.tables.get(key[1], {}).pop(key[2], None)
                    self._live_order.get(key[1], {}).pop(key[2], None)
                    continue
                keep = {len(chain.versions) - 1} if chain.versions else set()
            if len(keep) < len(chain.versions):
                kept = [v for i, v in enumerate(chain.versions) if i in keep]
                reclaimed += len(chain.versions) - len(kept)
                chain.versions = kept
            if len(chain.versions) > 1:
                # still multi-version (a live snapshot pins history):
                # revisit on the next pass even without a new write
                self._vacuum_pending.add(key)
        self.stats.record_vacuum(time.perf_counter() - started, reclaimed)
        return reclaimed

    def _keep_indices(self, chain: Chain, snaps: list) -> set:
        keep = set()
        for i, version in enumerate(chain.versions):
            if not self.clog.is_committed(version.xmin) and version.xmin != BOOTSTRAP_XID:
                keep.add(i)  # pending write
            elif version.xmax is not None and not (
                self.clog.is_committed(version.xmax) or self.clog.is_aborted(version.xmax)
            ):
                keep.add(i)  # pending delete target
        dirty = self._resolve_dirty(chain)
        committed = self._resolve_committed(chain)
        for resolved in [dirty, committed] + [
            self._resolve_snapshot(chain, snap) for snap in snaps
        ]:
            if resolved is not None:
                for i, version in enumerate(chain.versions):
                    if version is resolved:
                        keep.add(i)
                        break
        return keep

    def version_count(self) -> int:
        """Total stored versions (the bloat metric for the E17 benchmark)."""
        count = sum(len(chain.versions) for chain in self.items.values())
        count += sum(len(chain.versions) for chain in self.records.values())
        for chains in self.tables.values():
            count += sum(len(chain.versions) for chain in chains.values())
        return count

    # -- materialised views -----------------------------------------------------
    def materialize(
        self, snap: Snapshot | None = None, dirty: bool = False, with_rids: bool = True
    ) -> DbState:
        """A DbState view of the chains: dirty, committed-now, or a snapshot."""
        state = DbState()

        def resolve(chain: Chain) -> Version | None:
            if dirty:
                return self._resolve_dirty(chain)
            if snap is None:
                return self._resolve_committed(chain)
            return self._resolve_snapshot(chain, snap)

        for name, chain in self.items.items():
            version = resolve(chain)
            if version is not None:
                state.items[name] = version.value
        for (array, index), chain in self.records.items():
            version = resolve(chain)
            if version is not None:
                state.arrays.setdefault(array, {})[index] = dict(version.value)
        for table in self.tables:
            pairs = self.dirty_rows(table) if dirty else self.snapshot_rows(table, snap)
            rows = []
            for rid, image in pairs:
                row = dict(image)
                if with_rids:
                    row[RID] = rid
                rows.append(row)
            state.tables[table] = rows
        return state

    @property
    def current(self) -> DbState:
        """The dirty view as a DbState (compatibility/diagnostic surface)."""
        return self.materialize(dirty=True)

    @property
    def committed(self) -> DbState:
        """The committed-now view as a DbState (compatibility surface)."""
        return self.materialize()

    def public_state(self, committed_only: bool = True) -> DbState:
        """The state without row ids, for assertion evaluation and oracles."""
        return self.materialize(dirty=not committed_only, with_rids=False)


#: Backwards-compatible alias: the engine's store *is* the MVCC store now.
VersionedStore = MvccStore
