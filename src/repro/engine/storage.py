"""The versioned store underlying the engine.

The store keeps:

* the **current** state — including uncommitted writes, so that READ
  UNCOMMITTED readers observe dirty data exactly as the locking
  implementation in [2] allows;
* a **committed version counter** per location, bumped when a writing
  transaction commits — the basis of both first-committer-wins validations
  (READ COMMITTED FCW and SNAPSHOT);
* a **committed snapshot** — the state reflecting only committed
  transactions, maintained incrementally and handed (copied) to SNAPSHOT
  transactions at begin.

Rows carry a hidden ``_rid`` (stable row identity) used for row locks,
version tracking and update-in-place; ``_rid`` never leaks into row images
returned to transactions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.core.state import DbState
from repro.errors import EngineError

RID = "_rid"


def strip_rid(row: Mapping) -> dict:
    """A row image without the engine-internal row id."""
    return {key: value for key, value in row.items() if key != RID}


@dataclass
class VersionedStore:
    """Current state + committed snapshot + per-location version counters."""

    current: DbState = field(default_factory=DbState)
    committed: DbState = field(default_factory=DbState)
    versions: dict = field(default_factory=dict)  # location key -> int
    _rid_counter: itertools.count = field(default_factory=lambda: itertools.count(1))

    @classmethod
    def from_state(cls, initial: DbState) -> "VersionedStore":
        """Initialise from a plain state; assigns row ids to table rows."""
        store = cls()
        store.current = initial.copy()
        for table, rows in store.current.tables.items():
            for row in rows:
                row[RID] = next(store._rid_counter)
        store.committed = store.current.copy()
        return store

    def new_rid(self) -> int:
        return next(self._rid_counter)

    # -- version bookkeeping -------------------------------------------------
    def version_of(self, key: tuple) -> int:
        return self.versions.get(key, 0)

    def bump_version(self, key: tuple) -> None:
        self.versions[key] = self.versions.get(key, 0) + 1

    # -- reads ---------------------------------------------------------------
    def read_item(self, name: str):
        return self.current.read_item(name)

    def read_field(self, array: str, index: int, attr):
        return self.current.read_field(array, index, attr)

    def rows(self, table: str) -> Iterable[dict]:
        return self.current.rows(table)

    def find_row(self, table: str, rid: int) -> dict | None:
        for row in self.current.rows(table):
            if row.get(RID) == rid:
                return row
        return None

    # -- in-place writes (locking levels) --------------------------------------
    def write_item(self, name: str, value) -> object:
        """Write in place; returns the undo closure's old value sentinel."""
        old = self.current.items.get(name, _MISSING)
        self.current.write_item(name, value)
        return old

    def write_field(self, array: str, index: int, attr, value) -> object:
        old = (
            self.current.arrays.get(array, {}).get(index, {}).get(attr, _MISSING)
        )
        self.current.write_field(array, index, attr, value)
        return old

    def insert_row(self, table: str, row: Mapping) -> int:
        rid = self.new_rid()
        stored = dict(row)
        stored[RID] = rid
        self.current.insert_row(table, stored)
        return rid

    def delete_row(self, table: str, rid: int) -> dict:
        rows = self.current.tables.get(table, [])
        for position, row in enumerate(rows):
            if row.get(RID) == rid:
                return rows.pop(position)
        raise EngineError(f"row {rid} not found in {table}")

    def update_row(self, table: str, rid: int, changes: Mapping) -> dict:
        row = self.find_row(table, rid)
        if row is None:
            raise EngineError(f"row {rid} not found in {table}")
        old = {attr: row.get(attr, _MISSING) for attr in changes}
        row.update(changes)
        return old

    # -- undo (abort of in-place writers) ---------------------------------------
    def undo_item(self, name: str, old) -> None:
        if old is _MISSING:
            self.current.items.pop(name, None)
        else:
            self.current.write_item(name, old)

    def undo_field(self, array: str, index: int, attr, old) -> None:
        if old is _MISSING:
            self.current.arrays.get(array, {}).get(index, {}).pop(attr, None)
        else:
            self.current.write_field(array, index, attr, old)

    def undo_insert(self, table: str, rid: int) -> None:
        self.delete_row(table, rid)

    def undo_delete(self, table: str, row: dict) -> None:
        self.current.insert_row(table, dict(row))

    def undo_update(self, table: str, rid: int, old: Mapping) -> None:
        row = self.find_row(table, rid)
        if row is None:
            raise EngineError(f"row {rid} vanished during undo in {table}")
        for attr, value in old.items():
            if value is _MISSING:
                row.pop(attr, None)
            else:
                row[attr] = value

    # -- commit reflection -------------------------------------------------------
    def reflect_commit(self, writes: Iterable[tuple]) -> None:
        """Propagate a committing transaction's writes into the committed
        snapshot and bump the affected version counters.

        ``writes`` is the transaction's redo log:
        ``("item", name, value) | ("field", array, index, attr, value) |
        ("insert", table, rid, row) | ("delete", table, rid, row) |
        ("update", table, rid, changes)``.
        """
        for entry in writes:
            kind = entry[0]
            if kind == "item":
                _k, name, value = entry
                self.committed.write_item(name, value)
                self.bump_version(("item", name))
            elif kind == "field":
                _k, array, index, attr, value = entry
                self.committed.write_field(array, index, attr, value)
                self.bump_version(("record", array, index))
            elif kind == "insert":
                _k, table, rid, row = entry
                stored = dict(row)
                stored[RID] = rid
                self.committed.insert_row(table, stored)
                self.bump_version(("row", table, rid))
            elif kind == "delete":
                _k, table, rid, _row = entry
                self.committed.delete_rows(table, lambda r: r.get(RID) == rid)
                self.bump_version(("row", table, rid))
            elif kind == "update":
                _k, table, rid, changes = entry
                for row in self.committed.rows(table):
                    if row.get(RID) == rid:
                        row.update(changes)
                        break
                self.bump_version(("row", table, rid))
            else:
                raise EngineError(f"unknown redo entry {entry!r}")

    def snapshot(self) -> DbState:
        """A deep copy of the committed state (for SNAPSHOT transactions)."""
        return self.committed.copy()

    def public_state(self, committed_only: bool = True) -> DbState:
        """The state without row ids, for assertion evaluation and oracles."""
        base = self.committed if committed_only else self.current
        clean = base.copy()
        for table, rows in clean.tables.items():
            clean.tables[table] = [strip_rid(row) for row in rows]
        return clean


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()
