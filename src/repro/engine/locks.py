"""The lock manager.

Lock keys are tuples identifying a lockable unit:

* ``("item", name)`` — a scalar database item;
* ``("record", array, index)`` — one array record (Example 2's record
  granularity: a reader of ``emp[i]`` locks the whole record);
* ``("row", table, rid)`` — one table row, by hidden row id.

Two lock modes (shared/exclusive) with the usual conflict matrix, and two
durations: SHORT locks are released when the operation completes, LONG
locks at end of transaction — the [2] vocabulary the paper's level
implementations are defined in.

Predicate locks protect against phantoms.  A predicate lock stores a row
predicate (a callable); conflicts are tested *row-wise*: an INSERT/UPDATE/
DELETE touching concrete rows conflicts with another transaction's
predicate lock when some touched row image satisfies the predicate.
Predicate read locks (SERIALIZABLE SELECTs) additionally conflict with
same-table predicate *write* locks — a deliberate over-approximation (we
cannot decide intersection of opaque callables) that only ever blocks more
than a real system would, never less, so no anomaly is admitted that the
level forbids.

The manager never blocks: acquisition either succeeds or raises
:class:`WouldBlock` with the set of holders in the way.  Fairness and
retry policy belong to the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import EngineError

SHARED = "S"
EXCLUSIVE = "X"
SHORT = "short"
LONG = "long"


class WouldBlock(Exception):
    """The operation must wait for the given transactions.

    ``key`` and ``mode`` identify the contested lock (the granule the
    attempt probed and the mode it wanted) so schedule analyses — notably
    the DPOR race detector — can treat a blocked attempt as an access on
    that granule instead of re-deriving the conflict from lock-table
    reprs.  They are ``None`` for legacy raisers that predate the field.
    """

    def __init__(self, blockers: set, key: tuple | None = None, mode: str | None = None) -> None:
        super().__init__(f"blocked by transactions {sorted(blockers)}")
        self.blockers = set(blockers)
        self.key = key
        self.mode = mode


def _conflicts(held: str, wanted: str) -> bool:
    return held == EXCLUSIVE or wanted == EXCLUSIVE


@dataclass
class _PredicateLock:
    txn_id: int
    table: str
    predicate: Callable[[dict], bool]
    mode: str  # SHARED (SELECT at SERIALIZABLE) or EXCLUSIVE (write predicate)
    duration: str


class LockManager:
    """Item/record/row locks plus predicate locks, cooperative style."""

    def __init__(self) -> None:
        # key -> {txn_id: mode}
        self._held: dict = {}
        self._predicates: list = []

    # -- item/record/row locks ---------------------------------------------
    def acquire(self, txn_id: int, key: tuple, mode: str, duration: str) -> None:
        """Grant or raise :class:`WouldBlock`; re-entrant and upgradeable."""
        holders = self._held.setdefault(key, {})
        blockers = {
            other
            for other, held_mode in holders.items()
            if other != txn_id and (_conflicts(held_mode, mode) or _conflicts(mode, held_mode))
        }
        if blockers:
            raise WouldBlock(blockers, key=key, mode=mode)
        current = holders.get(txn_id)
        if current == EXCLUSIVE:
            mode = EXCLUSIVE  # never downgrade
        holders[txn_id] = EXCLUSIVE if EXCLUSIVE in (current, mode) else mode
        # duration bookkeeping lives on the transaction (it knows which of
        # its locks are short); the manager only tracks ownership.

    def release(self, txn_id: int, key: tuple) -> None:
        holders = self._held.get(key)
        if holders is not None:
            holders.pop(txn_id, None)
            if not holders:
                self._held.pop(key, None)

    def release_all(self, txn_id: int) -> None:
        for key in list(self._held):
            self.release(txn_id, key)
        self._predicates = [lock for lock in self._predicates if lock.txn_id != txn_id]

    def holders(self, key: tuple) -> dict:
        return dict(self._held.get(key, {}))

    def held_by(self, txn_id: int) -> list:
        return [key for key, holders in self._held.items() if txn_id in holders]

    # -- predicate locks ------------------------------------------------------
    def acquire_predicate(
        self,
        txn_id: int,
        table: str,
        predicate: Callable[[dict], bool],
        mode: str,
        duration: str = LONG,
    ) -> None:
        """Take a predicate lock; conflicts are over-approximate for P-vs-P."""
        if mode == SHARED:
            blockers = {
                lock.txn_id
                for lock in self._predicates
                if lock.txn_id != txn_id and lock.table == table and lock.mode == EXCLUSIVE
            }
            if blockers:
                raise WouldBlock(blockers, key=("table", table), mode=mode)
        self._predicates.append(_PredicateLock(txn_id, table, predicate, mode, duration))

    def check_rows_against_predicates(
        self, txn_id: int, table: str, rows: Iterable[dict], wanted_mode: str
    ) -> None:
        """Raise :class:`WouldBlock` if touching these rows violates a
        predicate lock held by another transaction.

        ``wanted_mode`` is EXCLUSIVE for writes (conflicts with both read
        and write predicate locks matching a row) and SHARED for reads
        (conflicts with write predicate locks only).
        """
        rows = list(rows)
        blockers: set = set()
        for lock in self._predicates:
            if lock.txn_id == txn_id or lock.table != table:
                continue
            if not (_conflicts(lock.mode, wanted_mode) or _conflicts(wanted_mode, lock.mode)):
                continue
            for row in rows:
                try:
                    matches = lock.predicate(row)
                except Exception as exc:  # a predicate must be total
                    raise EngineError(f"predicate lock evaluation failed: {exc}") from exc
                if matches:
                    blockers.add(lock.txn_id)
                    break
        if blockers:
            raise WouldBlock(blockers, key=("table", table), mode=wanted_mode)

    def release_short_predicates(self, txn_id: int) -> None:
        self._predicates = [
            lock
            for lock in self._predicates
            if not (lock.txn_id == txn_id and lock.duration == SHORT)
        ]

    def predicate_locks_of(self, txn_id: int) -> list:
        return [lock for lock in self._predicates if lock.txn_id == txn_id]
