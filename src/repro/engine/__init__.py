"""An in-memory transactional engine implementing the paper's substrate.

The paper assumes the locking/multiversion implementations of the isolation
levels described by Berenson et al. ("A critique of ANSI SQL isolation
levels", SIGMOD 1995).  This package implements them faithfully enough to
*execute* the paper's transaction programs under every level and observe
exactly the interleavings each level permits:

* :mod:`repro.engine.locks` — the lock manager: shared/exclusive item,
  record and row locks of short or long duration, plus predicate locks;
* :mod:`repro.engine.storage` — the MVCC store: per-location version
  chains with ``xmin``/``xmax`` stamps, a commit log, O(1) snapshot
  captures, first-committer-wins commit stamps, and a vacuum pass that
  reclaims versions behind the oldest-active-snapshot horizon;
* :mod:`repro.engine.transaction` — per-transaction runtime state: level,
  read/write sets, the op-ordered stamp log (unstamped on abort), and the
  SNAPSHOT write overlay;
* :mod:`repro.engine.legacy` — the frozen pre-MVCC store and engine, the
  baseline for differential tests and the snapshot-cost benchmark;
* :mod:`repro.engine.manager` — the engine proper: per-level read/write/
  commit/abort rules for READ UNCOMMITTED, READ COMMITTED, READ COMMITTED
  with first-committer-wins, REPEATABLE READ, SNAPSHOT and SERIALIZABLE;
* :mod:`repro.engine.deadlock` — waits-for graph and victim selection.

The engine is cooperative and deterministic: operations never block a
thread; an operation that must wait raises :class:`repro.engine.locks.WouldBlock`
carrying the blocking transactions, and the scheduler decides what runs
next.  That makes every anomaly reproducible from a seed or a script.
"""

from repro.engine.manager import Engine

__all__ = ["Engine"]
