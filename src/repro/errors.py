"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.  The
engine-side errors (:class:`TransactionAborted` and its subclasses) are *not*
programming errors: they are the normal signalling mechanism for aborts caused
by deadlock victims, first-committer-wins conflicts and explicit rollbacks.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SortError(ReproError):
    """An expression or formula was built with incompatible sorts."""


class EvaluationError(ReproError):
    """A term or formula could not be evaluated against a concrete state.

    Typically raised when a referenced database item, array element, local
    variable or parameter is missing from the state or environment.
    """


class ProverError(ReproError):
    """The prover was given input outside the fragment it understands."""


class ProgramError(ReproError):
    """A transaction program is malformed (e.g. a read into a parameter)."""


class AnalysisError(ReproError):
    """The static analysis was configured or invoked inconsistently."""


class EngineError(ReproError):
    """Base class for transactional-engine errors (misuse, not aborts)."""


class TransactionAborted(EngineError):
    """The transaction was aborted and must not issue further operations."""

    def __init__(self, txn_id: int, reason: str) -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class DeadlockAbort(TransactionAborted):
    """The transaction was chosen as a deadlock victim."""

    def __init__(self, txn_id: int) -> None:
        super().__init__(txn_id, "deadlock victim")


class FirstCommitterWinsAbort(TransactionAborted):
    """A first-committer-wins validation failed (SNAPSHOT or RC-FCW)."""

    def __init__(self, txn_id: int, item: str) -> None:
        super().__init__(txn_id, f"first-committer-wins conflict on {item}")
        self.item = item


class ScheduleError(ReproError):
    """A scripted schedule was inconsistent with the programs being run."""
