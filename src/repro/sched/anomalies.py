"""Detectors for the Berenson et al. phenomena over engine histories.

The paper builds directly on [2]'s analysis of the ANSI levels; these
detectors replay that analysis dynamically.  Each detector scans a
:class:`repro.sched.schedule.ScheduleResult` history and returns the list
of occurrences (empty = phenomenon absent).  Detections use the *broad*
interpretations of [2] (P1/P2/P3), which are the ones the locking
implementations actually preclude:

* **P0 dirty write**  — w1[x] .. w2[x] before T1 ends (precluded at every
  level by long write locks; detected for completeness);
* **P1 dirty read**   — w1[x] .. r2[x] before T1 ends;
* **P2 fuzzy read**   — r1[x] .. w2[x] .. (T2 commits) before T1 ends;
* **P3 phantom**      — r1[P] .. insert/delete by T2 matching P before T1
  ends;
* **P4 lost update**  — r1[x] .. w2[x] .. c2 .. w1[x] .. c1;
* **A5A read skew**   — r1[x] .. w2[x] w2[y] c2 .. r1[y];
* **A5B write skew**  — r1[x] r1[y] .. r2[x] r2[y] .. w1[x] w2[y], both
  commit, writes to distinct items both transactions read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.manager import HistoryOp
from repro.sched.schedule import ScheduleResult


@dataclass(frozen=True)
class Anomaly:
    """One detected phenomenon occurrence."""

    name: str
    txns: tuple
    detail: str

    def __repr__(self) -> str:
        return f"<{self.name} {self.txns}: {self.detail}>"


def _ops(result: ScheduleResult):
    return [op for op in result.history if op.kind in ("r", "w", "ins", "del", "upd")]


def _end_tick(result: ScheduleResult, txn_id: int) -> float:
    for op in result.history:
        if op.txn_id == txn_id and op.kind in ("commit", "abort"):
            return op.tick
    return float("inf")


def _committed(result: ScheduleResult) -> set:
    return {
        op.txn_id for op in result.history if op.kind == "commit"
    }


def _reads_writes(result: ScheduleResult):
    reads: list = []
    writes: list = []
    for op in _ops(result):
        if op.kind == "r":
            if op.key is not None and op.key[0] == "table":
                for rid in op.info.get("rids", ()):
                    reads.append((op.tick, op.txn_id, ("row", op.key[1], rid), op))
                reads.append((op.tick, op.txn_id, op.key, op))
            else:
                reads.append((op.tick, op.txn_id, op.key, op))
        elif op.kind in ("w", "ins", "del", "upd") and op.key is not None:
            writes.append((op.tick, op.txn_id, op.key, op))
    return reads, writes


def detect_dirty_writes(result: ScheduleResult) -> list:
    out = []
    _reads, writes = _reads_writes(result)
    for tick1, txn1, key1, _op1 in writes:
        end1 = _end_tick(result, txn1)
        for tick2, txn2, key2, _op2 in writes:
            if txn2 != txn1 and key2 == key1 and tick1 < tick2 < end1:
                out.append(Anomaly("P0-dirty-write", (txn1, txn2), f"on {key1}"))
    return out


def detect_dirty_reads(result: ScheduleResult) -> list:
    out = []
    for op in _ops(result):
        if op.kind == "r" and op.dirty_from is not None:
            out.append(
                Anomaly("P1-dirty-read", (op.dirty_from, op.txn_id), f"on {op.key}")
            )
    return out


def detect_fuzzy_reads(result: ScheduleResult) -> list:
    out = []
    committed = _committed(result)
    reads, writes = _reads_writes(result)
    for tick1, txn1, key, _op in reads:
        end1 = _end_tick(result, txn1)
        for tick2, txn2, key2, _op2 in writes:
            if (
                txn2 != txn1
                and key2 == key
                and txn2 in committed
                and tick1 < tick2 < end1
                and _end_tick(result, txn2) < end1
            ):
                out.append(Anomaly("P2-fuzzy-read", (txn1, txn2), f"on {key}"))
    return out


def detect_phantoms(result: ScheduleResult) -> list:
    out = []
    for op in _ops(result):
        if op.kind != "r" or op.key is None or op.key[0] != "table":
            continue
        table = op.key[1]
        end1 = _end_tick(result, op.txn_id)
        for other in _ops(result):
            if (
                other.txn_id != op.txn_id
                and other.kind in ("ins", "del")
                and other.key is not None
                and (
                    (other.key[0] == "row" and other.key[1] == table)
                    or (other.key[0] == "table" and other.key[1] == table)
                )
                and op.tick < other.tick < end1
            ):
                out.append(
                    Anomaly(
                        "P3-phantom",
                        (op.txn_id, other.txn_id),
                        f"{other.kind} into {table} under an open predicate read",
                    )
                )
    return out


def detect_lost_updates(result: ScheduleResult) -> list:
    out = []
    committed = _committed(result)
    reads, writes = _reads_writes(result)
    for tick_r, txn1, key, _op in reads:
        if txn1 not in committed:
            continue
        my_writes = [t for t, txn, k, _o in writes if txn == txn1 and k == key and t > tick_r]
        if not my_writes:
            continue
        first_own_write = min(my_writes)
        for tick2, txn2, key2, _op2 in writes:
            if (
                txn2 != txn1
                and key2 == key
                and txn2 in committed
                and tick_r < tick2 < first_own_write
                and _end_tick(result, txn2) < first_own_write
            ):
                out.append(Anomaly("P4-lost-update", (txn1, txn2), f"on {key}"))
    return out


def detect_read_skew(result: ScheduleResult) -> list:
    out = []
    committed = _committed(result)
    reads, writes = _reads_writes(result)
    for tick_x, txn1, key_x, _op in reads:
        for tick_y, txn1b, key_y, _op2 in reads:
            if txn1b != txn1 or key_y == key_x or tick_y <= tick_x:
                continue
            for txn2 in committed - {txn1}:
                wrote_x = [t for t, txn, k, _o in writes if txn == txn2 and k == key_x]
                wrote_y = [t for t, txn, k, _o in writes if txn == txn2 and k == key_y]
                end2 = _end_tick(result, txn2)
                if (
                    wrote_x
                    and wrote_y
                    and tick_x < min(wrote_x + wrote_y)
                    and end2 < tick_y
                ):
                    out.append(
                        Anomaly("A5A-read-skew", (txn1, txn2), f"on {key_x}/{key_y}")
                    )
    return out


def detect_write_skew(result: ScheduleResult) -> list:
    out = []
    committed = _committed(result)
    reads, writes = _reads_writes(result)

    def read_keys(txn):
        return {k for _t, txn_id, k, _o in reads if txn_id == txn}

    def write_keys(txn):
        return {k for _t, txn_id, k, _o in writes if txn_id == txn}

    ordered = sorted(committed)
    for i, txn1 in enumerate(ordered):
        for txn2 in ordered[i + 1 :]:
            shared_reads = read_keys(txn1) & read_keys(txn2)
            w1 = write_keys(txn1)
            w2 = write_keys(txn2)
            if w1 & w2:
                continue  # write sets intersect: FCW territory, not skew
            skew_keys = [
                (x, y)
                for x in shared_reads & w1
                for y in shared_reads & w2
                if x != y
            ]
            if not skew_keys:
                continue
            # both transactions must overlap in time
            begin1 = min((t for t, txn, _k, _o in reads + writes if txn == txn1), default=None)
            begin2 = min((t for t, txn, _k, _o in reads + writes if txn == txn2), default=None)
            if begin1 is None or begin2 is None:
                continue
            if begin2 < _end_tick(result, txn1) and begin1 < _end_tick(result, txn2):
                out.append(
                    Anomaly("A5B-write-skew", (txn1, txn2), f"on {skew_keys[0]}")
                )
    return out


ALL_DETECTORS = {
    "P0-dirty-write": detect_dirty_writes,
    "P1-dirty-read": detect_dirty_reads,
    "P2-fuzzy-read": detect_fuzzy_reads,
    "P3-phantom": detect_phantoms,
    "P4-lost-update": detect_lost_updates,
    "A5A-read-skew": detect_read_skew,
    "A5B-write-skew": detect_write_skew,
}


def detect_all(result: ScheduleResult) -> dict:
    """Run every detector; returns {name: [occurrences]}."""
    return {name: detector(result) for name, detector in ALL_DETECTORS.items()}


#: Which runtime phenomenon corroborates each static dangerous structure
#: (:func:`repro.core.sdg.dangerous_structures`).  The SDG flags the *shape*
#: (edge pattern over transaction types); the detector observes the *event*
#: (an occurrence in an explored schedule).  A flagged structure whose
#: matching phenomenon shows up in a probe over the same types is
#: corroborated — static and dynamic layers point at the same anomaly.
SDG_ANOMALY_NAMES = {
    "snapshot-write-skew": "A5B-write-skew",
    "rc-lost-update": "P4-lost-update",
}
