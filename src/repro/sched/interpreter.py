"""Step interpreter: transaction programs against the engine.

The interpreter turns a :class:`repro.core.program.TransactionType` into a
generator of *operation thunks*.  Each thunk performs exactly one engine
operation when called; the generator consumes the thunk's result (sent
back in by the scheduler) and advances to the next database operation,
executing any intervening local computation inline.

This inversion keeps blocking out of the interpreter: when a thunk raises
:class:`repro.engine.locks.WouldBlock`, the scheduler simply calls the same
thunk again later — the generator never observes the failed attempt, so
operations are retried transparently, exactly like a lock queue.

Logical-variable snapshots (``x_i = X_i`` in the paper's triple (1)) are
ghost reads: they are bound from the committed state at begin without
taking locks, since they exist only for the semantic-correctness oracle.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from repro.core.formula import Formula, _bind_row
from repro.core.program import (
    Delete,
    ForEach,
    If,
    Insert,
    LocalAssign,
    Read,
    ReadRecord,
    Rollback,
    Select,
    SelectCount,
    SelectScalar,
    Statement,
    TransactionType,
    Update,
    While,
    Write,
)
from repro.core.state import DbState
from repro.core.terms import Field, Item, Local
from repro.engine.manager import Engine
from repro.engine.transaction import Txn
from repro.errors import EvaluationError, ProgramError, ScheduleError

_EMPTY = DbState()

#: Fuel cap for While loops during simulation.
LOOP_FUEL = 256


def bind_ghosts(txn_type: TransactionType, args: Mapping, state: DbState) -> dict:
    """Parameters plus logical-variable snapshot, bound without locks."""
    env: dict = {}
    for param in txn_type.params:
        if param.name not in args:
            raise ScheduleError(f"{txn_type.name}: missing argument {param.name!r}")
        env[param] = args[param.name]
    for logical, term in txn_type.snapshot:
        try:
            env[logical] = term.evaluate(state, env)
        except EvaluationError:
            env[logical] = None
    return env


def _local_eval(term, env: dict):
    return term.evaluate(_EMPTY, env)


def _row_predicate(where: Formula, row_var: str, env: dict) -> Callable[[dict], bool]:
    def predicate(row: dict) -> bool:
        return where.evaluate(_EMPTY, _bind_row(env, row_var, row))

    return predicate


def steps(
    engine: Engine,
    txn: Txn,
    txn_type: TransactionType,
    args: Mapping,
    env: dict,
    observations: dict | None = None,
) -> Iterator[Callable]:
    """Yield one engine-operation thunk per database operation.

    The caller must ``send`` each thunk's return value back into the
    generator.  ``env`` is mutated in place so the caller can inspect the
    transaction's workspace afterwards (the semantic checker needs it).

    ``observations`` (when given) collects the values this transaction
    actually read, keyed by location — ``("item", name)`` and
    ``("field", array, index, attr)``.  The simulator uses them to bind the
    logical-variable snapshot (the paper's ``x_i = X_i``) to the values the
    transaction truly observed, which is what ``Q_i`` quantifies over.
    """
    obs = observations if observations is not None else {}

    def run(stmts) -> Iterator[Callable]:
        for stmt in stmts:
            if isinstance(stmt, Read):
                source = stmt.source
                if isinstance(source, Item):
                    value = yield (lambda name=source.name: engine.read_item(txn, name))
                elif isinstance(source, Field):
                    index = _local_eval(source.index, env)
                    value = yield (
                        lambda a=source.array, i=index, f=source.attr: engine.read_field(
                            txn, a, i, f
                        )
                    )
                    obs[("field", source.array, index, source.attr)] = value
                else:  # pragma: no cover - constructor forbids
                    raise ProgramError(f"unreadable source {source!r}")
                if isinstance(source, Item):
                    obs[("item", source.name)] = value
                env[stmt.into] = value
            elif isinstance(stmt, ReadRecord):
                index = _local_eval(stmt.index, env)
                attrs = tuple(attr for attr, _local in stmt.binds)
                values = yield (
                    lambda a=stmt.array, i=index, fs=attrs: engine.read_record(txn, a, i, fs)
                )
                # a dropped (blocked) operation sends None back: no values
                # were observed, so the locals stay unbound
                if values is not None:
                    for attr, local in stmt.binds:
                        env[local] = values[attr]
                        obs[("field", stmt.array, index, attr)] = values[attr]
            elif isinstance(stmt, Write):
                value = _local_eval(stmt.value, env)
                target = stmt.target
                if isinstance(target, Item):
                    yield (lambda n=target.name, v=value: engine.write_item(txn, n, v))
                else:
                    index = _local_eval(target.index, env)
                    yield (
                        lambda a=target.array, i=index, f=target.attr, v=value: engine.write_field(
                            txn, a, i, f, v
                        )
                    )
            elif isinstance(stmt, LocalAssign):
                env[stmt.into] = _local_eval(stmt.value, env)
            elif isinstance(stmt, Select):
                predicate = _row_predicate(stmt.where, stmt.row, env)
                rows = yield (lambda t=stmt.table, p=predicate: engine.select(txn, t, p))
                if rows is None:  # dropped (blocked) operation
                    rows = []
                if stmt.attrs is not None:
                    rows = [{attr: row.get(attr) for attr in stmt.attrs} for row in rows]
                env[stmt.into] = tuple(tuple(sorted(row.items())) for row in rows)
            elif isinstance(stmt, SelectScalar):
                predicate = _row_predicate(stmt.where, stmt.row, env)
                rows = yield (lambda t=stmt.table, p=predicate: engine.select(txn, t, p))
                env[stmt.into] = rows[0].get(stmt.attr, stmt.default) if rows else stmt.default
            elif isinstance(stmt, SelectCount):
                predicate = _row_predicate(stmt.where, stmt.row, env)
                rows = yield (lambda t=stmt.table, p=predicate: engine.select(txn, t, p))
                env[stmt.into] = len(rows or ())
            elif isinstance(stmt, Insert):
                row = {attr: _local_eval(term, env) for attr, term in stmt.values}
                yield (lambda t=stmt.table, r=row: engine.insert(txn, t, r))
            elif isinstance(stmt, Update):
                predicate = _row_predicate(stmt.where, stmt.row, env)

                def changes(row: dict, sets=stmt.sets, row_var=stmt.row) -> dict:
                    row_env = _bind_row(env, row_var, row)
                    return {attr: term.evaluate(_EMPTY, row_env) for attr, term in sets}

                yield (lambda t=stmt.table, p=predicate, c=changes: engine.update(txn, t, p, c))
            elif isinstance(stmt, Delete):
                predicate = _row_predicate(stmt.where, stmt.row, env)
                yield (lambda t=stmt.table, p=predicate: engine.delete(txn, t, p))
            elif isinstance(stmt, If):
                branch = stmt.then if stmt.cond.evaluate(_EMPTY, env) else stmt.orelse
                yield from run(branch)
            elif isinstance(stmt, While):
                fuel = LOOP_FUEL
                while stmt.cond.evaluate(_EMPTY, env):
                    fuel -= 1
                    if fuel < 0:
                        raise ScheduleError(f"loop fuel exhausted in {stmt!r}")
                    yield from run(stmt.body)
            elif isinstance(stmt, Rollback):
                # one engine op: abort the transaction (undo + lock release);
                # the simulator notices the aborted status and finishes the
                # instance without retrying
                yield (lambda reason=stmt.reason: engine.abort(txn, reason=reason))
            elif isinstance(stmt, ForEach):
                buffered = env.get(stmt.buffer, ())
                for packed in buffered:
                    row = dict(packed)
                    for attr, local in stmt.bind:
                        env[local] = row.get(attr)
                    yield from run(stmt.body)
            else:
                raise ProgramError(f"unknown statement kind {stmt!r}")

    yield from run(txn_type.body)
