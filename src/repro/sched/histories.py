"""A Berenson-style history DSL replayed through the engine.

Canonical anomaly histories from [2] are written as one-line scripts:

    "w1[x=1] r2[x] c1 c2"           (dirty read shape)
    "r1[x] r2[x] w2[x=2] c2 w1[x=3] c1"   (lost update shape)

Grammar per token:

* ``r<t>[item]``        — transaction *t* reads ``item``;
* ``w<t>[item=value]``  — transaction *t* writes integer ``value``;
* ``c<t>`` / ``a<t>``   — commit / abort;
* ``rp<t>[table:attr=value]``      — predicate read (SELECT attr=value);
* ``ins<t>[table:attr=value,...]`` — insert a row.

:func:`replay` attempts the script under a per-transaction isolation-level
assignment.  Each step either executes, *blocks* (recorded, the step is
dropped — the lock protocol prevented the interleaving), or *aborts* the
transaction (first-committer-wins).  The outcome object reports which
steps executed, so a bench can assert e.g. "the dirty-read history is
executable at READ UNCOMMITTED but its read blocks at READ COMMITTED."
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.state import DbState
from repro.engine.locks import WouldBlock
from repro.engine.manager import Engine
from repro.errors import FirstCommitterWinsAbort, TransactionAborted

_TOKEN = re.compile(
    r"^(?P<op>rp|ins|r|w|c|a)(?P<txn>\d+)(?:\[(?P<body>[^\]]*)\])?$"
)


@dataclass
class StepOutcome:
    """What happened to one scripted step."""

    token: str
    status: str  # ok | blocked | aborted | skipped
    value: object = None
    detail: str = ""


@dataclass
class ReplayResult:
    """Outcome of replaying a history under a level assignment."""

    steps: list = field(default_factory=list)
    final: DbState | None = None
    engine: Engine | None = None

    @property
    def executed_fully(self) -> bool:
        return all(step.status == "ok" for step in self.steps)

    @property
    def blocked_steps(self) -> list:
        return [step for step in self.steps if step.status == "blocked"]

    @property
    def aborted_steps(self) -> list:
        return [step for step in self.steps if step.status == "aborted"]

    def value_of(self, token: str):
        for step in self.steps:
            if step.token == token:
                return step.value
        raise KeyError(token)


def parse(history: str) -> list:
    """Tokenise a history string; raises on malformed tokens."""
    tokens = []
    for raw in history.split():
        match = _TOKEN.match(raw)
        if match is None:
            raise ValueError(f"malformed history token {raw!r}")
        tokens.append((raw, match.group("op"), int(match.group("txn")), match.group("body")))
    return tokens


def replay(
    history: str,
    levels: dict,
    initial: DbState | None = None,
    default_level: str = "READ COMMITTED",
) -> ReplayResult:
    """Replay a history; ``levels`` maps txn number -> isolation level."""
    state = initial.copy() if initial is not None else DbState(items={})
    tokens = parse(history)
    # ensure all mentioned scalar items exist
    for _raw, op, _txn, body in tokens:
        if op in ("r", "w") and body:
            item = body.split("=")[0]
            if not state.has_item(item):
                state.write_item(item, 0)
    engine = Engine(state)
    txns: dict = {}
    result = ReplayResult(engine=engine)
    dead: set = set()

    for raw, op, number, body in tokens:
        if number in dead:
            result.steps.append(StepOutcome(raw, "skipped", detail="transaction aborted earlier"))
            continue
        if number not in txns:
            txns[number] = engine.begin(levels.get(number, default_level))
        txn = txns[number]
        try:
            if op == "r":
                value = engine.read_item(txn, body)
                result.steps.append(StepOutcome(raw, "ok", value=value))
            elif op == "w":
                item, _eq, literal = body.partition("=")
                engine.write_item(txn, item, int(literal))
                result.steps.append(StepOutcome(raw, "ok"))
            elif op == "rp":
                table, _colon, cond = body.partition(":")
                attr, _eq, literal = cond.partition("=")
                wanted = _parse_value(literal)
                rows = engine.select(txn, table, lambda row: row.get(attr) == wanted)
                result.steps.append(StepOutcome(raw, "ok", value=rows))
            elif op == "ins":
                table, _colon, assigns = body.partition(":")
                row = {}
                for assign in assigns.split(","):
                    attr, _eq, literal = assign.partition("=")
                    row[attr] = _parse_value(literal)
                engine.insert(txn, table, row)
                result.steps.append(StepOutcome(raw, "ok"))
            elif op == "c":
                engine.commit(txn)
                result.steps.append(StepOutcome(raw, "ok"))
            elif op == "a":
                engine.abort(txn, reason="scripted abort")
                dead.add(number)
                result.steps.append(StepOutcome(raw, "ok"))
            else:  # pragma: no cover - regex forbids
                raise ValueError(op)
        except WouldBlock as block:
            result.steps.append(
                StepOutcome(raw, "blocked", detail=f"blocked by {sorted(block.blockers)}")
            )
        except (FirstCommitterWinsAbort, TransactionAborted) as abort:
            dead.add(number)
            result.steps.append(StepOutcome(raw, "aborted", detail=str(abort)))
    result.final = engine.committed_state()
    return result


def _parse_value(literal: str):
    literal = literal.strip()
    if literal in ("true", "True"):
        return True
    if literal in ("false", "False"):
        return False
    try:
        return int(literal)
    except ValueError:
        return literal
