"""A Berenson-style history DSL replayed through the engine.

Canonical anomaly histories from [2] are written as one-line scripts:

    "w1[x=1] r2[x] c1 c2"           (dirty read shape)
    "r1[x] r2[x] w2[x=2] c2 w1[x=3] c1"   (lost update shape)

Grammar per token:

* ``r<t>[item]``        — transaction *t* reads ``item``;
* ``w<t>[item=value]``  — transaction *t* writes integer ``value``;
* ``r<t>[arr[i].attr]`` / ``w<t>[arr[i].attr=value]`` — record-array
  variants (e.g. ``r1[acct_sav[0].bal]``), so simulator counterexamples
  over record arrays round-trip through the DSL;
* ``c<t>`` / ``a<t>``   — commit / abort;
* ``rp<t>[table:attr=value]``      — predicate read (SELECT attr=value);
* ``ins<t>[table:attr=value,...]`` — insert a row.

:func:`replay` attempts the script under a per-transaction isolation-level
assignment.  Each step either executes, *blocks* (recorded, the step is
dropped — the lock protocol prevented the interleaving), or *aborts* the
transaction (first-committer-wins).  The outcome object reports which
steps executed, so a bench can assert e.g. "the dirty-read history is
executable at READ UNCOMMITTED but its read blocks at READ COMMITTED."

Two bridges to the simulator stack close the loop between the DSL and
policy-driven execution:

* :func:`compile_history` translates a history into synthetic transaction
  types, instance specs and a scheduling script, and
  :func:`replay_via_policy` runs them through the simulator with a
  :class:`~repro.sched.policy.ReplayPolicy` — reproducing :func:`replay`'s
  outcomes step for step on one shared execution core;
* :func:`history_string` renders an executed schedule's engine history
  back into a DSL line, making explored counterexamples replayable via
  ``repro replay``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.state import DbState
from repro.engine.locks import WouldBlock
from repro.engine.manager import Engine
from repro.errors import FirstCommitterWinsAbort, TransactionAborted

_TOKEN = re.compile(
    r"^(?P<op>rp|ins|r|w|c|a)(?P<txn>\d+)(?:\[(?P<body>.*)\])?$"
)

#: Field references inside r/w token bodies: ``array[index].attr``.
_FIELD = re.compile(r"^(?P<array>\w+)\[(?P<index>-?\d+)\]\.(?P<attr>\w+)$")


@dataclass
class StepOutcome:
    """What happened to one scripted step."""

    token: str
    status: str  # ok | blocked | aborted | skipped
    value: object = None
    detail: str = ""


@dataclass
class ReplayResult:
    """Outcome of replaying a history under a level assignment."""

    steps: list = field(default_factory=list)
    final: DbState | None = None
    engine: Engine | None = None

    @property
    def executed_fully(self) -> bool:
        return all(step.status == "ok" for step in self.steps)

    @property
    def blocked_steps(self) -> list:
        return [step for step in self.steps if step.status == "blocked"]

    @property
    def aborted_steps(self) -> list:
        return [step for step in self.steps if step.status == "aborted"]

    def value_of(self, token: str):
        for step in self.steps:
            if step.token == token:
                return step.value
        raise KeyError(token)


def parse(history: str) -> list:
    """Tokenise a history string; raises on malformed tokens."""
    tokens = []
    for raw in history.split():
        match = _TOKEN.match(raw)
        if match is None:
            raise ValueError(f"malformed history token {raw!r}")
        tokens.append((raw, match.group("op"), int(match.group("txn")), match.group("body")))
    return tokens


def replay(
    history: str,
    levels: dict,
    initial: DbState | None = None,
    default_level: str = "READ COMMITTED",
) -> ReplayResult:
    """Replay a history; ``levels`` maps txn number -> isolation level."""
    state = initial.copy() if initial is not None else DbState(items={})
    tokens = parse(history)
    _ensure_locations(state, tokens)
    engine = Engine(state)
    txns: dict = {}
    result = ReplayResult(engine=engine)
    dead: set = set()

    for raw, op, number, body in tokens:
        if number in dead:
            result.steps.append(StepOutcome(raw, "skipped", detail="transaction aborted earlier"))
            continue
        if number not in txns:
            txns[number] = engine.begin(levels.get(number, default_level))
        txn = txns[number]
        try:
            if op == "r":
                target = _FIELD.match(body)
                if target is not None:
                    value = engine.read_field(
                        txn, target["array"], int(target["index"]), target["attr"]
                    )
                else:
                    value = engine.read_item(txn, body)
                result.steps.append(StepOutcome(raw, "ok", value=value))
            elif op == "w":
                lhs, _eq, literal = body.partition("=")
                target = _FIELD.match(lhs)
                if target is not None:
                    engine.write_field(
                        txn, target["array"], int(target["index"]), target["attr"], int(literal)
                    )
                else:
                    engine.write_item(txn, lhs, int(literal))
                result.steps.append(StepOutcome(raw, "ok"))
            elif op == "rp":
                table, _colon, cond = body.partition(":")
                attr, _eq, literal = cond.partition("=")
                wanted = _parse_value(literal)
                rows = engine.select(txn, table, lambda row: row.get(attr) == wanted)
                result.steps.append(StepOutcome(raw, "ok", value=rows))
            elif op == "ins":
                table, _colon, assigns = body.partition(":")
                row = {}
                for assign in assigns.split(","):
                    attr, _eq, literal = assign.partition("=")
                    row[attr] = _parse_value(literal)
                engine.insert(txn, table, row)
                result.steps.append(StepOutcome(raw, "ok"))
            elif op == "c":
                engine.commit(txn)
                result.steps.append(StepOutcome(raw, "ok"))
            elif op == "a":
                engine.abort(txn, reason="scripted abort")
                dead.add(number)
                result.steps.append(StepOutcome(raw, "ok"))
            else:  # pragma: no cover - regex forbids
                raise ValueError(op)
        except WouldBlock as block:
            result.steps.append(
                StepOutcome(raw, "blocked", detail=f"blocked by {sorted(block.blockers)}")
            )
        except (FirstCommitterWinsAbort, TransactionAborted) as abort:
            dead.add(number)
            result.steps.append(StepOutcome(raw, "aborted", detail=str(abort)))
    result.final = engine.committed_state()
    return result


def _parse_value(literal: str):
    literal = literal.strip()
    if literal in ("true", "True"):
        return True
    if literal in ("false", "False"):
        return False
    try:
        return int(literal)
    except ValueError:
        return literal


def _ensure_locations(state: DbState, tokens) -> None:
    """Pre-create every scalar/field location a history mentions (as 0)."""
    for _raw, op, _txn, body in tokens:
        if op not in ("r", "w") or not body:
            continue
        lhs = body.partition("=")[0]
        target = _FIELD.match(lhs)
        if target is not None:
            array, index, attr = target["array"], int(target["index"]), target["attr"]
            if not state.has_field(array, index, attr):
                state.write_field(array, index, attr, 0)
        elif not state.has_item(lhs):
            state.write_item(lhs, 0)


# ---------------------------------------------------------------------------
# bridges to the policy-driven simulator
# ---------------------------------------------------------------------------


def compile_history(
    history: str,
    levels: dict,
    initial: DbState | None = None,
    default_level: str = "READ COMMITTED",
):
    """Translate a history into ``(initial, specs, script)``.

    Each transaction number becomes a synthetic straight-line
    :class:`~repro.core.program.TransactionType` (one statement per op
    token, a :class:`~repro.core.program.Rollback` for ``a<t>``), and the
    token order becomes a scheduling script — one entry per token, the
    ``c<t>`` token claiming the instance's commit step.
    """
    from repro.core.formula import RowAttr, eq
    from repro.core.program import Insert, Read, Rollback, Select, TransactionType, Write
    from repro.core.terms import Field, IntConst, Item, Local, coerce
    from repro.sched.simulator import InstanceSpec

    state = initial.copy() if initial is not None else DbState(items={})
    tokens = parse(history)
    _ensure_locations(state, tokens)

    numbers: list = []  # transaction numbers in first-appearance order
    bodies: dict = {}  # number -> list of statements
    for raw, op, number, body in tokens:
        if number not in bodies:
            bodies[number] = []
            numbers.append(number)
        stmts = bodies[number]
        position = len(stmts)
        if op == "r":
            target = _FIELD.match(body)
            source = (
                Field(target["array"], IntConst(int(target["index"])), target["attr"])
                if target is not None
                else Item(body)
            )
            stmts.append(Read(into=Local(f"v{number}_{position}"), source=source))
        elif op == "w":
            lhs, _eq_, literal = body.partition("=")
            target = _FIELD.match(lhs)
            dest = (
                Field(target["array"], IntConst(int(target["index"])), target["attr"])
                if target is not None
                else Item(lhs)
            )
            stmts.append(Write(target=dest, value=IntConst(int(literal))))
        elif op == "rp":
            table, _colon, cond = body.partition(":")
            attr, _eq_, literal = cond.partition("=")
            wanted = _parse_value(literal)
            sort = "str" if isinstance(wanted, str) else ("bool" if isinstance(wanted, bool) else "int")
            stmts.append(
                Select(
                    table=table,
                    into=Local(f"v{number}_{position}"),
                    where=eq(RowAttr("r", attr, sort), coerce(wanted)),
                    row="r",
                )
            )
        elif op == "ins":
            table, _colon, assigns = body.partition(":")
            values = []
            for assign in assigns.split(","):
                attr, _eq_, literal = assign.partition("=")
                values.append((attr, coerce(_parse_value(literal))))
            stmts.append(Insert(table=table, values=tuple(values)))
        elif op == "a":
            stmts.append(Rollback(reason="scripted abort"))
        # 'c' contributes no statement: it claims the instance's commit step

    index_of = {number: position for position, number in enumerate(numbers)}
    specs = [
        InstanceSpec(
            txn_type=TransactionType(name=f"T{number}", body=tuple(bodies[number])),
            level=levels.get(number, default_level),
            name=f"T{number}",
        )
        for number in numbers
    ]
    script = [index_of[number] for _raw, _op, number, _body in tokens]
    return state, specs, script


def replay_via_policy(
    history: str,
    levels: dict,
    initial: DbState | None = None,
    default_level: str = "READ COMMITTED",
) -> ReplayResult:
    """Replay a history through the simulator's execution core.

    Equivalent to :func:`replay` — same step outcomes, same final state —
    but driven by :class:`~repro.sched.policy.ReplayPolicy` over the
    compiled script, with blocked operations dropped exactly as the DSL
    prescribes.
    """
    from repro.sched.policy import ReplayPolicy
    from repro.sched.simulator import Simulator

    state, specs, script = compile_history(history, levels, initial, default_level)
    simulator = Simulator(
        state,
        specs,
        policy=ReplayPolicy(script, on_exhausted="stop"),
        retry=False,
        collect_trace=True,
        drop_blocked=True,
    )
    simulator.run()
    slots: dict = {}
    for event in simulator.trace:
        slots.setdefault(event.slot, []).append(event)
    result = ReplayResult(engine=simulator.engine)
    for slot, (raw, op, _number, _body) in enumerate(parse(history), start=1):
        result.steps.append(_outcome_from_events(raw, op, slots.get(slot, ())))
    result.final = simulator.engine.committed_state()
    return result


def _outcome_from_events(raw: str, op: str, events) -> StepOutcome:
    kinds = [event.kind for event in events]
    if not events or "skip" in kinds:
        # either the script entry named a finished instance, or the run
        # ended before reaching it (all live instances already finished) —
        # both mean the transaction died under an earlier token
        return StepOutcome(raw, "skipped", detail="transaction aborted earlier")
    if op == "a":
        # the rollback op executed; the trailing abort event is the point
        return StepOutcome(raw, "ok")
    if "blocked" in kinds:
        event = events[kinds.index("blocked")]
        return StepOutcome(raw, "blocked", detail=f"blocked by {sorted(event.blockers)}")
    if "abort" in kinds:
        event = events[kinds.index("abort")]
        return StepOutcome(raw, "aborted", detail=event.detail)
    if "commit" in kinds:
        return StepOutcome(raw, "ok")
    if "op" in kinds:
        event = events[kinds.index("op")]
        value = event.value if op in ("r", "rp") else None
        return StepOutcome(raw, "ok", value=value)
    return StepOutcome(raw, "ok")  # pragma: no cover - every step emits events


# ---------------------------------------------------------------------------
# schedules back to history strings
# ---------------------------------------------------------------------------


def history_numbering(history_ops) -> dict:
    """Engine ``txn_id`` -> DSL transaction number, 1..n in begin order.

    The same numbering :func:`history_string` uses, so a caller can
    translate per-instance facts (e.g. isolation levels) into the
    ``--levels N=LEVEL`` assignments that make the rendered history
    replayable.
    """
    numbering: dict = {}
    for op in history_ops:
        if op.kind == "begin":
            numbering.setdefault(op.txn_id, len(numbering) + 1)
    return numbering


def history_string(history_ops) -> str | None:
    """Render recorded engine operations as a replayable DSL line.

    Transactions are renumbered 1..n in begin order (a restarted instance
    gets a fresh number — its aborted incarnation is part of the history).
    Returns ``None`` when the history contains operations the DSL cannot
    express (updates, deletes, non-literal values).
    """
    numbering: dict = {}
    tokens: list = []
    for op in history_ops:
        if op.kind == "begin":
            numbering.setdefault(op.txn_id, len(numbering) + 1)
            continue
        number = numbering.get(op.txn_id)
        if number is None:  # pragma: no cover - begins always precede ops
            return None
        if op.kind == "commit":
            tokens.append(f"c{number}")
        elif op.kind == "abort":
            tokens.append(f"a{number}")
        elif op.kind in ("r", "w"):
            rendered = _render_access(number, op)
            if rendered is None:
                return None
            tokens.extend(rendered)
        else:
            return None
    return " ".join(tokens)


def _render_access(number: int, op) -> list | None:
    key = op.key
    if key is None:
        return None
    if op.kind == "r":
        if key[0] == "item":
            return [f"r{number}[{key[1]}]"]
        if key[0] == "record":
            attrs = op.info.get("attrs")
            if attrs is None:
                attr = op.info.get("attr")
                attrs = (attr,) if attr is not None else None
            if attrs is None or any(a is None for a in attrs):
                return None
            return [f"r{number}[{key[1]}[{key[2]}].{attr}]" for attr in attrs]
        return None
    value = op.info.get("value")
    if not isinstance(value, int) or isinstance(value, bool):
        return None
    if key[0] == "item":
        return [f"w{number}[{key[1]}={value}]"]
    if key[0] == "record":
        attr = op.info.get("attr")
        if attr is None:
            return None
        return [f"w{number}[{key[1]}[{key[2]}].{attr}={value}]"]
    return None
