"""Run-time invalidation monitoring.

The paper distinguishes *interference* (static: a triple that is not a
theorem) from *invalidation* (dynamic: the interfering statement actually
executes while the interfered-with assertion is active).  The static
checker decides the former; this monitor observes the latter during a
simulated schedule — in the spirit of the assertional concurrency control
of Bernstein, Gerstl, Leung & Lewis (ICDE 1998, the paper's reference
[3]), which tracks assertions at run time to block invalidating
interleavings.

Attach an :class:`AssertionMonitor` to a simulator via its ``observers``
hook.  After every engine operation the monitor re-evaluates every *other*
running instance's critical assertions against the live (dirty) state with
that instance's current workspace; a true→false flip is an
:class:`InvalidationEvent` attributed to the operation that caused it —
the exact run-time realisation of the static interference witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.conditions import consistency_assertions, read_post_assertions, result_assertions
from repro.errors import EvaluationError


@dataclass(frozen=True)
class InvalidationEvent:
    """One observed true→false flip of an active assertion."""

    step: int
    holder: str  # instance whose assertion flipped
    assertion: str  # label of the assertion
    by: str  # instance whose operation caused the flip
    detail: str = ""

    def __repr__(self) -> str:
        return f"<step {self.step}: {self.by} invalidated {self.holder}'s {self.assertion}>"


class AssertionMonitor:
    """Watches every instance's critical assertions during a simulation.

    ``include_results`` additionally tracks each ``Q_i``; consistency
    conjuncts ``I_i`` are always tracked.  The monitor never interferes
    with the schedule — it is an observer, not a concurrency control —
    but its event log shows exactly where a weak level lets an assertion
    die, which is the debugging story the static reports promise.
    """

    def __init__(self, include_results: bool = True) -> None:
        self.include_results = include_results
        self.events: list = []
        self._truth: dict = {}  # (instance index, label) -> last known truth
        self._assertions_cache: dict = {}

    # -- observer protocol -----------------------------------------------------
    def __call__(self, simulator, acting_runtime) -> None:
        state = simulator.engine.live_state()
        step = simulator.stats["steps"]
        for runtime in simulator._runtimes:
            if runtime.status != "running":
                continue
            acting = runtime is acting_runtime
            for label, formula in self._assertions_of(runtime):
                key = (runtime.index, label)
                value = self._evaluate(formula, state, runtime.env)
                if value is None:
                    continue
                previous = self._truth.get(key)
                # a transaction's own operations legitimately change its
                # assertions (a read *establishes* its postcondition);
                # only flips caused by someone else's step are invalidations
                if not acting and previous is True and value is False:
                    self.events.append(
                        InvalidationEvent(
                            step=step,
                            holder=runtime.spec.label(runtime.index),
                            assertion=label,
                            by=acting_runtime.spec.label(acting_runtime.index),
                        )
                    )
                self._truth[key] = value

    # -- helpers ---------------------------------------------------------------
    def _assertions_of(self, runtime) -> list:
        txn_type = runtime.spec.txn_type
        cached = self._assertions_cache.get(txn_type.name)
        if cached is None:
            cached = []
            for assertion in consistency_assertions(txn_type):
                cached.append((assertion.label, assertion.formula))
            for _stmt, assertion in read_post_assertions(txn_type):
                cached.append((assertion.label, assertion.formula))
            if self.include_results:
                for assertion in result_assertions(txn_type):
                    cached.append((assertion.label, assertion.formula))
            self._assertions_cache[txn_type.name] = cached
        return cached

    @staticmethod
    def _evaluate(formula, state, env):
        try:
            return bool(formula.evaluate(state, env))
        except EvaluationError:
            return None  # not yet meaningful (locals unbound): inactive

    # -- reporting ---------------------------------------------------------------
    def invalidations_of(self, holder: str) -> list:
        return [event for event in self.events if event.holder == holder]

    def summary(self) -> str:
        if not self.events:
            return "no invalidations observed"
        lines = [f"{len(self.events)} invalidation(s) observed:"]
        lines.extend(f"  {event!r}" for event in self.events)
        return "\n".join(lines)


class GuardVeto(Exception):
    """Raised by :class:`AssertionGuard` to abort an invalidating step."""

    def __init__(self, event: InvalidationEvent) -> None:
        super().__init__(repr(event))
        self.event = event


class AssertionGuard(AssertionMonitor):
    """An *assertional concurrency control*: veto invalidating steps.

    The paper's companion work (Bernstein, Gerstl, Leung & Lewis, ICDE
    1998 — reference [3]) builds a concurrency control that tracks
    assertions at run time and prevents the interleavings that would
    invalidate one, guaranteeing every schedule is semantically correct
    *without* serializing.  This class is that idea on our simulator: it
    extends the monitor so that when the acting transaction's operation
    flips another transaction's active assertion, a :class:`GuardVeto` is
    raised; the simulator aborts the acting transaction (its operation is
    undone with the rest of its work) and retries it later.

    The result: even a pair the static analysis rejects at a level (e.g.
    the write-skew withdrawals at SNAPSHOT) executes semantically correctly
    under the guard — at the cost of guard aborts instead of locks.
    """

    def __call__(self, simulator, acting_runtime) -> None:
        before = len(self.events)
        super().__call__(simulator, acting_runtime)
        fresh = self.events[before:]
        if fresh and acting_runtime.status == "running":
            # the acting transaction will be aborted; its assertion
            # baselines must be dropped so a retry starts clean
            self._drop_baselines(acting_runtime.index)
            raise GuardVeto(fresh[0])

    def precommit(self, simulator, acting_runtime) -> None:
        """Veto a commit whose published writes would invalidate someone.

        SNAPSHOT transactions buffer their writes until commit; the guard
        must evaluate the *previewed* post-commit state, because once the
        engine commit runs there is nothing left to abort.
        """
        preview = simulator.engine.preview_commit(acting_runtime.txn)
        for runtime in simulator._runtimes:
            if runtime is acting_runtime:
                continue
            if runtime.status == "running":
                candidates = self._assertions_of(runtime)
            elif runtime.status == "committed" and self._overlapped(acting_runtime, runtime):
                # a committed transaction that overlapped the actor still
                # contributes its Q_i to the schedule's cumulative result;
                # the actor's commit must not retroactively falsify it
                candidates = [
                    (label, formula)
                    for label, formula in self._assertions_of(runtime)
                    if label.startswith("Q_i")
                ]
            else:
                continue
            for label, formula in candidates:
                key = (runtime.index, label)
                if runtime.status == "running" and self._truth.get(key) is not True:
                    continue
                value = self._evaluate(formula, preview, runtime.env)
                if value is False:
                    event = InvalidationEvent(
                        step=simulator.stats["steps"],
                        holder=runtime.spec.label(runtime.index),
                        assertion=label,
                        by=acting_runtime.spec.label(acting_runtime.index),
                        detail="vetoed at commit",
                    )
                    self.events.append(event)
                    self._drop_baselines(acting_runtime.index)
                    raise GuardVeto(event)

    @staticmethod
    def _overlapped(actor, other) -> bool:
        """Did the two instances' engine transactions overlap in time?"""
        if actor.txn is None or other.txn is None:
            return False
        other_commit = other.txn.commit_tick
        return other_commit is None or actor.txn.begin_tick < other_commit

    def _drop_baselines(self, index: int) -> None:
        for key in list(self._truth):
            if key[0] == index:
                del self._truth[key]
