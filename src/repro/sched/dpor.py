"""Source-set dynamic partial-order reduction over engine conflict granules.

The explorer's optimal mode (:mod:`repro.sched.explore`) replaces sibling
enumeration with *race reversal* (Flanagan & Godefroid's DPOR, with the
source-set refinement of Abdulla et al., specialised to transaction
isolation levels after Bouajjani, Enea & Román-Calvo): after each run,
this module derives per-step access sets from the engine's own history,
computes happens-before as vector clocks, finds the *immediate* races —
dependent step pairs with no happens-before path between them — and
reports, per race, the decision depth to revisit plus the instances whose
scheduling there can realise the reversed trace (the source set).  Only
those reversals are explored; schedules that merely commute independent
steps are never generated in the first place.

The access model is **level-aware** — the part that makes the reduction
sharp for this engine rather than a generic one:

* blocked attempts are *not* no-ops, but they are not writes either: an
  attempt on granule ``g`` makes a *probe* access that conflicts with
  reads and writes of ``g`` (so a queued writer races with the commit or
  abort that releases the lock — the reversals that change whether it
  blocks) but never with another probe: reordering two queued attempts
  leaves the waits-for graph, the victim choice and every outcome
  untouched, and treating them as racy spins an unbounded family of
  schedules differing only in no-op attempt placement;
* SNAPSHOT operations are private (reads resolve version chains against
  the begin snapshot, writes are buffered in the overlay): only the
  *begin* (which fixes the visibility of every chain in the transaction's
  static footprint — its snapshot baseline and the commit stamps that
  first-committer-wins will validate) and the *commit* (which publishes
  the write set as committed versions, or validation-reads the chains'
  commit stamps when FCW fails) carry accesses.  Two SI writers'
  in-flight operations therefore never race; their interaction is fully
  captured at begin/commit, so no reversal that first-committer-wins
  already forbids is ever enqueued;
* commits and aborts access exactly the granules they publish or undo
  (the ``writes``/``reads`` footprint the engine records on the history
  op), not "everything" as the lite signatures assume;
* commit/commit order is additionally observable through the semantic
  checker's commit-order serial replay, so two commits are dependent
  whenever one transaction's writes intersect the other's full footprint
  — even when the write sets themselves are disjoint;
* transaction *begin* order is only observable through deadlock victim
  selection (the youngest transaction in the cycle aborts), so begins are
  mutually ordered only in runs that actually witnessed a deadlock;
* every begin also reads the granules its ghost-binding snapshot terms
  mention (the paper's ``x_i = X_i`` conjunct is evaluated against the
  committed state of that moment), so reversals that change a logical
  variable's baseline — and with it the semantic verdict — are kept.

FCW and guard-veto aborts reference validation state that is awkward to
granule-ise precisely; they access the wildcard granule (dependent on
everything), which can only add races, never lose one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.program import Delete, Insert, Update
from repro.core.state import DbState
from repro.core.terms import Field, Item
from repro.sched.policy import (
    DEPENDENT,
    ORDER_GRANULE,
    StepRecord,
    _resource,
    happens_before,
)

#: Wildcard granule: conflicts with every other granule.  Used for the
#: rare steps whose exact footprint is not worth deriving (FCW/guard-veto
#: aborts, legacy blocked attempts without a key).
ANY_GRANULE = ("*",)

#: Access kind of a blocked lock attempt: conflicts with reads and writes
#: of the granule (the probe's outcome depends on both) but not with other
#: probes (two queued attempts commute).
PROBE = "probe"

_SNAPSHOT = "SNAPSHOT"
_EMPTY_STATE = DbState()


def _kinds_conflict(kind_a, kind_b) -> bool:
    """Access-kind conflict matrix: read/write/:data:`PROBE`."""
    if kind_a == PROBE and kind_b == PROBE:
        return False
    return bool(kind_a) or bool(kind_b)  # read-read is the only other no-op


def _granules_conflict(a: tuple, b: tuple) -> bool:
    """Granule equality extended with wildcards and coarse array granules."""
    if a == ANY_GRANULE or b == ANY_GRANULE:
        return True
    if a == b:
        return True
    # ("record", array, None) is the coarse whole-array granule produced
    # when a static index cannot be evaluated from the parameters alone
    if (
        a[0] == "record"
        and b[0] == "record"
        and a[1] == b[1]
        and (a[2] is None or b[2] is None)
    ):
        return True
    return False


def _access_conflict(acc_a, acc_b) -> bool:
    """Do two access sets share a granule with conflicting kinds?"""
    for granule, kind in acc_a:
        for other, other_kind in acc_b:
            if _kinds_conflict(kind, other_kind) and _granules_conflict(granule, other):
                return True
    return False


def accesses_conflict(sig_a, sig_b) -> bool:
    """Sleep-set conflict test over level-aware access signatures.

    Drop-in replacement for ``not independent(...)`` when the explorer's
    optimal mode records access sets instead of lite op signatures.
    """
    if sig_a is None or sig_b is None or DEPENDENT in (sig_a, sig_b):
        return True
    return _access_conflict(sig_a, sig_b)


def _sets_conflict(writes, footprint) -> bool:
    for granule in writes:
        for other in footprint:
            if _granules_conflict(granule, other):
                return True
    return False


# ---------------------------------------------------------------------------
# static footprints (ghost-binding terms, SNAPSHOT begin baselines)
# ---------------------------------------------------------------------------


def _term_granules(term, params_env: dict) -> set:
    """Granules a term's evaluation reads, indices resolved from params.

    An index that cannot be evaluated without database state or locals
    degrades to the coarse whole-array granule ``("record", array, None)``.
    """
    out: set = set()
    for atom in term.atoms():
        if isinstance(atom, Item):
            out.add(("item", atom.name))
        elif isinstance(atom, Field):
            try:
                index = atom.index.evaluate(_EMPTY_STATE, params_env)
            except Exception:
                index = None
            out.add(("record", atom.array, index))
    return out


def static_footprint(txn_type, args: dict) -> tuple:
    """``(ghost_granules, read_granules, write_granules)`` of one spec.

    ``ghost_granules`` are the granules the transaction's ghost-binding
    snapshot terms read at begin; the read/write sets over-approximate
    every granule the program body can touch (together they form the
    SNAPSHOT begin baseline; split, they feed the static deadlock check).
    """
    params_env = {
        param: args[param.name] for param in txn_type.params if param.name in args
    }
    ghost: set = set()
    for _logical, term in txn_type.snapshot:
        ghost |= _term_granules(term, params_env)
    reads: set = set()
    writes: set = set()
    for stmt in txn_type.statements():
        source = getattr(stmt, "source", None)
        if source is not None:
            reads |= _term_granules(source, params_env)
        target = getattr(stmt, "target", None)
        if target is not None:
            writes |= _term_granules(target, params_env)
        array = getattr(stmt, "array", None)
        if array is not None:  # ReadRecord
            try:
                index = stmt.index.evaluate(_EMPTY_STATE, params_env)
            except Exception:
                index = None
            reads.add(("record", array, index))
        table = getattr(stmt, "table", None)
        if table is not None:
            if isinstance(stmt, (Insert, Update, Delete)):
                writes.add(("table", table))
            else:
                reads.add(("table", table))
    return frozenset(ghost), frozenset(reads), frozenset(writes)


def may_deadlock(specs: Sequence, footprints: Sequence) -> bool:
    """Can this instance set possibly deadlock, by static lock shapes?

    Deadlock needs a hold-and-wait cycle: every participant holds a long
    lock another participant waits for, *while* waiting itself.  Per
    level, an instance may hold long locks on (RR/SER and unknown levels)
    everything it touches, (RU/RC) only what it writes, (SNAPSHOT)
    nothing — SI waits at commit validation but holds no lock anyone else
    can queue on.  The over-approximated waits-for edge ``i -> j``
    requires a granule ``g`` that ``i`` may request and ``j`` may hold,
    plus something ``i`` may hold meanwhile: a *different* granule, or a
    long shared lock on ``g`` itself that the request upgrades (the
    S-then-X upgrade deadlock needs only one granule).  No cycle means
    transaction begin order can never be observed through victim
    selection, so the explorer need not reverse it.
    """
    n = len(specs)
    read_holds: list = []
    holds: list = []
    requests: list = []
    for spec, (_ghost, reads, writes) in zip(specs, footprints):
        level = spec.level
        if level == _SNAPSHOT:
            read_holds.append(frozenset())
            holds.append(frozenset())
            requests.append(writes)  # commit validation waits on X holders
        elif level in ("READ UNCOMMITTED", "READ COMMITTED", "READ COMMITTED FCW"):
            read_holds.append(frozenset())  # short S never held across steps
            holds.append(writes)  # long X only
            requests.append(reads | writes)
        else:  # RR / SERIALIZABLE / anything unknown: be conservative
            read_holds.append(reads)
            holds.append(reads | writes)
            requests.append(reads | writes)
    edges: dict = {i: set() for i in range(n)}
    for i in range(n):
        _ghost_i, _reads_i, writes_i = footprints[i]
        for j in range(n):
            if i == j:
                continue
            for g in requests[i]:
                if not _sets_conflict((g,), holds[j]):
                    continue
                held_other = any(not _granules_conflict(h, g) for h in holds[i])
                upgrade = _sets_conflict((g,), read_holds[i]) and _sets_conflict(
                    (g,), writes_i
                )
                if held_other or upgrade:
                    edges[i].add(j)
                    break
    # cycle check over a tiny graph: depth-first with a colour map
    colour = {i: 0 for i in range(n)}  # 0 new, 1 on stack, 2 done

    def visit(i: int) -> bool:
        colour[i] = 1
        for j in edges[i]:
            if colour[j] == 1 or (colour[j] == 0 and visit(j)):
                return True
        colour[i] = 2
        return False

    return any(colour[i] == 0 and visit(i) for i in range(n))


# ---------------------------------------------------------------------------
# per-run race analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Race:
    """One immediate race: revisit ``depth`` and schedule an initial there."""

    depth: int  # decision depth of the earlier step
    initials: frozenset  # instances that can start the reversed trace
    preferred: int  # the later step's instance (scheduled when possible)


class RaceAnalyzer:
    """Level-aware dependence and race detection for one instance set."""

    def __init__(self, specs: Sequence) -> None:
        self.specs = list(specs)
        footprints = [static_footprint(spec.txn_type, spec.args) for spec in self.specs]
        self._ghost = [ghost for ghost, _reads, _writes in footprints]
        self._reads = [reads for _ghost, reads, _writes in footprints]
        self._body = [reads | writes for _ghost, reads, writes in footprints]
        # when no hold-and-wait cycle is statically possible, begin order
        # can never be observed (victim selection is the only observer)
        # and the explorer skips every begin-order reversal
        self.may_deadlock = may_deadlock(self.specs, footprints)

    # -- access model -------------------------------------------------------
    def step_accesses(self, record, levels: dict, order_begins: bool) -> frozenset:
        """The level-aware ``(granule, is_write)`` set of one step."""
        acc: set = set()
        snapshot = record.level == _SNAPSHOT
        for op in record.ops:
            if op.kind == "begin":
                for granule in self._ghost[record.index]:
                    acc.add((granule, False))
                if snapshot:
                    # the begin snapshot fixes every future read and the
                    # FCW version baseline of every future write
                    for granule in self._body[record.index]:
                        acc.add((granule, False))
                if order_begins:
                    acc.add((ORDER_GRANULE, True))
            elif op.kind == "commit":
                for key in op.info.get("writes", ()):
                    acc.add((_resource(key), True))
                for key in op.info.get("reads", ()):
                    acc.add((_resource(key), False))
            elif op.kind == "abort":
                reason = op.info.get("reason", "")
                aborted_snapshot = levels.get(op.txn_id) == _SNAPSHOT
                if "first-committer-wins" in reason and aborted_snapshot:
                    # failed SI commit: validation read the write set's
                    # chain commit stamps; nothing was published
                    for key in op.info.get("writes", ()):
                        acc.add((_resource(key), False))
                elif "first-committer-wins" in reason or "guard veto" in reason:
                    acc.add((ANY_GRANULE, True))
                elif aborted_snapshot:
                    pass  # buffered writes discarded privately
                else:
                    # unstamping drops the pending versions (restoring the
                    # prior chain heads) and the lock release unblocks
                    # queued readers/writers
                    for key in op.info.get("writes", ()):
                        acc.add((_resource(key), True))
                    for key in op.info.get("reads", ()):
                        acc.add((_resource(key), False))
            else:  # r | w | ins | del | upd
                if snapshot:
                    continue  # private snapshot read / buffered write
                if op.key is None:
                    acc.add((ANY_GRANULE, True))
                else:
                    acc.add((_resource(op.key), op.kind != "r"))
        if record.blocked_on is not None:
            key, _mode = record.blocked_on
            acc.add((ANY_GRANULE if key is None else _resource(key), PROBE))
        return frozenset(acc)

    def online_signature(self, runtime, ops) -> frozenset:
        """Level-aware access signature of one just-executed step.

        Used by the optimal explorer for its sleep sets in place of
        :func:`~repro.sched.policy.op_signature`, whose commit/abort
        signatures are :data:`~repro.sched.policy.DEPENDENT` and would
        wake every sleeping sibling.  Conservative where the run-wide
        context is unknown: begins always carry the ordering granule (a
        later deadlock could make begin order observable) and aborted
        transactions of other instances are assumed non-SNAPSHOT.
        """
        record = StepRecord(
            depth=-1,
            index=runtime.index,
            txn_id=runtime.txn.txn_id if runtime.txn is not None else None,
            level=runtime.spec.level,
            ops=tuple(ops),
            blocked_on=runtime.last_block if runtime.blocked else None,
        )
        acc = self.step_accesses(record, {}, self.may_deadlock)
        if any(op.kind == "commit" for op in record.ops):
            # commit order between two transactions is observable through
            # the semantic checker's serial replay whenever one's writes
            # meet the other's footprint (see :meth:`analyze`); the commit
            # history op only carries long-lock reads (empty at RC/SI), so
            # a commit's sleep signature must read the *static* read
            # footprint or two write-skewed commits would never wake each
            # other and the reversed commit order would be sleep-pruned
            acc = acc | frozenset(
                (granule, False) for granule in self._reads[record.index]
            )
        if not acc and not record.ops:
            # nothing recorded and no block noted: unknown step, stay
            # conservative (an empty set from *private* SNAPSHOT ops is
            # fine — those genuinely commute with everything)
            return frozenset(((ANY_GRANULE, True),))
        return acc

    # -- race detection -----------------------------------------------------
    def analyze(self, steps: Sequence) -> list:
        """Immediate races of one recorded run, as :class:`Race` items."""
        n = len(steps)
        if n < 2:
            return []
        levels = {}
        for record in steps:
            if record.txn_id is not None:
                levels[record.txn_id] = record.level
        order_begins = any(
            op.kind == "abort" and op.info.get("reason") == "deadlock victim"
            for record in steps
            for op in record.ops
        )
        accs = [self.step_accesses(record, levels, order_begins) for record in steps]
        footprints = self._txn_footprints(steps)
        commit_of = [self._commit_txn(record) for record in steps]

        def dependent(i: int, j: int) -> bool:
            a, b = commit_of[i], commit_of[j]
            if a is not None and b is not None:
                # commit order is observable through the semantic checker's
                # serial replay whenever the transactions touch each other
                reads_a, writes_a = footprints.get(a, (frozenset(), frozenset()))
                reads_b, writes_b = footprints.get(b, (frozenset(), frozenset()))
                return _sets_conflict(writes_a, reads_b | writes_b) or _sets_conflict(
                    writes_b, reads_a | writes_a
                )
            return _access_conflict(accs[i], accs[j])

        pred = happens_before(steps, dependent)
        races: list = []
        for j in range(n):
            for i in range(j):
                if steps[i].index == steps[j].index:
                    continue
                if not dependent(i, j):
                    continue
                if any(
                    (pred[k] >> i) & 1 and (pred[j] >> k) & 1 for k in range(i + 1, j)
                ):
                    continue  # not immediate: an intermediate step orders them
                # source set: the initials of notdep(i) . j — the steps after
                # i that are not causally behind it, restricted to the ones
                # nothing else in that suffix precedes
                suffix = [k for k in range(i + 1, j) if not (pred[k] >> i) & 1]
                suffix.append(j)
                initials = set()
                for k in suffix:
                    if not any((pred[k] >> m) & 1 for m in suffix if m < k):
                        initials.add(steps[k].index)
                races.append(
                    Race(
                        depth=steps[i].depth,
                        initials=frozenset(initials),
                        preferred=steps[j].index,
                    )
                )
        return races

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _commit_txn(record):
        for op in record.ops:
            if op.kind == "commit":
                return op.txn_id
        return None

    @staticmethod
    def _txn_footprints(steps) -> dict:
        """Per-transaction ``(reads, writes)`` granule sets over the run."""
        footprints: dict = {}
        for record in steps:
            for op in record.ops:
                reads, writes = footprints.setdefault(op.txn_id, (set(), set()))
                if op.kind == "r" and op.key is not None:
                    reads.add(_resource(op.key))
                elif op.kind in ("w", "ins", "upd", "del") and op.key is not None:
                    writes.add(_resource(op.key))
                elif op.kind in ("commit", "abort"):
                    for key in op.info.get("writes", ()):
                        writes.add(_resource(key))
                    for key in op.info.get("reads", ()):
                        reads.add(_resource(key))
        return {
            txn_id: (frozenset(reads), frozenset(writes))
            for txn_id, (reads, writes) in footprints.items()
        }
