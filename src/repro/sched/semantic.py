"""The dynamic semantic-correctness check — the paper's criterion (2).

A schedule ``Sch`` is *semantically correct* when ``{I} Sch {I ∧ Q_Sch}``:
the final state is consistent and reflects the cumulative result of the
committed transactions as if they had run serially in commit order.

Operationalisation (each part is reported separately so benchmarks can
show exactly which clause a weak level violates):

1. **consistency** — the application invariant ``I`` holds in the final
   committed state;
2. **per-transaction results** — each committed instance's ``Q_i`` holds in
   the committed state *as of its commit* (paper: ``Q_i`` must not have
   been invalidated while active), evaluated with the instance's actual
   parameters, logical-variable snapshot and workspace;
2b. **serial-order results** — ``Q_i`` also holds at commit time when the
   logical variables are bound from the *serial replay* in commit order.
   This is the operative content of ``Q_Sch``: the schedule's postcondition
   must equal that of the serial schedule of the same transactions in
   completion order, and the serial schedule's ``Q_i`` quantifies over the
   serial initial values.  A lost update passes check 2 (the victim's own
   observation was stale but self-consistent) and fails exactly here;
3. **cumulative result** — an optional application-supplied ``Q_Sch``
   callable over (initial state, final state, committed outcomes); this is
   where cross-transaction clauses live (e.g. "no order was loaded onto
   two delivery trucks", "the balance grew by the sum of the deposits");
4. **serial replay** — informational: whether the final state equals the
   serial execution of the committed instances in commit order.  Semantic
   correctness does *not* require this (that is the paper's point), so it
   is reported but never counted as a violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.formula import Formula
from repro.core.state import DbState
from repro.errors import EvaluationError
from repro.sched.schedule import ScheduleResult


@dataclass
class SemanticReport:
    """Verdict of the semantic-correctness check for one schedule."""

    consistent: bool
    result_violations: list = field(default_factory=list)
    cumulative_violations: list = field(default_factory=list)
    serial_equivalent: bool | None = None
    notes: list = field(default_factory=list)

    @property
    def correct(self) -> bool:
        return self.consistent and not self.result_violations and not self.cumulative_violations

    @property
    def violation_count(self) -> int:
        """How many distinct clauses of the criterion failed.

        One for a broken invariant plus one per result/cumulative violation;
        ``serial_equivalent`` is informational and never counted (see the
        module docstring).
        """
        return (
            (0 if self.consistent else 1)
            + len(self.result_violations)
            + len(self.cumulative_violations)
        )

    def summary(self) -> str:
        if self.correct:
            tail = "" if self.serial_equivalent else " (final state not serially reachable)"
            return "semantically correct" + tail
        parts = []
        if not self.consistent:
            parts.append("invariant violated")
        parts.extend(self.result_violations)
        parts.extend(self.cumulative_violations)
        return "VIOLATIONS: " + "; ".join(parts)


def _evaluate(formula: Formula, state: DbState, env: dict) -> bool | None:
    try:
        return formula.evaluate(state, env)
    except EvaluationError:
        return None


def check_semantic_correctness(
    result: ScheduleResult,
    invariant: Formula,
    cumulative: Callable[[DbState, DbState, list], Iterable] | None = None,
) -> SemanticReport:
    """Check one simulated schedule against the semantic criterion."""
    report = SemanticReport(consistent=True)

    ok = _evaluate(invariant, result.final, {})
    if ok is None:
        report.notes.append("invariant not evaluable on final state")
    elif not ok:
        report.consistent = False

    serial_state = result.initial.copy()
    for outcome in result.committed:
        state_at_commit = outcome.committed_state or result.final
        verdict = _evaluate(outcome.txn_type.result, state_at_commit, outcome.env)
        if verdict is None:
            report.notes.append(f"{outcome.name}: Q not evaluable")
        elif not verdict:
            report.result_violations.append(f"{outcome.name}: Q_i false at commit")
        # serial-order check: rebind the logical variables from the serial
        # replay and require Q_i at the actual commit-time state
        serial_env = dict(outcome.env)
        try:
            ghost_env = {}
            for param in outcome.txn_type.params:
                ghost_env[param] = outcome.args[param.name]
            for logical, term in outcome.txn_type.snapshot:
                ghost_env[logical] = term.evaluate(serial_state, ghost_env)
            serial_env.update(ghost_env)
            outcome.txn_type.run(serial_state, outcome.args)
        except (EvaluationError, KeyError):
            report.notes.append(f"{outcome.name}: serial replay not evaluable")
            continue
        serial_verdict = _evaluate(outcome.txn_type.result, state_at_commit, serial_env)
        if serial_verdict is None:
            report.notes.append(f"{outcome.name}: serial-order Q not evaluable")
        elif not serial_verdict:
            report.result_violations.append(
                f"{outcome.name}: Q_i inconsistent with serial commit order"
            )

    if cumulative is not None:
        report.cumulative_violations.extend(
            str(v) for v in cumulative(result.initial, result.final, result.committed)
        )

    report.serial_equivalent = serial_replay_matches(result)
    return report


def serial_replay_matches(result: ScheduleResult) -> bool:
    """Does the final state equal a serial run in commit order?"""
    state = result.initial.copy()
    for outcome in result.committed:
        try:
            outcome.txn_type.run(state, outcome.args)
        except EvaluationError:
            return False
    return state.same_as(result.final)


def validate_level(
    initial: DbState,
    specs,
    invariant: Formula,
    rounds: int = 50,
    seed: int = 0,
    cumulative: Callable | None = None,
    retry: bool = True,
) -> dict:
    """Run many random interleavings; tally semantic violations.

    The dynamic counterpart of the static analysis: at the chooser's level
    the tally should be zero; one level below, witnesses should appear.
    Returns ``{"rounds", "violations", "witnesses", "serial_divergences"}``.
    """
    from repro.sched.simulator import Simulator, round_seeds

    violations = 0
    witnesses = []
    serial_divergences = 0
    for round_index, round_seed in enumerate(round_seeds(seed, rounds)):
        simulator = Simulator(initial.copy(), specs, seed=round_seed, retry=retry)
        schedule = simulator.run()
        report = check_semantic_correctness(schedule, invariant, cumulative)
        if not report.correct:
            violations += 1
            if len(witnesses) < 3:
                witnesses.append((round_index, report.summary(), schedule.script))
        if report.serial_equivalent is False:
            serial_divergences += 1
    return {
        "rounds": rounds,
        "violations": violations,
        "witnesses": witnesses,
        "serial_divergences": serial_divergences,
    }
