"""Systematic schedule exploration: source-set DPOR and DPOR-lite.

:class:`~repro.sched.policy.ExhaustivePolicy` drives a single run down one
branch of the scheduling tree; this module owns the backtracking.  Because
replay is deterministic, re-running a decision prefix reconstructs a node
exactly (the simulator is cheap; cloning engine state mid-run would not
be).  Two pruning modes:

* ``dpor="optimal"`` — **source-set DPOR** (:mod:`repro.sched.dpor`): the
  backtrack loop is driven by race reversal instead of sibling
  enumeration.  After each run the analyzer derives level-aware access
  sets from the engine history, finds the immediate races, and enqueues —
  per race — one member of the source set at the decision depth of the
  earlier step.  A shared LIFO frontier of pending reversals replaces the
  per-branch recursion; parallel workers steal from it.  Sleep sets
  (below) still apply.  Cross-run visited-state dedup is *off* in this
  mode: cutting a run at a state first reached under a different prefix
  would silence the races its continuation must register at this run's
  own frames, losing reversals — the two prunings do not compose soundly.

* ``dpor="lite"`` — the original DPOR-lite: full sibling enumeration,
  pruned by sleep sets and by a **state-fingerprint** dedup (a run that
  reaches a previously-seen global state stops; every continuation has
  been or will be explored from the first visit).  Kept as the
  differential-testing baseline; its parallel mode fans the root branches
  across workers with probe-seeded sleep sets.

**Sleep sets** (after Godefroid) are shared by both modes: when branch
``i`` at a node has been fully explored, sibling branches carry ``i``'s
first-step signature asleep — any schedule that would merely commute ``i``
past independent steps is never re-explored.  Signatures come from the
engine history (:func:`repro.sched.policy.op_signature`).

State fingerprints are structural token tuples (no ``repr`` on the hot
path) stored in a stripe-locked visited set, so parallel lite exploration
does not serialise on a single lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.parallel import parallel_map
from repro.core.state import DbState
from repro.sched.dpor import RaceAnalyzer, accesses_conflict
from repro.sched.policy import DEPENDENT, ExhaustivePolicy
from repro.sched.simulator import InstanceSpec, Simulator

# ---------------------------------------------------------------------------
# state fingerprints
# ---------------------------------------------------------------------------


def _freeze(value):
    """Canonical hashable form of a value, structurally (no string
    formatting): dicts become attr-sorted tuples, lists/sets become
    tuples, scalars pass through."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(item) for item in value))
    return value


def _orderable(value):
    """A type-tagged sort key: lets mixed-type frozen values sort stably."""
    if isinstance(value, tuple):
        return (0, tuple(_orderable(item) for item in value))
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if value is None:
        return (4, 0)
    return (5, repr(value))


def _state_token(state: DbState) -> tuple:
    return (
        tuple(sorted((k, _freeze(v)) for k, v in state.items.items())),
        tuple(
            (array, tuple(sorted((index, _freeze(fields)) for index, fields in cells.items())))
            for array, cells in sorted(state.arrays.items())
        ),
        tuple(
            (table, tuple(sorted((_freeze(row) for row in rows), key=_orderable)))
            for table, rows in sorted(state.tables.items())
        ),
    )


def _overlay_token(overlay) -> tuple | None:
    if overlay is None:
        return None
    return (
        tuple(sorted((name, _freeze(v)) for name, v in overlay.items.items())),
        tuple(sorted((key, _freeze(attrs)) for key, attrs in overlay.records.items())),
        # op order of own inserts is observable (they trail snapshot rows)
        tuple(
            (table, tuple((rid, _freeze(image)) for rid, image in rows.items()))
            for table, rows in sorted(overlay.inserted.items())
        ),
        tuple((table, tuple(sorted(rids))) for table, rids in sorted(overlay.deleted.items())),
        tuple(
            (table, tuple(sorted((rid, _freeze(delta)) for rid, delta in rows.items())))
            for table, rows in sorted(overlay.updated.items())
        ),
        tuple(sorted(overlay.bumps.items())),
    )


def _txn_token(txn, store) -> tuple | None:
    if txn is None:
        return None
    return (
        txn.txn_id,
        txn.level,
        txn.status,
        tuple(sorted(txn.long_locks)),
        tuple(sorted(txn.write_set)),
        tuple(sorted((k, v) for k, v in txn.read_versions.items())),
        tuple(_freeze(entry) for entry in txn.stamped),
        tuple(sorted(txn.bump_counts.items())),
        # an active snapshot pins *historical* versions the global views
        # below don't cover: token the resolved snapshot view itself (the
        # old fingerprint tokened the deep-copied private state the same way)
        None
        if txn.snapshot is None
        else (
            txn.snapshot.xmax,
            tuple(sorted(txn.snapshot.xip)),
            _state_token(store.materialize(snap=txn.snapshot)),
        ),
        _overlay_token(txn.overlay),
    )


def _env_token(env: dict) -> tuple:
    # env keys are hash-consed Term refs (Param/Local/LogicalVar): sort by
    # class and name rather than repr
    return tuple(
        sorted(
            ((k.__class__.__name__, getattr(k, "name", repr(k))), _freeze(v))
            for k, v in env.items()
        )
    )


def state_fingerprint(simulator: Simulator) -> tuple:
    """A structural token of everything that determines the future.

    Two runs whose fingerprints collide behave identically from here on:
    the token covers the version chains (dirty view, committed view,
    per-chain commit stamps — which first-committer-wins compares against
    recorded read stamps — and the commit counters), the lock table
    (granule holders and predicate locks), waits-for edges, and each
    instance's full progress (interpreter position, workspace, transaction
    state including pinned snapshot views and write overlays).  Built from
    plain tuples — no ``repr``/hashing round-trips on the hot path.
    """
    engine = simulator.engine
    store = engine.store
    locks = engine.locks
    commit_stamps = []
    for name, chain in store.items.items():
        commit_stamps.append((("item", name), chain.last_commit_xid))
    for (array, index), chain in store.records.items():
        commit_stamps.append((("record", array, index), chain.last_commit_xid))
    for table, chains in store.tables.items():
        for rid, chain in chains.items():
            commit_stamps.append((("row", table, rid), chain.last_commit_xid))
    return (
        _state_token(store.current),
        _state_token(store.committed),
        tuple(sorted((k, v) for k, v in store.versions.items())),
        tuple(sorted(commit_stamps)),
        tuple(
            (key, tuple(sorted(holders.items())))
            for key, holders in sorted(locks._held.items())
            if holders
        ),
        tuple(
            sorted(
                (lock.txn_id, lock.table, lock.mode, lock.duration) for lock in locks._predicates
            )
        ),
        tuple(sorted(simulator.wfg._graph.edges())),
        tuple(
            (
                rt.index,
                rt.status,
                rt.started,
                rt.at_commit,
                rt.blocked,
                rt.ops_done,
                rt.restarts,
                _env_token(rt.env),
                tuple(sorted(((k, _freeze(v)) for k, v in rt.obs.items()), key=_orderable)),
                _txn_token(rt.txn, store),
            )
            for rt in simulator._runtimes
        ),
    )


class _Visited:
    """Check-and-add map of visited state fingerprints, stripe-locked.

    Fingerprints are spread across ``stripes`` independent ``(dict, lock)``
    pairs by hash, so parallel workers rarely contend on the same lock.

    Plain state caching composes unsoundly with sleep sets: a state first
    reached with sleep set ``S`` has only the futures outside ``S``
    explored, so cutting a later visit whose sleep set allows *more* can
    lose schedules (Godefroid).  Each fingerprint therefore stores the
    antichain of sleep-index sets it was visited with, and a new visit is
    pruned only when some stored visit slept on a subset of what the new
    one sleeps on — everything the new visit could do, that visit did.
    """

    def __init__(self, stripes: int = 16) -> None:
        self._stripes = [({}, threading.Lock()) for _ in range(stripes)]

    def seen(self, fingerprint, sleep: frozenset = frozenset()) -> bool:
        visits, lock = self._stripes[hash(fingerprint) % len(self._stripes)]
        with lock:
            stored = visits.get(fingerprint)
            if stored is None:
                visits[fingerprint] = [sleep]
                return False
            if any(previous <= sleep for previous in stored):
                return True
            stored[:] = [previous for previous in stored if not sleep <= previous]
            stored.append(sleep)
            return False

    def __len__(self) -> int:
        return sum(len(visits) for visits, _lock in self._stripes)


class _Budget:
    """Shared run budget; ``take()`` is False once exhausted."""

    def __init__(self, limit: int | None) -> None:
        self.limit = limit
        self.used = 0
        self.exhausted = False
        self._lock = threading.Lock()

    def take(self) -> bool:
        with self._lock:
            if self.limit is not None and self.used >= self.limit:
                self.exhausted = True
                return False
            self.used += 1
            return True


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


@dataclass
class ExplorationResult:
    """Outcome of one :func:`explore` call."""

    mode: str = "lite"  # optimal | lite | none (pruning disabled)
    runs: int = 0  # simulator runs launched (incl. pruned branches)
    schedules: int = 0  # runs that reached a quiescent end state
    pruned_sleep: int = 0  # branches cut because every child was asleep
    pruned_state: int = 0  # branches cut on a revisited state fingerprint
    races: int = 0  # immediate races detected (optimal mode)
    reversals: int = 0  # reversal candidates enqueued (optimal mode)
    truncated_depth: int = 0  # branches cut by the max_depth bound
    truncated: bool = False  # run budget exhausted before the tree was done
    results: list = field(default_factory=list)  # ScheduleResults (keep_results)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "runs": self.runs,
            "schedules": self.schedules,
            "pruned_sleep": self.pruned_sleep,
            "pruned_state": self.pruned_state,
            "races": self.races,
            "reversals": self.reversals,
            "truncated_depth": self.truncated_depth,
            "truncated": self.truncated,
        }


# ---------------------------------------------------------------------------
# the explorer
# ---------------------------------------------------------------------------


class _Node:
    """One reached decision point, shared across runs (optimal mode)."""

    __slots__ = ("runnable", "sleep", "scheduled", "queued", "signatures")

    def __init__(self, runnable: tuple, sleep: dict, choice: int) -> None:
        # reversals only schedule *runnable* instances: a blocked one
        # would execute a lock re-attempt here, not its racing step, and
        # at all-blocked nodes the deadlock resolution is trigger-
        # independent (global cycle search, youngest-in-cycle victim)
        self.runnable = runnable
        self.sleep = dict(sleep)  # index -> signature asleep at entry
        self.scheduled = {choice}  # candidates launched (or taken inline)
        self.queued: set = set()  # candidates pending in the frontier
        self.signatures: dict = {}  # candidate -> first-step signature


_ROOT = object()  # frontier sentinel: the initial unconstrained run


class Explorer:
    """Depth-first exploration over one instance set."""

    def __init__(
        self,
        initial: DbState,
        specs: Sequence[InstanceSpec],
        *,
        retry: bool = True,
        max_steps: int = 100_000,
        max_schedules: int | None = None,
        max_depth: int | None = None,
        pruning: bool = True,
        dpor: str = "optimal",
        workers: int = 1,
        observer_factory: Callable | None = None,
        on_schedule: Callable | None = None,
        keep_results: bool = True,
        engine_opts: dict | None = None,
    ) -> None:
        if dpor not in ("optimal", "lite"):
            raise ValueError(f"dpor must be 'optimal' or 'lite', not {dpor!r}")
        self.engine_opts = dict(engine_opts or {})
        self.initial = initial
        self.specs = list(specs)
        self.retry = retry
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.pruning = pruning
        self.dpor = dpor if pruning else "none"
        self.workers = max(1, workers)
        self.observer_factory = observer_factory
        self.on_schedule = on_schedule
        self.keep_results = keep_results
        # the visited-state dedup composes with sibling enumeration, not
        # with race reversal (see module docstring): lite only
        self.visited = _Visited() if pruning and self.dpor == "lite" else None
        self.budget = _Budget(max_schedules)
        self.result = ExplorationResult(mode=self.dpor)
        self._lock = threading.Lock()
        # optimal-mode state: the node registry and the reversal frontier
        self._nodes: dict = {}
        self._frontier: list = []
        self._registry_lock = threading.Lock()
        self._analyzer = RaceAnalyzer(self.specs) if self.dpor == "optimal" else None
        self._stop = False

    # -- single runs --------------------------------------------------------
    def _policy(self, prefix, entry_sleep, max_depth=None) -> ExhaustivePolicy:
        return ExhaustivePolicy(
            prefix,
            entry_sleep,
            pruning=self.pruning,
            visited=self.visited,
            fingerprint=state_fingerprint if self.visited is not None else None,
            max_depth=self.max_depth if max_depth is None else max_depth,
            record_steps=self._analyzer is not None,
            signature_fn=self._analyzer.online_signature if self._analyzer else None,
            conflict=accesses_conflict if self._analyzer else None,
        )

    def _run(self, policy: ExhaustivePolicy):
        observers = None
        if self.observer_factory is not None:
            built = self.observer_factory()
            observers = built if isinstance(built, (list, tuple)) else [built]
        simulator = Simulator(
            self.initial.copy(),
            self.specs,
            retry=self.retry,
            max_steps=self.max_steps,
            policy=policy,
            observers=observers,
            engine_opts=self.engine_opts,
        )
        schedule_result = simulator.run()
        # let consumers (e.g. the certification pipeline) read per-run
        # observer state — monitors are born and die with their run
        schedule_result.observers = observers or []
        with self._lock:
            self.result.runs += 1
            if policy.stop_reason is None:
                self.result.schedules += 1
                if self.keep_results:
                    self.result.results.append(schedule_result)
            elif policy.stop_reason == "sleep":
                self.result.pruned_sleep += 1
            elif policy.stop_reason == "state":
                self.result.pruned_state += 1
            elif policy.stop_reason == "depth":
                self.result.truncated_depth += 1
        if policy.stop_reason is None and self.on_schedule is not None:
            self.on_schedule(schedule_result)
        return schedule_result

    # -- DPOR-lite DFS (sibling enumeration) --------------------------------
    def _dfs(self, root_prefix: list, root_entry_sleep: dict) -> None:
        """Exhaust the subtree under ``root_prefix``.

        ``path`` holds the frames of decisions *below* the root prefix; the
        deepest frame with an untried, awake sibling is re-opened by
        re-running the simulator with the extended prefix (deterministic
        replay reconstructs the node).
        """
        if not self.budget.take():
            return
        policy = self._policy(root_prefix, root_entry_sleep)
        self._run(policy)
        path = list(policy.frames)
        while path:
            frame = path[-1]
            candidate = frame.next_candidate()
            if candidate is None:
                path.pop()
                continue
            if not self.budget.take():
                return
            frame.choice = candidate
            prefix = root_prefix + [f.choice for f in path]
            if self.pruning:
                # descendants of the new branch start with the ancestors'
                # sleep entries plus the fully-explored siblings
                entry_sleep = dict(frame.sleep)
                entry_sleep.update(dict(frame.tried))
            else:
                entry_sleep = {}
            policy = self._policy(prefix, entry_sleep)
            self._run(policy)
            frame.tried.append((candidate, policy.candidate_signature or DEPENDENT))
            path.extend(policy.frames)

    def _probe_signature(self, index: int):
        """First-step signature of root branch ``index`` (one-step run).

        Probe runs are bookkeeping, not exploration — they bypass the
        stats and the visited set (max_depth stops them before the first
        fingerprint check).
        """
        policy = self._policy([index], {}, max_depth=1)
        Simulator(
            self.initial.copy(),
            self.specs,
            retry=self.retry,
            max_steps=self.max_steps,
            policy=policy,
            engine_opts=self.engine_opts,
        ).run()
        return policy.candidate_signature or DEPENDENT

    # -- source-set DPOR (race-driven frontier) -----------------------------
    def _expand(self, item) -> None:
        """Run one frontier item and enqueue the reversals it uncovers."""
        if item is _ROOT:
            prefix: list = []
            entry_sleep: dict = {}
        else:
            key, candidate = item
            with self._registry_lock:
                node = self._nodes[key]
                node.queued.discard(candidate)
                if candidate in node.scheduled or candidate in node.sleep:
                    return  # covered since it was enqueued
                node.scheduled.add(candidate)
                # descendants start with the node's entry sleep plus the
                # signatures of the sibling branches explored before them
                entry_sleep = dict(node.sleep)
                entry_sleep.update(node.signatures)
            prefix = list(key) + [candidate]
        if not self.budget.take():
            self._stop = True
            return
        policy = self._policy(prefix, entry_sleep)
        self._run(policy)
        self._integrate(policy, item)

    def _integrate(self, policy: ExhaustivePolicy, item) -> None:
        """Register the run's nodes and schedule its race reversals."""
        races = self._analyzer.analyze(policy.steps)
        decisions = list(policy.prefix) + [frame.choice for frame in policy.frames]
        new_items: list = []
        reversals = 0
        with self._registry_lock:
            if item is not _ROOT:
                key, candidate = item
                parent = self._nodes.get(key)
                if parent is not None:
                    signature = policy.candidate_signature
                    parent.signatures[candidate] = (
                        DEPENDENT if signature is None else signature
                    )
            offset = len(policy.prefix)
            for position, frame in enumerate(policy.frames):
                node_key = tuple(decisions[: offset + position])
                node = self._nodes.get(node_key)
                if node is None:
                    node = _Node(frame.runnable, frame.sleep, frame.choice)
                    self._nodes[node_key] = node
                else:
                    node.scheduled.add(frame.choice)
                if frame.tried:
                    node.signatures.setdefault(frame.choice, frame.tried[0][1])
            for race in races:
                if race.depth >= len(decisions):
                    continue
                node = self._nodes.get(tuple(decisions[: race.depth]))
                if node is None:
                    continue
                covered = node.scheduled | node.queued | set(node.sleep)
                if race.initials & covered:
                    continue  # the reversed trace is already scheduled
                enabled = [i for i in node.runnable if i not in covered]
                if not enabled:
                    continue
                if race.preferred in race.initials and race.preferred in enabled:
                    chosen = [race.preferred]
                else:
                    in_enabled = [i for i in sorted(race.initials) if i in enabled]
                    # no initial is schedulable here (e.g. it was blocked at
                    # this node): conservatively open every awake sibling
                    chosen = in_enabled[:1] if in_enabled else enabled
                for index in chosen:
                    node.queued.add(index)
                    new_items.append((tuple(decisions[: race.depth]), index))
                    reversals += 1
        with self._lock:
            self.result.races += len(races)
            self.result.reversals += reversals
        if new_items:
            self._push(new_items)

    def _push(self, items: list) -> None:
        if self.workers <= 1:
            self._frontier.extend(items)
        else:
            with self._frontier_cond:
                self._frontier.extend(items)
                self._frontier_cond.notify_all()

    def _drain_sequential(self) -> None:
        self._frontier = [_ROOT]
        while self._frontier and not self._stop:
            self._expand(self._frontier.pop())

    def _drain_parallel(self) -> None:
        self._frontier = [_ROOT]
        self._frontier_cond = threading.Condition()
        busy = [0]

        def worker() -> None:
            while True:
                with self._frontier_cond:
                    while not self._frontier and busy[0] > 0 and not self._stop:
                        self._frontier_cond.wait()
                    if (not self._frontier and busy[0] == 0) or self._stop:
                        self._frontier_cond.notify_all()
                        return
                    item = self._frontier.pop()
                    busy[0] += 1
                try:
                    self._expand(item)
                finally:
                    with self._frontier_cond:
                        busy[0] -= 1
                        self._frontier_cond.notify_all()

        threads = [
            threading.Thread(target=worker, name=f"dpor-worker-{i}", daemon=True)
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    # -- entry point --------------------------------------------------------
    def run(self) -> ExplorationResult:
        if self.dpor == "optimal":
            if self.workers <= 1:
                self._drain_sequential()
            else:
                self._drain_parallel()
        elif self.workers <= 1:
            self._dfs([], {})
        else:
            # every instance is ready at the root, so the root's enabled
            # set is simply all of them, in index order
            roots = list(range(len(self.specs)))
            # earlier siblings sleep in later subtrees, exactly as the
            # sequential DFS would leave them — probe their signatures first
            if self.pruning:
                signatures = {index: self._probe_signature(index) for index in roots}
            tasks = []
            for position, index in enumerate(roots):
                entry_sleep = (
                    {earlier: signatures[earlier] for earlier in roots[:position]}
                    if self.pruning
                    else {}
                )
                tasks.append((index, entry_sleep))
            parallel_map(
                lambda task: self._dfs([task[0]], task[1]),
                tasks,
                workers=self.workers,
            )
        self.result.truncated = self.budget.exhausted
        return self.result


def explore(
    initial: DbState,
    specs: Sequence[InstanceSpec],
    *,
    retry: bool = True,
    max_steps: int = 100_000,
    max_schedules: int | None = None,
    max_depth: int | None = None,
    pruning: bool = True,
    dpor: str = "optimal",
    workers: int = 1,
    observer_factory: Callable | None = None,
    on_schedule: Callable | None = None,
    keep_results: bool = True,
    engine_opts: dict | None = None,
) -> ExplorationResult:
    """Explore the scheduling tree of ``specs`` over ``initial``.

    Returns an :class:`ExplorationResult`; completed schedules are kept in
    ``result.results`` (``keep_results``) and streamed to ``on_schedule``.
    ``max_schedules`` bounds the total number of simulator runs (pruned
    branches included); ``max_depth`` bounds decisions per run; ``pruning``
    toggles pruning entirely (full DFS when off), ``dpor`` selects the
    pruning algorithm — ``"optimal"`` (source-set DPOR with level-aware
    race reversal, the default) or ``"lite"`` (sleep sets + visited-state
    dedup, the differential baseline).  ``observer_factory`` builds fresh
    per-run observers (e.g. an anomaly monitor); ``workers`` fans the
    exploration across threads (optimal mode steals pending reversals from
    a shared frontier; lite mode pre-splits the root branches).
    ``engine_opts`` passes extra Engine keyword options to every run
    (e.g. ``{"vacuum": "off"}`` to disable version GC).
    """
    return Explorer(
        initial,
        specs,
        retry=retry,
        max_steps=max_steps,
        max_schedules=max_schedules,
        max_depth=max_depth,
        pruning=pruning,
        dpor=dpor,
        workers=workers,
        observer_factory=observer_factory,
        on_schedule=on_schedule,
        keep_results=keep_results,
        engine_opts=engine_opts,
    ).run()

def invariant_oracle(
    initial: DbState,
    specs: Sequence[InstanceSpec],
    predicates: dict,
    *,
    max_schedules: int | None = 64,
    max_steps: int = 20_000,
    dpor: str = "optimal",
) -> dict:
    """Run the explorer as a CEGIS oracle for candidate invariants.

    ``predicates`` maps candidate names to ``final_state -> bool``
    callables.  Every completed schedule's final database state is checked
    against every still-standing predicate; a predicate that fails on any
    final state is *violated* — the schedule is a counterexample showing
    the instance set does not preserve the candidate.

    Returns ``{name: witness}`` for each violated predicate (``witness`` is
    the committed-transaction order of the falsifying schedule) plus the
    bookkeeping key ``"__schedules__"`` counting schedules examined.
    Violated predicates stop being evaluated immediately, so the oracle
    stays cheap once a candidate is doomed.
    """
    violations: dict = {}
    standing = dict(predicates)
    examined = [0]

    def check(schedule_result) -> None:
        examined[0] += 1
        final = schedule_result.final
        for name in list(standing):
            try:
                ok = standing[name](final)
            except Exception:
                ok = False
            if not ok:
                violations[name] = tuple(
                    getattr(outcome, "name", repr(outcome))
                    for outcome in schedule_result.committed
                )
                del standing[name]

    explore(
        initial,
        specs,
        max_schedules=max_schedules,
        max_steps=max_steps,
        dpor=dpor,
        on_schedule=check,
        keep_results=False,
    )
    violations["__schedules__"] = examined[0]
    return violations
