"""Systematic schedule exploration: DFS with sleep-set + state pruning.

:class:`~repro.sched.policy.ExhaustivePolicy` drives a single run down one
branch of the scheduling tree; this module owns the backtracking.  Each run
returns the :class:`~repro.sched.policy.Frame` stack of the decisions it
took; the explorer backtracks to the deepest frame with an untried,
not-asleep sibling and relaunches a fresh simulator with the corresponding
decision prefix.  Because replay is deterministic, re-running the prefix
reconstructs the node exactly (the simulator is cheap; cloning engine
state mid-run would not be).

Two prunings, both sound for state/outcome coverage:

* **sleep sets** (DPOR-lite, after Godefroid): when branch ``i`` at a node
  has been fully explored, sibling branches carry ``i``'s first-step
  signature asleep — any schedule that would merely commute ``i`` past
  independent steps is never re-explored.  Signatures come from the engine
  history itself (:func:`repro.sched.policy.op_signature`), so "independent"
  means *no shared lock granule with a write*; commits, aborts and blocked
  attempts are conservatively dependent on everything.
* **state fingerprints**: a run that reaches a previously-seen global state
  (store + locks + waits-for edges + per-instance progress) stops — every
  continuation from that state has been or will be explored from its first
  visit.  This is the persistent-set-flavoured dedup of revisited prefixes.

``workers > 1`` fans the root branches across
:func:`repro.core.parallel.parallel_map` threads; the visited set is
shared, and sibling sleep sets are seeded from per-branch probe runs so
the parallel tree prunes exactly like the sequential one.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.parallel import parallel_map
from repro.core.state import DbState
from repro.sched.policy import DEPENDENT, ExhaustivePolicy
from repro.sched.simulator import InstanceSpec, Simulator

# ---------------------------------------------------------------------------
# state fingerprints
# ---------------------------------------------------------------------------


def _state_token(state: DbState) -> tuple:
    return (
        tuple(sorted((k, repr(v)) for k, v in state.items.items())),
        tuple(
            (array, tuple(sorted((index, repr(fields)) for index, fields in cells.items())))
            for array, cells in sorted(state.arrays.items())
        ),
        tuple(
            (table, tuple(sorted(repr(sorted(row.items())) for row in rows)))
            for table, rows in sorted(state.tables.items())
        ),
    )


def _txn_token(txn) -> tuple | None:
    if txn is None:
        return None
    return (
        txn.txn_id,
        txn.level,
        txn.status,
        tuple(sorted(txn.long_locks)),
        tuple(sorted(txn.write_set)),
        tuple(sorted((k, v) for k, v in txn.read_versions.items())),
        tuple(repr(entry) for entry in txn.redo),
        tuple(repr(entry) for entry in txn.undo),
        None if txn.snapshot_state is None else _state_token(txn.snapshot_state),
    )


def state_fingerprint(simulator: Simulator) -> str:
    """A digest of everything that determines the simulator's future.

    Two runs whose fingerprints collide behave identically from here on:
    the digest covers the versioned store (current + committed + version
    counters), the lock table (granule holders and predicate locks),
    waits-for edges, and each instance's full progress (interpreter
    position, workspace, transaction logs).  Conservative by construction —
    anything hard to canonicalise (e.g. row ids) is included as-is, which
    can only make distinct states *look* distinct, never merge them.
    """
    engine = simulator.engine
    store = engine.store
    locks = engine.locks
    token = (
        _state_token(store.current),
        _state_token(store.committed),
        tuple(sorted((k, v) for k, v in store.versions.items())),
        tuple(
            (key, tuple(sorted(holders.items())))
            for key, holders in sorted(locks._held.items())
            if holders
        ),
        tuple(
            sorted(
                (lock.txn_id, lock.table, lock.mode, lock.duration) for lock in locks._predicates
            )
        ),
        tuple(sorted(simulator.wfg._graph.edges())),
        tuple(
            (
                rt.index,
                rt.status,
                rt.started,
                rt.at_commit,
                rt.blocked,
                rt.ops_done,
                rt.restarts,
                tuple(sorted((repr(k), repr(v)) for k, v in rt.env.items())),
                tuple(sorted((repr(k), repr(v)) for k, v in rt.obs.items())),
                _txn_token(rt.txn),
            )
            for rt in simulator._runtimes
        ),
    )
    return hashlib.sha256(repr(token).encode()).hexdigest()


class _Visited:
    """Thread-safe check-and-add set of state fingerprints."""

    def __init__(self) -> None:
        self._seen: set = set()
        self._lock = threading.Lock()

    def seen(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._seen:
                return True
            self._seen.add(fingerprint)
            return False

    def __len__(self) -> int:
        return len(self._seen)


class _Budget:
    """Shared run budget; ``take()`` is False once exhausted."""

    def __init__(self, limit: int | None) -> None:
        self.limit = limit
        self.used = 0
        self.exhausted = False
        self._lock = threading.Lock()

    def take(self) -> bool:
        with self._lock:
            if self.limit is not None and self.used >= self.limit:
                self.exhausted = True
                return False
            self.used += 1
            return True


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


@dataclass
class ExplorationResult:
    """Outcome of one :func:`explore` call."""

    runs: int = 0  # simulator runs launched (incl. pruned branches)
    schedules: int = 0  # runs that reached a quiescent end state
    pruned_sleep: int = 0  # branches cut because every child was asleep
    pruned_state: int = 0  # branches cut on a revisited state fingerprint
    truncated_depth: int = 0  # branches cut by the max_depth bound
    truncated: bool = False  # run budget exhausted before the tree was done
    results: list = field(default_factory=list)  # ScheduleResults (keep_results)

    def to_dict(self) -> dict:
        return {
            "runs": self.runs,
            "schedules": self.schedules,
            "pruned_sleep": self.pruned_sleep,
            "pruned_state": self.pruned_state,
            "truncated_depth": self.truncated_depth,
            "truncated": self.truncated,
        }


# ---------------------------------------------------------------------------
# the explorer
# ---------------------------------------------------------------------------


class Explorer:
    """Depth-first exploration over one instance set."""

    def __init__(
        self,
        initial: DbState,
        specs: Sequence[InstanceSpec],
        *,
        retry: bool = True,
        max_steps: int = 100_000,
        max_schedules: int | None = None,
        max_depth: int | None = None,
        pruning: bool = True,
        workers: int = 1,
        observer_factory: Callable | None = None,
        on_schedule: Callable | None = None,
        keep_results: bool = True,
    ) -> None:
        self.initial = initial
        self.specs = list(specs)
        self.retry = retry
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.pruning = pruning
        self.workers = max(1, workers)
        self.observer_factory = observer_factory
        self.on_schedule = on_schedule
        self.keep_results = keep_results
        self.visited = _Visited() if pruning else None
        self.budget = _Budget(max_schedules)
        self.result = ExplorationResult()
        self._lock = threading.Lock()

    # -- single runs --------------------------------------------------------
    def _policy(self, prefix, entry_sleep, max_depth=None) -> ExhaustivePolicy:
        return ExhaustivePolicy(
            prefix,
            entry_sleep,
            pruning=self.pruning,
            visited=self.visited,
            fingerprint=state_fingerprint if self.pruning else None,
            max_depth=self.max_depth if max_depth is None else max_depth,
        )

    def _run(self, policy: ExhaustivePolicy):
        observers = None
        if self.observer_factory is not None:
            built = self.observer_factory()
            observers = built if isinstance(built, (list, tuple)) else [built]
        simulator = Simulator(
            self.initial.copy(),
            self.specs,
            retry=self.retry,
            max_steps=self.max_steps,
            policy=policy,
            observers=observers,
        )
        schedule_result = simulator.run()
        # let consumers (e.g. the certification pipeline) read per-run
        # observer state — monitors are born and die with their run
        schedule_result.observers = observers or []
        with self._lock:
            self.result.runs += 1
            if policy.stop_reason is None:
                self.result.schedules += 1
                if self.keep_results:
                    self.result.results.append(schedule_result)
            elif policy.stop_reason == "sleep":
                self.result.pruned_sleep += 1
            elif policy.stop_reason == "state":
                self.result.pruned_state += 1
            elif policy.stop_reason == "depth":
                self.result.truncated_depth += 1
        if policy.stop_reason is None and self.on_schedule is not None:
            self.on_schedule(schedule_result)
        return schedule_result

    # -- DFS ----------------------------------------------------------------
    def _dfs(self, root_prefix: list, root_entry_sleep: dict) -> None:
        """Exhaust the subtree under ``root_prefix``.

        ``path`` holds the frames of decisions *below* the root prefix; the
        deepest frame with an untried, awake sibling is re-opened by
        re-running the simulator with the extended prefix (deterministic
        replay reconstructs the node).
        """
        if not self.budget.take():
            return
        policy = self._policy(root_prefix, root_entry_sleep)
        self._run(policy)
        path = list(policy.frames)
        while path:
            frame = path[-1]
            candidate = frame.next_candidate()
            if candidate is None:
                path.pop()
                continue
            if not self.budget.take():
                return
            frame.choice = candidate
            prefix = root_prefix + [f.choice for f in path]
            if self.pruning:
                # descendants of the new branch start with the ancestors'
                # sleep entries plus the fully-explored siblings
                entry_sleep = dict(frame.sleep)
                entry_sleep.update(dict(frame.tried))
            else:
                entry_sleep = {}
            policy = self._policy(prefix, entry_sleep)
            self._run(policy)
            frame.tried.append((candidate, policy.candidate_signature or DEPENDENT))
            path.extend(policy.frames)

    def _probe_signature(self, index: int):
        """First-step signature of root branch ``index`` (one-step run).

        Probe runs are bookkeeping, not exploration — they bypass the
        stats and the visited set (max_depth stops them before the first
        fingerprint check).
        """
        policy = self._policy([index], {}, max_depth=1)
        Simulator(
            self.initial.copy(),
            self.specs,
            retry=self.retry,
            max_steps=self.max_steps,
            policy=policy,
        ).run()
        return policy.candidate_signature or DEPENDENT

    def run(self) -> ExplorationResult:
        if self.workers <= 1:
            self._dfs([], {})
        else:
            # every instance is ready at the root, so the root's enabled
            # set is simply all of them, in index order
            roots = list(range(len(self.specs)))
            # earlier siblings sleep in later subtrees, exactly as the
            # sequential DFS would leave them — probe their signatures first
            if self.pruning:
                signatures = {index: self._probe_signature(index) for index in roots}
            tasks = []
            for position, index in enumerate(roots):
                entry_sleep = (
                    {earlier: signatures[earlier] for earlier in roots[:position]}
                    if self.pruning
                    else {}
                )
                tasks.append((index, entry_sleep))
            parallel_map(
                lambda task: self._dfs([task[0]], task[1]),
                tasks,
                workers=self.workers,
            )
        self.result.truncated = self.budget.exhausted
        return self.result


def explore(
    initial: DbState,
    specs: Sequence[InstanceSpec],
    *,
    retry: bool = True,
    max_steps: int = 100_000,
    max_schedules: int | None = None,
    max_depth: int | None = None,
    pruning: bool = True,
    workers: int = 1,
    observer_factory: Callable | None = None,
    on_schedule: Callable | None = None,
    keep_results: bool = True,
) -> ExplorationResult:
    """Explore the scheduling tree of ``specs`` over ``initial``.

    Returns an :class:`ExplorationResult`; completed schedules are kept in
    ``result.results`` (``keep_results``) and streamed to ``on_schedule``.
    ``max_schedules`` bounds the total number of simulator runs (pruned
    branches included); ``max_depth`` bounds decisions per run; ``pruning``
    toggles both sleep sets and the visited-state dedup (for measuring
    their effect).  ``observer_factory`` builds fresh per-run observers
    (e.g. an anomaly monitor); ``workers`` fans root branches across
    threads.
    """
    return Explorer(
        initial,
        specs,
        retry=retry,
        max_steps=max_steps,
        max_schedules=max_schedules,
        max_depth=max_depth,
        pruning=pruning,
        workers=workers,
        observer_factory=observer_factory,
        on_schedule=on_schedule,
        keep_results=keep_results,
    ).run()
