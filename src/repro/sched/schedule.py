"""Schedule results: everything the offline checkers need."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.state import DbState


@dataclass
class InstanceOutcome:
    """Final state of one transaction instance in a simulated schedule."""

    index: int
    name: str
    txn_type: object
    args: dict
    level: str
    status: str  # committed | aborted | incomplete
    txn_ids: list = field(default_factory=list)  # engine ids across restarts
    env: dict = field(default_factory=dict)
    commit_tick: int | None = None
    committed_state: DbState | None = None  # committed state right after commit
    restarts: int = 0
    abort_reasons: list = field(default_factory=list)

    @property
    def committed(self) -> bool:
        return self.status == "committed"


@dataclass
class ScheduleResult:
    """Outcome of one simulated interleaving."""

    initial: DbState
    final: DbState
    outcomes: list = field(default_factory=list)
    history: list = field(default_factory=list)  # engine HistoryOps
    stats: dict = field(default_factory=dict)
    script: list | None = None  # the realised scheduling decisions

    @property
    def committed(self) -> list:
        """Committed instances in commit order."""
        done = [o for o in self.outcomes if o.committed]
        return sorted(done, key=lambda o: o.commit_tick)

    @property
    def aborted(self) -> list:
        return [o for o in self.outcomes if o.status == "aborted"]

    def outcome_by_name(self, name: str) -> "InstanceOutcome":
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    def summary(self) -> str:
        committed = ", ".join(f"{o.name}@{o.level}" for o in self.committed)
        lines = [
            f"schedule: {len(self.committed)} committed [{committed}],"
            f" {len(self.aborted)} aborted",
            f"stats: {self.stats}",
        ]
        return "\n".join(lines)
