"""Schedules: interleaved execution, serializability and semantic checking.

* :mod:`repro.sched.interpreter` — run :class:`repro.core.program`
  transaction programs operation-by-operation through the engine;
* :mod:`repro.sched.simulator` — interleave multiple instances under a
  scripted or seeded-random scheduler, with blocking, deadlock-victim
  aborts, first-committer-wins aborts, rollback injection and retry;
* :mod:`repro.sched.schedule` — results: commit order, per-instance
  environments, per-commit committed-state snapshots, engine history;
* :mod:`repro.sched.serializability` — conflict graph over the committed
  transactions (networkx) and the conflict-serializability verdict;
* :mod:`repro.sched.semantic` — the paper's *semantic correctness* check:
  consistency of the final state, per-transaction results ``Q_i`` at commit
  time, cumulative results, and serial-replay comparison;
* :mod:`repro.sched.anomalies` — detectors for the [2] phenomena (dirty
  read, lost update, fuzzy read, phantom, read skew, write skew);
* :mod:`repro.sched.histories` — a Berenson-style history DSL
  (``"w1[x=1] r2[x] c1 c2"``) replayed through the engine.
"""
