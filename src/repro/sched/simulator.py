"""Interleaved execution of transaction instances under the engine.

The simulator owns the execution core; the engine owns level semantics;
a :class:`repro.sched.policy.SchedulePolicy` owns the scheduling
decisions.  Each scheduler step attempts exactly one engine operation of
one instance:

* a successful operation advances that instance's interpreter;
* an operation that raises :class:`~repro.engine.locks.WouldBlock` leaves
  the instance blocked (the same thunk is retried when next scheduled) and
  records waits-for edges; a cycle aborts the youngest transaction in it —
  unless ``drop_blocked`` is set, in which case the blocked operation is
  *dropped* (the history-DSL convention: the lock protocol prevented the
  interleaving, the script moves on);
* first-committer-wins aborts (READ COMMITTED FCW writes, SNAPSHOT
  commits) and deadlock-victim aborts optionally restart the instance from
  scratch against the now-committed state — the standard retry loop;
* an explicit :class:`~repro.core.program.Rollback` statement (and the
  legacy ``abort_after`` injection) aborts the instance without retry.

Policies are pluggable (see :mod:`repro.sched.policy`); the ``seed`` and
``script`` constructor arguments remain as shorthand for
:class:`~repro.sched.policy.RandomPolicy` and
:class:`~repro.sched.policy.ReplayPolicy` respectively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.program import TransactionType
from repro.core.state import DbState
from repro.engine.deadlock import WaitsForGraph
from repro.engine.locks import WouldBlock
from repro.engine.manager import Engine
from repro.engine.transaction import ABORTED as _TXN_ABORTED
from repro.errors import FirstCommitterWinsAbort, ScheduleError, TransactionAborted
from repro.sched.interpreter import bind_ghosts, steps
from repro.sched.monitor import GuardVeto
from repro.sched.policy import RandomPolicy, ReplayPolicy, SchedulePolicy
from repro.sched.schedule import InstanceOutcome, ScheduleResult


@dataclass
class InstanceSpec:
    """One transaction instance to run in a schedule."""

    txn_type: TransactionType
    args: dict = field(default_factory=dict)
    level: str = "SERIALIZABLE"
    name: str | None = None
    abort_after: int | None = None  # inject rollback after N db operations

    def label(self, index: int) -> str:
        return self.name or f"{self.txn_type.name}#{index}"


@dataclass
class TraceEvent:
    """One recorded scheduling event (``collect_trace=True``).

    ``slot`` counts policy decisions (1-based): every consumed scheduling
    decision — including skips of finished instances — gets one slot, so a
    replayed script aligns slot-for-entry with its source.
    """

    slot: int
    kind: str  # op | commit | abort | blocked | skip
    index: int
    value: object = None
    detail: str = ""
    blockers: tuple = ()


class _Runtime:
    """Mutable per-instance simulation state."""

    def __init__(self, index: int, spec: InstanceSpec) -> None:
        self.index = index
        self.spec = spec
        self.txn = None
        self.gen = None
        self.env: dict = {}
        self.pending = None
        self.last_result = None
        self.obs: dict = {}
        self.first_op_state = None
        self.started = False
        self.at_commit = False
        self.blocked = False
        self.last_block = None  # (key, mode) of the most recent WouldBlock
        self.status = "ready"  # ready | running | committed | aborted
        self.ops_done = 0
        self.restarts = 0
        self.txn_ids: list = []
        self.abort_reasons: list = []


class Simulator:
    """Drive a set of instances to completion under one scheduling policy."""

    def __init__(
        self,
        initial: DbState,
        specs: Sequence[InstanceSpec],
        seed: int = 0,
        script: Sequence[int] | None = None,
        retry: bool = False,
        max_restarts: int = 5,
        max_steps: int = 100_000,
        phantom_protection: bool = True,
        observers: Sequence | None = None,
        policy: SchedulePolicy | None = None,
        collect_trace: bool = False,
        drop_blocked: bool = False,
        engine_opts: dict | None = None,
    ) -> None:
        #: extra Engine keyword options (e.g. ``{"vacuum": "off"}``) —
        #: threaded from explore() so scenarios can pin a GC policy
        self.engine_opts = dict(engine_opts or {})
        self.engine = Engine(
            initial, phantom_protection=phantom_protection, **self.engine_opts
        )
        #: callables invoked as ``observer(self, runtime)`` after every
        #: successful engine operation — the hook the assertion monitor
        #: (:mod:`repro.sched.monitor`) attaches to
        self.observers = list(observers or [])
        self.initial = initial.copy()
        self.specs = list(specs)
        self.script = list(script) if script is not None else None
        if policy is None:
            if script is not None:
                policy = ReplayPolicy(script, seed=seed, on_exhausted="random")
            else:
                policy = RandomPolicy(seed)
        self.policy = policy
        self.retry = retry
        self.max_restarts = max_restarts
        self.max_steps = max_steps
        self.drop_blocked = drop_blocked
        self.wfg = WaitsForGraph()
        self.stats = {
            "steps": 0,
            "waits": 0,
            "deadlocks": 0,
            "fcw_aborts": 0,
            "injected_aborts": 0,
            "restarts": 0,
            "commits": 0,
        }
        self._runtimes = [_Runtime(i, spec) for i, spec in enumerate(self.specs)]
        self._committed_states: dict = {}
        self._realised: list = []
        self.trace: list | None = [] if collect_trace else None
        self._slot = 0

    # -- public ------------------------------------------------------------
    def run(self) -> ScheduleResult:
        while self.stats["steps"] < self.max_steps:
            active = [rt for rt in self._runtimes if rt.status in ("ready", "running")]
            if not active:
                break
            choice = self.policy.choose(active, self)
            if choice is None:
                break
            self._slot += 1
            if choice.status not in ("ready", "running"):
                self._note("skip", choice, detail="transaction aborted earlier")
                continue
            mark = len(self.engine.history)
            self._step(choice)
            observe = getattr(self.policy, "observe_step", None)
            if observe is not None:
                observe(self, choice, self.engine.history[mark:])
        return self._result()

    # -- internals ------------------------------------------------------------
    def _note(self, kind: str, rt: _Runtime, **payload) -> None:
        if self.trace is not None:
            self.trace.append(TraceEvent(slot=self._slot, kind=kind, index=rt.index, **payload))

    def _start(self, rt: _Runtime) -> None:
        spec = rt.spec
        rt.txn = self.engine.begin(spec.level)
        rt.txn_ids.append(rt.txn.txn_id)
        rt.env = bind_ghosts(spec.txn_type, spec.args, self.engine.committed_state())
        rt.obs = {}
        rt.first_op_state = None
        rt.gen = steps(self.engine, rt.txn, spec.txn_type, spec.args, rt.env, rt.obs)
        rt.started = True
        rt.status = "running"
        rt.pending = None
        rt.at_commit = False
        rt.last_result = None
        rt.ops_done = 0

    def _advance(self, rt: _Runtime) -> None:
        """Fetch the next operation thunk from the interpreter."""
        try:
            if rt.last_result is _FIRST:
                rt.pending = next(rt.gen)
            else:
                rt.pending = rt.gen.send(rt.last_result)
        except StopIteration:
            rt.pending = None
            rt.at_commit = True

    def _step(self, rt: _Runtime) -> None:
        self.stats["steps"] += 1
        self._realised.append(rt.index)
        if not rt.started:
            self._start(rt)
            rt.last_result = _FIRST
            self._advance(rt)
        try:
            if rt.at_commit:
                self._rebind_ghosts(rt)
                for observer in self.observers:
                    precommit = getattr(observer, "precommit", None)
                    if precommit is not None:
                        precommit(self, rt)
                self.engine.commit(rt.txn)
                rt.status = "committed"
                rt.blocked = False
                self.wfg.remove(rt.txn.txn_id)
                self.stats["commits"] += 1
                self._committed_states[rt.index] = self.engine.committed_state()
                self._note("commit", rt)
                # SNAPSHOT transactions publish their buffered writes at
                # commit: observers must see that state transition too
                for observer in self.observers:
                    observer(self, rt)
                return
            if rt.pending is None:
                self._advance(rt)
                if rt.at_commit:
                    # commit on the next scheduled step of this instance
                    return
            if rt.ops_done == 0:
                # the transaction effectively starts at its first database
                # access; remember the committed state of that moment as
                # the fallback for ghost binding
                rt.first_op_state = self.engine.committed_state()
            result = rt.pending()
            rt.ops_done += 1
            rt.blocked = False
            self.wfg.clear_waits(rt.txn.txn_id)
            rt.last_result = result
            rt.pending = None
            self._note("op", rt, value=result)
            if rt.txn.status == _TXN_ABORTED:
                # an explicit Rollback statement tore the transaction down
                # through the engine; the rollback is part of the program,
                # so the instance finishes aborted without retry
                self._finish_aborted(rt, rt.txn.abort_reason or "rollback", allow_retry=False)
                return
            # advance the interpreter now so the operation's result lands
            # in the workspace before observers look at it
            injected = rt.spec.abort_after is not None and rt.ops_done >= rt.spec.abort_after
            if not injected:
                self._advance(rt)
            for observer in self.observers:
                observer(self, rt)
            if injected:
                self.engine.abort(rt.txn, reason="injected rollback")
                self.stats["injected_aborts"] += 1
                self._finish_aborted(rt, "injected rollback", allow_retry=False)
                return
        except WouldBlock as block:
            self.stats["waits"] += 1
            rt.last_block = (block.key, block.mode)
            self._note("blocked", rt, blockers=tuple(sorted(block.blockers)))
            if self.drop_blocked:
                # history-DSL semantics: the blocked operation is dropped
                # (not retried) and no waits-for edges accumulate
                if not rt.at_commit:
                    rt.last_result = None
                    rt.pending = None
                    self._advance(rt)
                return
            rt.blocked = True
            self.wfg.add_waits(rt.txn.txn_id, block.blockers)
            self._resolve_deadlock()
        except GuardVeto as veto:
            # the assertional concurrency control vetoed this step: abort
            # the acting transaction (undoing the offending operation with
            # the rest of its work) and retry it later
            self.stats.setdefault("guard_vetoes", 0)
            self.stats["guard_vetoes"] += 1
            self.engine.abort(rt.txn, reason=f"guard veto: {veto.event!r}")
            self._finish_aborted(rt, str(veto), allow_retry=True)
        except FirstCommitterWinsAbort as abort:
            self.stats["fcw_aborts"] += 1
            self._finish_aborted(rt, str(abort), allow_retry=True)
        except TransactionAborted as abort:
            self._finish_aborted(rt, str(abort), allow_retry=True)

    def _rebind_ghosts(self, rt: _Runtime) -> None:
        """Bind the logical-variable snapshot from observed values.

        The snapshot terms are evaluated against the committed state at the
        transaction's first operation, overlaid with the values the
        transaction actually read — so ``X_i`` equals the value of ``x_i``
        the transaction's proof quantifies over, even when a blocker
        committed between its begin and its reads.
        """
        if rt.first_op_state is None:
            return
        overlay = rt.first_op_state.copy()
        for key, value in rt.obs.items():
            if key[0] == "item":
                overlay.write_item(key[1], value)
            else:
                _kind, array, index, attr = key
                overlay.write_field(array, index, attr, value)
        rt.env.update(bind_ghosts(rt.spec.txn_type, rt.spec.args, overlay))

    def _finish_aborted(self, rt: _Runtime, reason: str, allow_retry: bool) -> None:
        rt.abort_reasons.append(reason)
        self._note("abort", rt, detail=reason)
        self.wfg.remove(rt.txn.txn_id)
        rt.blocked = False
        if rt.gen is not None:
            rt.gen.close()
        if allow_retry and self.retry and rt.restarts < self.max_restarts:
            rt.restarts += 1
            self.stats["restarts"] += 1
            rt.started = False
            rt.status = "ready"
        else:
            rt.status = "aborted"

    def _resolve_deadlock(self) -> None:
        cycle = self.wfg.find_cycle()
        if cycle is None:
            return
        self.stats["deadlocks"] += 1
        victim_id = self.wfg.pick_victim(cycle)
        for rt in self._runtimes:
            if rt.txn is not None and rt.txn.txn_id == victim_id and rt.status == "running":
                self.engine.abort(rt.txn, reason="deadlock victim")
                self._finish_aborted(rt, "deadlock victim", allow_retry=True)
                return

    def _result(self) -> ScheduleResult:
        outcomes = []
        for rt in self._runtimes:
            status = rt.status if rt.status in ("committed", "aborted") else "incomplete"
            outcomes.append(
                InstanceOutcome(
                    index=rt.index,
                    name=rt.spec.label(rt.index),
                    txn_type=rt.spec.txn_type,
                    args=dict(rt.spec.args),
                    level=rt.spec.level,
                    status=status,
                    txn_ids=list(rt.txn_ids),
                    env=dict(rt.env),
                    commit_tick=rt.txn.commit_tick if rt.txn is not None else None,
                    committed_state=self._committed_states.get(rt.index),
                    restarts=rt.restarts,
                    abort_reasons=list(rt.abort_reasons),
                )
            )
        return ScheduleResult(
            initial=self.initial,
            final=self.engine.committed_state(),
            outcomes=outcomes,
            history=list(self.engine.history),
            stats=dict(self.stats),
            script=list(self._realised),
        )


class _FirstSentinel:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<first>"


_FIRST = _FirstSentinel()


def round_seeds(seed: int, rounds: int) -> list:
    """Independent per-round seeds drawn from a ``random.Random(seed)`` stream.

    Deriving round seeds as ``seed + round_index`` makes sweeps with
    adjacent base seeds share most of their interleavings; a seeded stream
    keeps rounds reproducible without that overlap.
    """
    stream = random.Random(seed)
    return [stream.randrange(2**32) for _ in range(rounds)]


def run_random_schedules(
    initial: DbState,
    specs: Sequence[InstanceSpec],
    rounds: int,
    seed: int = 0,
    retry: bool = False,
) -> list:
    """Run the same instance set under many random interleavings."""
    results = []
    for round_seed in round_seeds(seed, rounds):
        simulator = Simulator(initial.copy(), specs, seed=round_seed, retry=retry)
        results.append(simulator.run())
    return results
