"""Conflict-serializability over a simulated schedule.

Builds the classical precedence (conflict) graph over the *committed*
transactions of an engine history: an edge ``Ti -> Tj`` whenever an
operation of ``Ti`` conflicts with a later operation of ``Tj`` on the same
location (write-write, write-read or read-write).  The schedule is
conflict-serializable iff the graph is acyclic (networkx cycle search).

Relational reads record the table and the rids they returned; a read of a
table conflicts with inserts/deletes on that table (coarse, phantom-aware)
and with updates of the specific rows it returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.engine.manager import HistoryOp


@dataclass
class ConflictReport:
    """Conflict-graph verdict for one schedule."""

    serializable: bool
    cycle: list | None
    edges: list = field(default_factory=list)
    serial_order: list | None = None  # a topological witness when acyclic


def _access_sets(op: HistoryOp):
    """(reads, writes) location sets of one history operation."""
    reads: set = set()
    writes: set = set()
    if op.kind == "r":
        if op.key is not None and op.key[0] == "table":
            table = op.key[1]
            reads.add(("table", table))
            for rid in op.info.get("rids", ()):
                reads.add(("row", table, rid))
        elif op.key is not None:
            reads.add(op.key)
    elif op.kind == "w":
        writes.add(op.key)
    elif op.kind in ("ins", "del", "upd"):
        if op.key is not None and op.key[0] == "row":
            writes.add(op.key)
            writes.add(("table", op.key[1]))
        elif op.key is not None and op.key[0] == "table":
            writes.add(("table", op.key[1]))
    return reads, writes


def _locations_conflict(a: tuple, b: tuple) -> bool:
    if a == b:
        return True
    # a whole-table access conflicts with any row of that table
    if a[0] == "table" and b[0] == "row" and a[1] == b[1]:
        return True
    if b[0] == "table" and a[0] == "row" and a[1] == b[1]:
        return True
    return False


def conflict_graph(history, committed_ids) -> nx.DiGraph:
    """The precedence graph over the committed transactions."""
    graph = nx.DiGraph()
    graph.add_nodes_from(committed_ids)
    ops = [op for op in history if op.txn_id in committed_ids and op.kind in ("r", "w", "ins", "del", "upd")]
    for i, earlier in enumerate(ops):
        e_reads, e_writes = _access_sets(earlier)
        for later in ops[i + 1 :]:
            if later.txn_id == earlier.txn_id:
                continue
            l_reads, l_writes = _access_sets(later)
            conflicting = any(
                _locations_conflict(a, b)
                for a in e_writes
                for b in (l_reads | l_writes)
            ) or any(
                _locations_conflict(a, b) for a in e_reads for b in l_writes
            )
            if conflicting:
                graph.add_edge(earlier.txn_id, later.txn_id)
    return graph


def check_conflict_serializability(result) -> ConflictReport:
    """Analyse a :class:`repro.sched.schedule.ScheduleResult`."""
    committed_ids = {
        txn_id for outcome in result.committed for txn_id in outcome.txn_ids[-1:]
    }
    graph = conflict_graph(result.history, committed_ids)
    try:
        cycle_edges = nx.find_cycle(graph)
        cycle = [edge[0] for edge in cycle_edges]
        return ConflictReport(False, cycle, edges=list(graph.edges))
    except nx.NetworkXNoCycle:
        order = list(nx.topological_sort(graph))
        return ConflictReport(True, None, edges=list(graph.edges), serial_order=order)
