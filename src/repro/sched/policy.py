"""Scheduling policies: the decision-point interface of the simulator.

The simulator owns the execution core (one engine operation per step);
*which* instance takes the next step is delegated to a
:class:`SchedulePolicy`.  A policy implements::

    choose(active, simulator) -> _Runtime | None

``active`` is the list of runtimes that are still ready/running, in
instance order; ``simulator`` exposes the full runtime state (engine,
waits-for graph, stats) for policies that want it.  Returning ``None``
stops the run (the schedule stays incomplete).  A policy may also define
``observe_step(simulator, runtime, ops)``, called after every executed
step with the slice of engine history the step produced — the hook the
exhaustive policy uses to learn conflict information.

Three policies:

* :class:`RandomPolicy` — the seeded uniformly-random picker used by the
  statistical validation sweeps (prefers unblocked instances);
* :class:`ReplayPolicy` — an explicit script of instance indices, one per
  step, for reproducing exact anomaly interleavings (this subsumes the
  history-DSL replay in :mod:`repro.sched.histories`);
* :class:`ExhaustivePolicy` — one depth-first branch of a systematic
  exploration, following a forced decision prefix and then extending it
  deterministically while maintaining a *sleep set* (DPOR-lite, after
  Godefroid): scheduling decisions whose first operation commutes with
  everything executed since a sibling branch covered them are never
  re-explored.  :mod:`repro.sched.explore` drives the backtracking.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import Sequence

from repro.errors import ScheduleError


class SchedulePolicy:
    """Decides which instance the simulator steps next."""

    def choose(self, active, simulator):
        """Return the runtime to step next, or ``None`` to stop the run."""
        raise NotImplementedError


class RandomPolicy(SchedulePolicy):
    """Seeded uniformly-random scheduling, preferring unblocked instances."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def choose(self, active, simulator):
        unblocked = [rt for rt in active if not rt.blocked]
        pool = unblocked or active
        return pool[self.rng.randrange(len(pool))]


class ReplayPolicy(SchedulePolicy):
    """Replay an explicit script of instance indices.

    Script entries naming a finished instance are consumed without a step
    (the simulator records a skip).  When the script runs out,
    ``on_exhausted`` selects the behaviour: ``"random"`` finishes the
    remaining instances with a :class:`RandomPolicy` seeded with ``seed``
    (the historical ``Simulator(script=...)`` behaviour), ``"stop"`` ends
    the run, leaving unfinished instances incomplete (the history-DSL
    behaviour).
    """

    def __init__(
        self,
        script: Sequence[int],
        seed: int = 0,
        on_exhausted: str = "random",
    ) -> None:
        if on_exhausted not in ("random", "stop"):
            raise ValueError(f"on_exhausted must be 'random' or 'stop', not {on_exhausted!r}")
        self.script = list(script)
        self.position = 0
        self.on_exhausted = on_exhausted
        self._fallback = RandomPolicy(seed)

    def choose(self, active, simulator):
        if self.position >= len(self.script):
            if self.on_exhausted == "stop":
                return None
            return self._fallback.choose(active, simulator)
        index = self.script[self.position]
        self.position += 1
        runtimes = simulator._runtimes
        if not (0 <= index < len(runtimes)):
            raise ScheduleError(f"script index {index} out of range")
        return runtimes[index]


# ---------------------------------------------------------------------------
# conflict signatures (the engine-derived independence relation)
# ---------------------------------------------------------------------------

#: Sentinel signature for steps that must be considered dependent on every
#: other step: commits and aborts (they release locks and publish state)
#: and blocked attempts (they probe lock state without recording history).
DEPENDENT = "<dependent>"


def _resource(key: tuple):
    """Collapse engine lock keys to conflict granules (tables coarsened)."""
    if key[0] in ("table", "row"):
        return ("table", key[1])
    return key


def op_signature(ops):
    """Summarise one scheduler step's engine operations for independence.

    ``ops`` is the slice of engine history the step produced.  The result
    is either :data:`DEPENDENT` or a frozenset of ``(resource, is_write)``
    pairs.  An empty slice means the step blocked (or was dropped) — the
    attempt still interacted with the lock table, so it is conservatively
    dependent on everything.
    """
    if not ops:
        return DEPENDENT
    signature = set()
    for op in ops:
        if op.kind == "begin":
            continue
        if op.kind in ("commit", "abort") or op.key is None:
            return DEPENDENT
        signature.add((_resource(op.key), op.kind != "r"))
    if not signature:
        # a bare begin: the step also executed nothing else observable,
        # which cannot happen for a real op step — stay conservative
        return DEPENDENT
    return frozenset(signature)


def independent(sig_a, sig_b) -> bool:
    """Do two step signatures commute (no shared granule with a write)?"""
    if sig_a is None or sig_b is None or DEPENDENT in (sig_a, sig_b):
        return False
    for resource, is_write in sig_a:
        for other, other_write in sig_b:
            if resource == other and (is_write or other_write):
                return False
    return True


def _filter_sleep(sleep: dict, signature) -> dict:
    """Keep only sleep entries independent of the step just executed."""
    return {index: sig for index, sig in sleep.items() if independent(sig, signature)}


# ---------------------------------------------------------------------------
# the exhaustive policy (one DFS branch)
# ---------------------------------------------------------------------------


@dataclass
class Frame:
    """One decision point on the current DFS path."""

    depth: int
    enabled: tuple  # instance indices eligible at this node, in order
    sleep: dict  # index -> signature asleep at this node
    choice: int  # child currently on the path
    tried: list = dataclass_field(default_factory=list)  # [(index, signature)]

    def next_candidate(self):
        """The next unexplored, not-asleep child, or ``None``."""
        done = {index for index, _sig in self.tried}
        for index in self.enabled:
            if index not in done and index not in self.sleep:
                return index
        return None


def enabled_indices(active) -> list:
    """Candidate instances at a decision point, unblocked preferred.

    Mirrors :class:`RandomPolicy`'s pool so the explored tree covers the
    same schedules the random sweeps sample from, in deterministic order.
    """
    unblocked = sorted(rt.index for rt in active if not rt.blocked)
    return unblocked or sorted(rt.index for rt in active)


class ExhaustivePolicy(SchedulePolicy):
    """Drive one run of a DFS over scheduling decisions.

    The policy follows ``prefix`` (a list of instance indices, one per
    decision), then extends the path deterministically: at each new node
    it steps the lowest-indexed enabled instance that is not asleep.  It
    records a :class:`Frame` per new node so the explorer can backtrack,
    and threads the sleep set forward, waking entries whose signature
    conflicts with each executed step.

    ``entry_sleep`` is the sleep context of the *last* prefix decision
    (the candidate branch being opened): ancestors' sleep entries plus the
    signatures of previously explored siblings.  It is filtered by the
    candidate's own first-step signature once that is observed.

    Pruning hooks (both optional):

    * ``visited`` — an object with ``seen(fingerprint) -> bool``
      (check-and-add); a revisited state ends the run (``stop_reason
      == "state"``);
    * ``max_depth`` — decision budget per run (``stop_reason == "depth"``).
    """

    def __init__(
        self,
        prefix: Sequence[int] = (),
        entry_sleep: dict | None = None,
        *,
        pruning: bool = True,
        visited=None,
        fingerprint=None,
        max_depth: int | None = None,
    ) -> None:
        self.prefix = list(prefix)
        self.entry_sleep = dict(entry_sleep or {})
        self.pruning = pruning
        self.visited = visited if pruning else None
        self.fingerprint = fingerprint
        self.max_depth = max_depth
        self.depth = 0
        # live sleep set; seeded immediately for an empty prefix, otherwise
        # derived from entry_sleep when the candidate's signature arrives
        self.sleep: dict = {} if not self.prefix else dict(self.entry_sleep)
        self.frames: list = []  # new frames (depths >= len(prefix))
        self.candidate_signature = None  # first-step signature of prefix[-1]
        self.stop_reason = None  # None | "sleep" | "state" | "depth"

    def choose(self, active, simulator):
        depth = self.depth
        if depth < len(self.prefix):
            index = self.prefix[depth]
            self.depth += 1
            return simulator._runtimes[index]
        if self.max_depth is not None and depth >= self.max_depth:
            self.stop_reason = "depth"
            return None
        if self.visited is not None and self.fingerprint is not None:
            if self.visited.seen(self.fingerprint(simulator)):
                self.stop_reason = "state"
                return None
        enabled = enabled_indices(active)
        candidates = [index for index in enabled if index not in self.sleep]
        if not candidates:
            # every enabled decision is covered by a sibling branch
            self.stop_reason = "sleep"
            return None
        choice = candidates[0]
        self.frames.append(
            Frame(depth=depth, enabled=tuple(enabled), sleep=dict(self.sleep), choice=choice)
        )
        self.depth += 1
        return simulator._runtimes[choice]

    def observe_step(self, simulator, runtime, ops):
        signature = op_signature(ops)
        depth = self.depth - 1  # the decision just executed
        if depth == len(self.prefix) - 1:
            # the candidate branch's own first step: seed the live sleep set
            self.candidate_signature = signature
            self.sleep = _filter_sleep(self.entry_sleep, signature)
            return
        if depth < len(self.prefix):
            return  # interior prefix step: decisions already taken
        if not self.pruning:
            if self.frames:
                frame = self.frames[-1]
                frame.tried.append((frame.choice, signature))
            return
        frame = self.frames[-1]
        frame.tried.append((frame.choice, signature))
        self.sleep = _filter_sleep(self.sleep, signature)
