"""Scheduling policies: the decision-point interface of the simulator.

The simulator owns the execution core (one engine operation per step);
*which* instance takes the next step is delegated to a
:class:`SchedulePolicy`.  A policy implements::

    choose(active, simulator) -> _Runtime | None

``active`` is the list of runtimes that are still ready/running, in
instance order; ``simulator`` exposes the full runtime state (engine,
waits-for graph, stats) for policies that want it.  Returning ``None``
stops the run (the schedule stays incomplete).  A policy may also define
``observe_step(simulator, runtime, ops)``, called after every executed
step with the slice of engine history the step produced — the hook the
exhaustive policy uses to learn conflict information.

Three policies:

* :class:`RandomPolicy` — the seeded uniformly-random picker used by the
  statistical validation sweeps (prefers unblocked instances);
* :class:`ReplayPolicy` — an explicit script of instance indices, one per
  step, for reproducing exact anomaly interleavings (this subsumes the
  history-DSL replay in :mod:`repro.sched.histories`);
* :class:`ExhaustivePolicy` — one depth-first branch of a systematic
  exploration, following a forced decision prefix and then extending it
  deterministically while maintaining a *sleep set* (DPOR-lite, after
  Godefroid): scheduling decisions whose first operation commutes with
  everything executed since a sibling branch covered them are never
  re-explored.  :mod:`repro.sched.explore` drives the backtracking.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import Sequence

from repro.errors import ScheduleError


class SchedulePolicy:
    """Decides which instance the simulator steps next."""

    def choose(self, active, simulator):
        """Return the runtime to step next, or ``None`` to stop the run."""
        raise NotImplementedError


class RandomPolicy(SchedulePolicy):
    """Seeded uniformly-random scheduling, preferring unblocked instances."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def choose(self, active, simulator):
        unblocked = [rt for rt in active if not rt.blocked]
        pool = unblocked or active
        return pool[self.rng.randrange(len(pool))]


class ReplayPolicy(SchedulePolicy):
    """Replay an explicit script of instance indices.

    Script entries naming a finished instance are consumed without a step
    (the simulator records a skip).  When the script runs out,
    ``on_exhausted`` selects the behaviour: ``"random"`` finishes the
    remaining instances with a :class:`RandomPolicy` seeded with ``seed``
    (the historical ``Simulator(script=...)`` behaviour), ``"stop"`` ends
    the run, leaving unfinished instances incomplete (the history-DSL
    behaviour).
    """

    def __init__(
        self,
        script: Sequence[int],
        seed: int = 0,
        on_exhausted: str = "random",
    ) -> None:
        if on_exhausted not in ("random", "stop"):
            raise ValueError(f"on_exhausted must be 'random' or 'stop', not {on_exhausted!r}")
        self.script = list(script)
        self.position = 0
        self.on_exhausted = on_exhausted
        self._fallback = RandomPolicy(seed)

    def choose(self, active, simulator):
        if self.position >= len(self.script):
            if self.on_exhausted == "stop":
                return None
            return self._fallback.choose(active, simulator)
        index = self.script[self.position]
        self.position += 1
        runtimes = simulator._runtimes
        if not (0 <= index < len(runtimes)):
            raise ScheduleError(f"script index {index} out of range")
        return runtimes[index]


# ---------------------------------------------------------------------------
# conflict signatures (the engine-derived independence relation)
# ---------------------------------------------------------------------------

#: Sentinel signature for steps that must be considered dependent on every
#: other step: commits and aborts (they release locks and publish state)
#: and blocked attempts (they probe lock state without recording history).
DEPENDENT = "<dependent>"

#: Pseudo-granule ordering transaction begins: begin order assigns txn
#: ids, and deadlock victim selection picks the youngest id in the cycle,
#: so two begins never commute — treating them as no-ops makes sleep sets
#: discard interleavings whose only difference is which instance ends up
#: the perpetual deadlock victim.
ORDER_GRANULE = ("<txn-order>",)


def _resource(key: tuple):
    """Collapse engine lock keys to conflict granules (tables coarsened)."""
    if key[0] in ("table", "row"):
        return ("table", key[1])
    return key


def op_signature(ops):
    """Summarise one scheduler step's engine operations for independence.

    ``ops`` is the slice of engine history the step produced.  The result
    is either :data:`DEPENDENT` or a frozenset of ``(resource, is_write)``
    pairs.  An empty slice means the step blocked (or was dropped) — the
    attempt still interacted with the lock table, so it is conservatively
    dependent on everything.
    """
    if not ops:
        return DEPENDENT
    signature = set()
    for op in ops:
        if op.kind == "begin":
            signature.add((ORDER_GRANULE, True))
            continue
        if op.kind in ("commit", "abort") or op.key is None:
            return DEPENDENT
        signature.add((_resource(op.key), op.kind != "r"))
    if not signature:
        # nothing observable recorded, which cannot happen for a real op
        # step — stay conservative
        return DEPENDENT
    return frozenset(signature)


def independent(sig_a, sig_b) -> bool:
    """Do two step signatures commute (no shared granule with a write)?"""
    if sig_a is None or sig_b is None or DEPENDENT in (sig_a, sig_b):
        return False
    for resource, is_write in sig_a:
        for other, other_write in sig_b:
            if resource == other and (is_write or other_write):
                return False
    return True


def _filter_sleep(sleep: dict, signature) -> dict:
    """Keep only sleep entries independent of the step just executed."""
    return {index: sig for index, sig in sleep.items() if independent(sig, signature)}


# ---------------------------------------------------------------------------
# step records and happens-before (the DPOR substrate)
# ---------------------------------------------------------------------------


@dataclass
class StepRecord:
    """One executed scheduler step, recorded for post-run race analysis.

    ``ops`` is the slice of engine history the step produced (possibly
    empty for a blocked attempt or a pure interpreter advance);
    ``blocked_on`` is the ``(key, mode)`` of the contested lock when the
    attempt raised :class:`~repro.engine.locks.WouldBlock`.
    """

    depth: int
    index: int  # instance index that took the step
    txn_id: int | None
    level: str
    ops: tuple
    blocked_on: tuple | None = None


def happens_before(steps: Sequence, dependent) -> list:
    """Vector clocks over a run's steps, as predecessor bitmasks.

    ``pred[j]`` has bit ``i`` set iff step ``i`` happens-before step ``j``
    — the transitive closure of program order (same instance) and the
    ``dependent(i, j)`` relation on step pairs.  The invariant that makes
    one ascending pass sufficient: whenever bit ``i`` enters a mask,
    ``pred[i]`` enters with it.
    """
    n = len(steps)
    pred = [0] * n
    last_of: dict = {}
    for j in range(n):
        mask = 0
        prev = last_of.get(steps[j].index)
        if prev is not None:
            mask |= pred[prev] | (1 << prev)
        for i in range(j):
            if (mask >> i) & 1:
                continue  # already a predecessor (with pred[i] merged)
            if steps[i].index != steps[j].index and dependent(i, j):
                mask |= pred[i] | (1 << i)
        pred[j] = mask
        last_of[steps[j].index] = j
    return pred


# ---------------------------------------------------------------------------
# the exhaustive policy (one DFS branch)
# ---------------------------------------------------------------------------


@dataclass
class Frame:
    """One decision point on the current DFS path."""

    depth: int
    enabled: tuple  # instance indices eligible at this node, in order
    sleep: dict  # index -> signature asleep at this node
    choice: int  # child currently on the path
    tried: list = dataclass_field(default_factory=list)  # [(index, signature)]
    # the subset of enabled that was not blocked — the instances whose
    # step here is a real program step rather than a lock re-attempt
    # (enabled == runnable except at all-blocked deadlock-resolution
    # nodes, where scheduling anybody just triggers the same resolution)
    runnable: tuple = ()

    def next_candidate(self):
        """The next unexplored, not-asleep child, or ``None``."""
        done = {index for index, _sig in self.tried}
        for index in self.enabled:
            if index not in done and index not in self.sleep:
                return index
        return None


def enabled_indices(active) -> list:
    """Candidate instances at a decision point, unblocked preferred.

    Mirrors :class:`RandomPolicy`'s pool so the explored tree covers the
    same schedules the random sweeps sample from, in deterministic order.
    """
    unblocked = sorted(rt.index for rt in active if not rt.blocked)
    return unblocked or sorted(rt.index for rt in active)


class ExhaustivePolicy(SchedulePolicy):
    """Drive one run of a DFS over scheduling decisions.

    The policy follows ``prefix`` (a list of instance indices, one per
    decision), then extends the path deterministically: at each new node
    it steps the lowest-indexed enabled instance that is not asleep.  It
    records a :class:`Frame` per new node so the explorer can backtrack,
    and threads the sleep set forward, waking entries whose signature
    conflicts with each executed step.

    ``entry_sleep`` is the sleep context of the *last* prefix decision
    (the candidate branch being opened): ancestors' sleep entries plus the
    signatures of previously explored siblings.  It is filtered by the
    candidate's own first-step signature once that is observed.

    Pruning hooks (both optional):

    * ``visited`` — an object with ``seen(fingerprint) -> bool``
      (check-and-add); a revisited state ends the run (``stop_reason
      == "state"``);
    * ``max_depth`` — decision budget per run (``stop_reason == "depth"``).
    """

    def __init__(
        self,
        prefix: Sequence[int] = (),
        entry_sleep: dict | None = None,
        *,
        pruning: bool = True,
        visited=None,
        fingerprint=None,
        max_depth: int | None = None,
        record_steps: bool = False,
        signature_fn=None,
        conflict=None,
    ) -> None:
        self.prefix = list(prefix)
        self.entry_sleep = dict(entry_sleep or {})
        self.pruning = pruning
        self.visited = visited if pruning else None
        self.fingerprint = fingerprint
        self.max_depth = max_depth
        self.record_steps = record_steps
        # pluggable independence relation: the optimal explorer swaps in
        # level-aware access signatures (repro.sched.dpor); defaults are
        # the lite op signatures
        self.signature_fn = signature_fn
        self.conflict = conflict
        self.steps: list = []  # StepRecords for every depth, prefix included
        self.depth = 0
        # live sleep set; seeded immediately for an empty prefix, otherwise
        # derived from entry_sleep when the candidate's signature arrives
        self.sleep: dict = {} if not self.prefix else dict(self.entry_sleep)
        self.frames: list = []  # new frames (depths >= len(prefix))
        self.candidate_signature = None  # first-step signature of prefix[-1]
        self.stop_reason = None  # None | "sleep" | "state" | "depth"
        # instances whose last step was a failed lock attempt that changed
        # nothing: re-choosing one before anything else moves would loop
        # forever on the identical no-op (lite mode only escaped via the
        # state-fingerprint dedup; optimal mode has none)
        self._no_progress: set = set()

    def choose(self, active, simulator):
        depth = self.depth
        if depth < len(self.prefix):
            index = self.prefix[depth]
            self.depth += 1
            return simulator._runtimes[index]
        if self.max_depth is not None and depth >= self.max_depth:
            self.stop_reason = "depth"
            return None
        if self.visited is not None and self.fingerprint is not None:
            if self.visited.seen(self.fingerprint(simulator), frozenset(self.sleep)):
                self.stop_reason = "state"
                return None
        runnable = sorted(rt.index for rt in active if not rt.blocked)
        waiting = sorted(
            rt.index for rt in active if rt.blocked and rt.index not in self._no_progress
        )
        enabled = runnable or waiting or sorted(rt.index for rt in active)
        candidates = [index for index in enabled if index not in self.sleep]
        if not candidates:
            # every enabled decision is covered by a sibling branch
            self.stop_reason = "sleep"
            return None
        choice = candidates[0]
        self.frames.append(
            Frame(
                depth=depth,
                enabled=tuple(enabled),
                sleep=dict(self.sleep),
                choice=choice,
                runnable=tuple(runnable),
            )
        )
        self.depth += 1
        return simulator._runtimes[choice]

    def _filter(self, sleep: dict, signature) -> dict:
        if self.conflict is None:
            return _filter_sleep(sleep, signature)
        return {
            index: sig for index, sig in sleep.items() if not self.conflict(sig, signature)
        }

    def observe_step(self, simulator, runtime, ops):
        if runtime.blocked and not ops:
            # failed re-attempt, nothing recorded: identical retries stay
            # no-ops until some other step changes lock state
            self._no_progress.add(runtime.index)
        else:
            self._no_progress.clear()
        if self.signature_fn is not None:
            signature = self.signature_fn(runtime, ops)
        else:
            signature = op_signature(ops)
        depth = self.depth - 1  # the decision just executed
        if self.record_steps:
            self.steps.append(
                StepRecord(
                    depth=depth,
                    index=runtime.index,
                    txn_id=runtime.txn.txn_id if runtime.txn is not None else None,
                    level=runtime.spec.level,
                    ops=tuple(ops),
                    blocked_on=runtime.last_block if runtime.blocked else None,
                )
            )
        if depth == len(self.prefix) - 1:
            # the candidate branch's own first step: seed the live sleep set
            self.candidate_signature = signature
            self.sleep = self._filter(self.entry_sleep, signature)
            return
        if depth < len(self.prefix):
            return  # interior prefix step: decisions already taken
        if not self.pruning:
            if self.frames:
                frame = self.frames[-1]
                frame.tried.append((frame.choice, signature))
            return
        frame = self.frames[-1]
        frame.tried.append((frame.choice, signature))
        self.sleep = self._filter(self.sleep, signature)
