"""repro — semantic correctness of transactions at weak isolation levels.

A complete implementation of *Bernstein, Lewis & Lu, "Semantic Conditions
for Correctness at Different Isolation Levels", ICDE 2000*:

* a formal assertion language, strongest-postcondition engine and
  three-tier interference checker (:mod:`repro.core`);
* Theorems 1–6 as checkable per-level conditions and the Section 5
  lowest-level chooser (:mod:`repro.core.conditions`,
  :mod:`repro.core.chooser`);
* an in-memory transactional engine implementing the locking/MVCC recipes
  of Berenson et al. for all six levels (:mod:`repro.engine`);
* a deterministic schedule simulator with serializability, anomaly and
  dynamic semantic-correctness checkers (:mod:`repro.sched`);
* the paper's example applications, modeled and runnable
  (:mod:`repro.apps`), and workload harnesses (:mod:`repro.workloads`).

Quickstart::

    from repro import analyze_application, InterferenceChecker
    from repro.apps import banking

    app = banking.make_application()
    report = analyze_application(app, InterferenceChecker(app.spec))
    print(report.render())
"""

from repro.core.application import Application
from repro.core.chooser import ApplicationReport, ChoiceResult, analyze_application, choose_level
from repro.core.conditions import (
    ANSI_LADDER,
    EXTENDED_LADDER,
    READ_COMMITTED,
    READ_COMMITTED_FCW,
    READ_UNCOMMITTED,
    REPEATABLE_READ,
    SERIALIZABLE,
    SNAPSHOT,
    check_transaction_at,
)
from repro.core.interference import InterferenceChecker
from repro.core.parser import parse_formula, parse_term
from repro.core.program import TransactionType
from repro.core.state import DbState
from repro.engine import Engine
from repro.sched.monitor import AssertionGuard, AssertionMonitor
from repro.sched.semantic import check_semantic_correctness, validate_level
from repro.sched.simulator import InstanceSpec, Simulator

__version__ = "1.0.0"

__all__ = [
    "ANSI_LADDER",
    "Application",
    "AssertionGuard",
    "AssertionMonitor",
    "ApplicationReport",
    "ChoiceResult",
    "DbState",
    "EXTENDED_LADDER",
    "Engine",
    "InstanceSpec",
    "InterferenceChecker",
    "READ_COMMITTED",
    "READ_COMMITTED_FCW",
    "READ_UNCOMMITTED",
    "REPEATABLE_READ",
    "SERIALIZABLE",
    "SNAPSHOT",
    "Simulator",
    "TransactionType",
    "analyze_application",
    "parse_formula",
    "parse_term",
    "check_semantic_correctness",
    "check_transaction_at",
    "choose_level",
    "validate_level",
    "__version__",
]
