"""Canonical analysis jobs — one code path for the batch CLI and the service.

A :class:`JobSpec` is the *semantic* description of one unit of analysis
work: the kind (``analyze`` / ``certify`` / ``lint``), the application, and
every knob that can change the produced report (budget, seed, ladder, …).
Runtime knobs that cannot change the result — worker counts, executor
backend, cache instances, persistence directories — are deliberately *not*
part of the spec: they are passed to :func:`run_job` separately.  This split
is what makes the spec's :meth:`~JobSpec.fingerprint` a sound deduplication
key for the service batcher (two requests with equal fingerprints provably
produce equal payloads) and what makes the HTTP results byte-identical to
the batch CLI: both fronts call :func:`run_job` and serialise the same
``payload`` dict.

``JobResult.payload`` is the deterministic report; ``JobResult.extras``
carries the run-varying statistics (tier counts, cache hit rates, persist
counters) that the batch CLI appends to its JSON output and the service
reports under a separate ``meta`` key.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import ReproError

#: The job kinds the service and ``repro submit`` accept.
JOB_KINDS = ("analyze", "certify", "lint", "infer", "fuzz")

#: Application references of the form ``appgen:<seed>`` resolve to
#: generated unannotated programs (see :mod:`repro.workloads.appgen`);
#: they are accepted by ``infer`` and ``fuzz`` jobs only.
APPGEN_PREFIX = "appgen:"


class JobError(ReproError):
    """A job spec failed validation (unknown app, level, ladder, …)."""


@dataclass(frozen=True)
class JobSpec:
    """Semantic description of one analysis job (see module docstring)."""

    kind: str
    app: str
    budget: int = 3000
    seed: int = 0
    ladder: str = "ansi"
    snapshot: bool = False
    use_sdg: bool = True
    transaction: str | None = None
    level: str | None = None
    max_schedules: int = 500
    max_depth: int | None = None
    dpor: str = "optimal"
    #: Generator knob string for appgen refs (``fuzz``/``infer`` jobs);
    #: part of the fingerprint — different knobs are different programs.
    profile: str | None = None
    #: Probe instance sets per fuzz case (``fuzz`` jobs only).
    pairs: int = 3

    def validate(self) -> None:
        """Raise :class:`JobError` on any inconsistency a run would hit."""
        from repro.apps import registry
        from repro.core.conditions import LEVEL_ORDER

        if self.kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {self.kind!r}; choose from {', '.join(JOB_KINDS)}"
            )
        apps = registry()
        if self.app.startswith(APPGEN_PREFIX):
            if self.kind not in ("infer", "fuzz"):
                raise JobError(
                    f"generated applications ({APPGEN_PREFIX}<seed>) are only"
                    f" accepted by infer and fuzz jobs, not {self.kind!r}"
                )
            seed = self.app[len(APPGEN_PREFIX) :]
            if not (seed.isdigit() or (seed[:1] == "-" and seed[1:].isdigit())):
                raise JobError(
                    f"appgen seed must be an integer, got {seed!r}"
                    " (seed ranges are expanded client-side; specs carry one seed)"
                )
        elif self.kind == "fuzz":
            raise JobError(
                f"fuzz jobs take {APPGEN_PREFIX}<seed> references, not {self.app!r}"
            )
        elif self.app not in apps:
            raise JobError(
                f"unknown application {self.app!r};"
                f" choose from {', '.join(sorted(apps))} or {APPGEN_PREFIX}<seed>"
            )
        if self.profile is not None:
            if self.kind not in ("infer", "fuzz"):
                raise JobError("profile (generator knobs) only applies to appgen jobs")
            from repro.workloads.appgen import AppGenConfig

            try:
                AppGenConfig.from_knobs(0, self.profile)
            except Exception as exc:
                raise JobError(f"bad generator knobs {self.profile!r}: {exc}") from None
        if self.ladder not in ("ansi", "extended"):
            raise JobError(f"unknown ladder {self.ladder!r}; choose ansi or extended")
        if self.budget < 0:
            raise JobError(f"budget must be non-negative, got {self.budget}")
        if self.max_schedules is not None and self.max_schedules <= 0:
            raise JobError(f"max_schedules must be positive, got {self.max_schedules}")
        if self.dpor not in ("optimal", "lite"):
            raise JobError(f"unknown dpor mode {self.dpor!r}; choose optimal or lite")
        if self.pairs <= 0:
            raise JobError(f"pairs must be positive, got {self.pairs}")
        if self.kind == "fuzz":
            if self.transaction is not None:
                raise JobError("fuzz jobs take no transaction filter")
        elif (self.transaction is None) != (self.level is None):
            raise JobError("transaction and level must be given together")
        if self.level is not None and self.level not in LEVEL_ORDER:
            raise JobError(
                f"unknown isolation level {self.level!r}; choose from"
                f" {', '.join(sorted(LEVEL_ORDER, key=LEVEL_ORDER.get))}"
            )
        if self.transaction is not None:
            app = apps[self.app]()
            if self.transaction not in app.transaction_names():
                raise JobError(
                    f"unknown transaction {self.transaction!r} in {self.app!r};"
                    f" choose from {', '.join(sorted(app.transaction_names()))}"
                )
        if self.transaction is not None and self.kind != "analyze":
            raise JobError(f"transaction/level filters only apply to analyze jobs")

    def fingerprint(self) -> str:
        """Stable dedup key: jobs with equal fingerprints yield equal payloads."""
        from repro.core.cache import fingerprint_many

        return fingerprint_many(*(getattr(self, f.name) for f in fields(self)))

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict, kind: str | None = None) -> "JobSpec":
        """Build a spec from an untrusted dict, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        data = dict(payload)
        if kind is not None:
            data["kind"] = kind
        unknown = set(data) - known
        if unknown:
            raise JobError(f"unknown job fields: {', '.join(sorted(unknown))}")
        try:
            spec = cls(**data)
        except TypeError as exc:
            raise JobError(str(exc)) from None
        for name, kind_ in (("kind", str), ("app", str)):
            if not isinstance(getattr(spec, name), kind_):
                raise JobError(f"job field {name!r} must be a string")
        for name in ("budget", "seed", "max_schedules", "max_depth", "pairs"):
            value = getattr(spec, name)
            if value is not None and not isinstance(value, int):
                raise JobError(f"job field {name!r} must be an integer")
        if spec.profile is not None and not isinstance(spec.profile, str):
            raise JobError("job field 'profile' must be a string")
        return spec


@dataclass
class JobResult:
    """Outcome of one :func:`run_job` call."""

    spec: JobSpec
    payload: dict  # deterministic report — byte-identical batch vs service
    exit_code: int
    extras: dict = field(default_factory=dict)  # run-varying statistics
    report: object = None  # the in-memory report object (CLI rendering)
    artifacts: dict = field(default_factory=dict)  # non-serialisable extras


def run_job(
    spec: JobSpec,
    *,
    cache=None,
    workers: int | None = None,
    backend: str = "thread",
    cache_dir: str | None = None,
    no_persist: bool = False,
    checker_hook=None,
) -> JobResult:
    """Execute one job and return its deterministic payload.

    ``cache`` defaults to the process-shared verdict cache; the service
    passes its own long-lived instance.  Persistence (``cache_dir`` /
    ``no_persist``) is a runtime concern: the service warms its store once
    at boot and passes ``no_persist=True`` here.  ``checker_hook`` (analyze
    only) receives the freshly built InterferenceChecker before the run —
    the CLI uses it to attach a telemetry latency observer.
    """
    spec.validate()
    if spec.kind == "analyze":
        return _run_analyze_job(
            spec, cache=cache, workers=workers, backend=backend,
            cache_dir=cache_dir, no_persist=no_persist, checker_hook=checker_hook,
        )
    if spec.kind == "certify":
        return _run_certify_job(
            spec, cache=cache, workers=workers, backend=backend,
            cache_dir=cache_dir, no_persist=no_persist,
        )
    if spec.kind == "infer":
        return _run_infer_job(spec, workers=workers)
    if spec.kind == "fuzz":
        return _run_fuzz_job(spec)
    return _run_lint_job(spec)


def _run_analyze_job(
    spec: JobSpec, *, cache, workers, backend, cache_dir, no_persist, checker_hook=None
) -> JobResult:
    from repro.apps import registry
    from repro.core.cache import shared_cache
    from repro.core.chooser import analyze_application
    from repro.core.conditions import (
        ANSI_LADDER,
        EXTENDED_LADDER,
        check_transaction_at,
    )
    from repro.core.interference import InterferenceChecker
    from repro.core.parallel import ParallelPolicy, resolve_workers
    from repro.core.persist import open_store

    app = registry()[spec.app]()
    workers = resolve_workers(workers)
    if cache is None:
        cache = shared_cache()
    store = open_store(cache_dir, no_persist=no_persist)
    if store is not None:
        store.load(cache)
    checker = InterferenceChecker(
        app.spec, budget=spec.budget, seed=spec.seed, cache=cache,
        workers=workers, use_sdg=spec.use_sdg,
    )
    if checker_hook is not None:
        checker_hook(checker)
    policy = ParallelPolicy(workers=workers, backend=backend, app_ref=spec.app)
    try:
        if spec.transaction is not None:
            result = check_transaction_at(
                app, app.transaction(spec.transaction), spec.level, checker, policy
            )
            extras = {"tiers": dict(checker.stats), "cache": cache.stats.snapshot()}
            return JobResult(
                spec=spec,
                payload=result.to_dict(),
                exit_code=0 if result.ok else 1,
                extras=extras,
                report=result,
                artifacts={"checker": checker},
            )
        ladder = EXTENDED_LADDER if spec.ladder == "extended" else ANSI_LADDER
        report = analyze_application(
            app, checker, ladder=ladder, include_snapshot=spec.snapshot, policy=policy
        )
        extras = {"tiers": dict(checker.stats), "cache": cache.stats.snapshot()}
        if store is not None:
            extras["persist"] = store.snapshot()
        return JobResult(
            spec=spec, payload=report.to_dict(), exit_code=0, extras=extras,
            report=report, artifacts={"checker": checker},
        )
    finally:
        if store is not None:
            store.flush(cache)


def _run_certify_job(
    spec: JobSpec, *, cache, workers, backend, cache_dir, no_persist
) -> JobResult:
    from repro.pipeline.certify import certify
    from repro.pipeline.context import RunContext

    context = RunContext(
        seed=spec.seed,
        workers=workers,
        backend=backend,
        budget=spec.budget,
        max_schedules=spec.max_schedules,
        max_depth=spec.max_depth,
        dpor=spec.dpor,
        use_sdg=spec.use_sdg,
        cache=cache,
        cache_dir=cache_dir,
        no_persist=no_persist,
    )
    report = certify(spec.app, context=context, ladder=spec.ladder)
    payload = report.to_dict()
    # the stats key is the only run-varying part of the certificate; it is
    # re-attached by the batch CLI and reported as meta by the service
    extras = {"stats": payload.pop("stats")}
    return JobResult(
        spec=spec,
        payload=payload,
        exit_code=0 if report.agreement else 1,
        extras=extras,
        report=report,
    )


def _resolve_infer_app(ref: str, knobs: str | None = None):
    """Registry app or ``appgen:<seed>`` generated program."""
    if ref.startswith(APPGEN_PREFIX):
        from repro.workloads.appgen import resolve_app_ref

        return resolve_app_ref(ref, knobs=knobs)
    from repro.apps import registry

    return registry()[ref]()


def _run_infer_job(spec: JobSpec, *, workers) -> JobResult:
    from repro.core.chooser import analyze_application
    from repro.core.formula import TRUE
    from repro.core.infer import agreement, infer_application
    from repro.core.interference import InterferenceChecker
    from repro.core.parallel import resolve_workers

    app = _resolve_infer_app(spec.app, knobs=spec.profile)
    inferred, report = infer_application(app, seed=spec.seed)
    payload = {
        "application": app.name,
        "inference": report.to_dict(),
    }
    declared = any(
        txn.consistency is not TRUE
        or txn.param_pre is not TRUE
        or txn.result is not TRUE
        for txn in app.transactions
    )
    exit_code = 0
    if declared:
        compared = agreement(
            app, inferred, budget=spec.budget, seed=spec.seed, workers=workers
        )
        payload["declared_levels"] = compared["declared"]
        payload["matches"] = compared["matches"]
        payload["agreement"] = compared["agreement"]
        payload["levels"] = compared["inferred"]
        payload["disagreements"] = [
            {
                "transaction": name,
                "declared": compared["declared"][name],
                "inferred": compared["inferred"][name],
            }
            for name in sorted(compared["matches"])
            if not compared["matches"][name]
        ]
        exit_code = 0 if compared["agreement"] else 1
    else:
        checker = InterferenceChecker(
            inferred.spec, budget=spec.budget, seed=spec.seed,
            workers=resolve_workers(workers),
        )
        payload["levels"] = analyze_application(inferred, checker).levels()
        payload["disagreements"] = []  # nothing declared to disagree with
    return JobResult(
        spec=spec,
        payload=payload,
        exit_code=exit_code,
        report=report,
        artifacts={"inferred": inferred},
    )


def _run_fuzz_job(spec: JobSpec) -> JobResult:
    """One differential fuzz case (see :mod:`repro.fuzz.differential`).

    The spec reuses existing fields for the fuzz knobs: ``profile`` is
    the generator knob string, ``level`` the forced chooser override,
    ``max_schedules`` the per-probe exploration budget.  The payload is
    the corpus ledger row — deterministic, so a fleet worker's row is
    byte-identical to the one the local runner would have written.
    """
    from repro.fuzz.case import UNSOUND
    from repro.fuzz.differential import run_case
    from repro.workloads.appgen import AppGenConfig

    seed = int(spec.app[len(APPGEN_PREFIX) :])
    config = AppGenConfig.from_knobs(seed, spec.profile)
    case = run_case(
        config,
        budget=spec.budget,
        pairs=spec.pairs,
        probe_schedules=spec.max_schedules,
        force_level=spec.level,
    )
    return JobResult(
        spec=spec,
        payload=case.to_row(),
        exit_code=1 if case.verdict == UNSOUND else 0,
        report=case,
    )


def _run_lint_job(spec: JobSpec) -> JobResult:
    from repro.apps import registry
    from repro.core.lint import lint_application

    report = lint_application(registry()[spec.app]())
    return JobResult(
        spec=spec,
        payload=report.to_dict(),
        exit_code=0 if report.ok else 1,
        report=report,
    )
