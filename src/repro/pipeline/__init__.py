"""The cross-layer certification pipeline.

Wires the static Section 5 chooser (:mod:`repro.core.chooser`) to the
exhaustive schedule explorer (:mod:`repro.sched.explore`) through a shared
:class:`~repro.pipeline.context.RunContext`, and reconciles both layers
into a :class:`~repro.pipeline.certify.CertificateReport` — the artifact
behind ``repro certify``.
"""

from repro.pipeline.certify import (
    CertificateReport,
    DynamicProbe,
    TypeVerdict,
    Witness,
    certify,
    classify,
    level_below,
    run_probe,
)
from repro.pipeline.context import RunContext
from repro.pipeline.scenarios import Scenario, scenarios_for

__all__ = [
    "CertificateReport",
    "DynamicProbe",
    "RunContext",
    "Scenario",
    "TypeVerdict",
    "Witness",
    "certify",
    "classify",
    "level_below",
    "run_probe",
    "scenarios_for",
]
