"""Concrete concurrency scenarios for dynamic certification.

The static chooser reasons over *all* possible concurrent executions; the
dynamic half of the pipeline needs concrete, finite ones.  A
:class:`Scenario` packages the smallest instance set known to exercise a
transaction type's interesting interference — the lost update, the write
skew, the deposit race of the paper's Example 3 — together with the
initial state and the invariant the semantic checker evaluates.

Scenarios are deliberately tiny (two or three instances over one
account): exhaustive exploration is exponential in instances, and the
paper's anomalies all need only two participants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.formula import Formula, conj, ge
from repro.core.state import DbState
from repro.core.terms import Field, IntConst
from repro.sched.simulator import InstanceSpec


@dataclass
class Scenario:
    """One concrete instance set used to certify the focus types."""

    name: str
    description: str
    focus: tuple  # transaction type names this scenario certifies
    initial: Callable[[], DbState]
    make_specs: Callable[[dict], list]  # levels: type name -> level
    invariant: Formula
    cumulative: Callable | None = None

    def specs(self, levels: dict) -> list:
        return self.make_specs(dict(levels))


def _banking_invariant(accounts: int = 1) -> Formula:
    return conj(
        *(
            ge(
                Field("acct_sav", IntConst(i), "bal") + Field("acct_ch", IntConst(i), "bal"),
                0,
            )
            for i in range(accounts)
        )
    )


def _banking_state(sav: int, ch: int) -> Callable[[], DbState]:
    def build() -> DbState:
        return DbState(
            arrays={"acct_sav": {0: {"bal": sav}}, "acct_ch": {0: {"bal": ch}}}
        )

    return build


def banking_scenarios() -> list:
    from repro.apps import banking

    def withdraw_race(levels: dict) -> list:
        level = levels.get("Withdraw_sav", "SERIALIZABLE")
        return [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, level, "W1"),
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, level, "W2"),
        ]

    def write_skew(levels: dict) -> list:
        return [
            InstanceSpec(
                banking.WITHDRAW_SAV,
                {"i": 0, "w": 2},
                levels.get("Withdraw_sav", "SERIALIZABLE"),
                "Wsav",
            ),
            InstanceSpec(
                banking.WITHDRAW_CH,
                {"i": 0, "w": 2},
                levels.get("Withdraw_ch", "SERIALIZABLE"),
                "Wch",
            ),
        ]

    def deposit_race(levels: dict) -> list:
        level = levels.get("Deposit_sav", "SERIALIZABLE")
        return [
            InstanceSpec(banking.DEPOSIT_SAV, {"i": 0, "d": 1}, level, "D1"),
            InstanceSpec(banking.DEPOSIT_SAV, {"i": 0, "d": 1}, level, "D2"),
        ]

    def withdraw_race_3(levels: dict) -> list:
        level = levels.get("Withdraw_sav", "SERIALIZABLE")
        return [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, level, f"W{n}")
            for n in (1, 2, 3)
        ]

    def deposit_vs_withdraw(levels: dict) -> list:
        return [
            InstanceSpec(
                banking.DEPOSIT_CH,
                {"i": 0, "d": 1},
                levels.get("Deposit_ch", "SERIALIZABLE"),
                "D",
            ),
            InstanceSpec(
                banking.WITHDRAW_CH,
                {"i": 0, "w": 1},
                levels.get("Withdraw_ch", "SERIALIZABLE"),
                "W",
            ),
        ]

    invariant = _banking_invariant()
    return [
        Scenario(
            name="withdraw-race",
            description="two withdrawals of 1 from the same savings balance of 2"
            " — the classic lost update",
            focus=("Withdraw_sav",),
            initial=_banking_state(sav=2, ch=0),
            make_specs=withdraw_race,
            invariant=invariant,
        ),
        Scenario(
            name="write-skew",
            description="savings and checking withdrawals of 2 against balances 1/1"
            " — Example 3's write skew",
            focus=("Withdraw_sav", "Withdraw_ch"),
            initial=_banking_state(sav=1, ch=1),
            make_specs=write_skew,
            invariant=invariant,
        ),
        Scenario(
            name="withdraw-race-3",
            description="three withdrawals of 1 from the same savings balance"
            " of 2 — the lost update with a third racer (the E16 benchmark"
            " workload: race reversal prunes far below sleep sets here)",
            focus=("Withdraw_sav",),
            initial=_banking_state(sav=2, ch=0),
            make_specs=withdraw_race_3,
            invariant=invariant,
        ),
        Scenario(
            name="deposit-race",
            description="two deposits of 1 into the same savings balance"
            " — a lost deposit",
            focus=("Deposit_sav",),
            initial=_banking_state(sav=0, ch=0),
            make_specs=deposit_race,
            invariant=invariant,
        ),
        Scenario(
            name="deposit-vs-withdraw",
            description="a checking deposit racing a checking withdrawal",
            focus=("Deposit_ch", "Withdraw_ch"),
            initial=_banking_state(sav=0, ch=2),
            make_specs=deposit_vs_withdraw,
            invariant=invariant,
        ),
    ]


def tpcc_scenarios() -> list:
    from repro.apps import tpcc
    from repro.core.formula import TRUE

    def new_order_race(levels: dict) -> list:
        level = levels.get("TPCC_NewOrder", "SERIALIZABLE")
        return [
            InstanceSpec(
                tpcc.NEW_ORDER, {"d": 0, "c": 0, "item": 0, "qty": 1}, level, "NO1"
            ),
            InstanceSpec(
                tpcc.NEW_ORDER, {"d": 0, "c": 1, "item": 1, "qty": 1}, level, "NO2"
            ),
        ]

    def distinct_order_numbers(initial: DbState, final: DbState, committed: list):
        """Q_Sch: every committed NewOrder got its own order number."""
        problems = []
        placed = [o for o in committed if o.txn_type.name == "TPCC_NewOrder"]
        oids = [row["o_id"] for row in final.rows("ORDERS")]
        if len(set(oids)) != len(oids):
            problems.append(
                "duplicate order numbers (lost update on district.next_o_id)"
            )
        expected = initial.read_field("district", 0, "next_o_id") + len(placed)
        if final.read_field("district", 0, "next_o_id") != expected:
            problems.append(
                f"district.next_o_id advanced to"
                f" {final.read_field('district', 0, 'next_o_id')}"
                f" for {len(placed)} committed orders (expected {expected})"
            )
        return problems

    def payment_race(levels: dict) -> list:
        level = levels.get("TPCC_Payment", "SERIALIZABLE")
        return [
            InstanceSpec(tpcc.PAYMENT, {"c": 0, "d": 0, "amount": 1}, level, "P1"),
            InstanceSpec(tpcc.PAYMENT, {"c": 0, "d": 0, "amount": 1}, level, "P2"),
        ]

    def ytd_accounts_for_payments(initial: DbState, final: DbState, committed: list):
        """Q_Sch: the warehouse year-to-date reflects every committed payment."""
        paid = sum(
            o.args.get("amount", 0)
            for o in committed
            if o.txn_type.name == "TPCC_Payment"
        )
        expected = initial.read_field("warehouse", 0, "ytd") + paid
        actual = final.read_field("warehouse", 0, "ytd")
        if actual != expected:
            return [
                f"warehouse.ytd is {actual} after {paid} in committed payments"
                f" (expected {expected}: a ytd update was lost)"
            ]
        return []

    def delivery_vs_new_order(levels: dict) -> list:
        return [
            InstanceSpec(
                tpcc.NEW_ORDER,
                {"d": 0, "c": 0, "item": 0, "qty": 1},
                levels.get("TPCC_NewOrder", "SERIALIZABLE"),
                "NO",
            ),
            InstanceSpec(
                tpcc.DELIVERY,
                {"d": 0},
                levels.get("TPCC_Delivery", "SERIALIZABLE"),
                "DL",
            ),
        ]

    def district_mix(levels: dict) -> list:
        no_level = levels.get("TPCC_NewOrder", "SERIALIZABLE")
        return [
            InstanceSpec(
                tpcc.NEW_ORDER, {"d": 0, "c": 0, "item": 0, "qty": 1}, no_level, "NO1"
            ),
            InstanceSpec(
                tpcc.NEW_ORDER, {"d": 0, "c": 1, "item": 1, "qty": 1}, no_level, "NO2"
            ),
            InstanceSpec(
                tpcc.PAYMENT,
                {"c": 0, "d": 0, "amount": 1},
                levels.get("TPCC_Payment", "SERIALIZABLE"),
                "P",
            ),
        ]

    stock_nonneg = conj(
        *(
            ge(Field("stock", IntConst(i), "quantity"), 0)
            for i in range(tpcc.ITEMS)
        )
    )
    return [
        Scenario(
            name="new-order-race",
            description="two NewOrders race the same district's order-number"
            " counter — a lost counter update hands out duplicate order ids",
            focus=("TPCC_NewOrder",),
            initial=tpcc.initial_state,
            make_specs=new_order_race,
            invariant=stock_nonneg,
            cumulative=distinct_order_numbers,
        ),
        Scenario(
            name="payment-race",
            description="two payments debit the same customer balance"
            " — the TPC-C flavour of the banking lost update",
            focus=("TPCC_Payment",),
            initial=tpcc.initial_state,
            make_specs=payment_race,
            invariant=TRUE,
            cumulative=ytd_accounts_for_payments,
        ),
        Scenario(
            name="district-mix",
            description="two NewOrders and a Payment pile onto district 0"
            " — the three-instance workload whose exhaustive certification"
            " only the optimal explorer finishes within the run budget",
            focus=("TPCC_NewOrder", "TPCC_Payment"),
            initial=tpcc.initial_state,
            make_specs=district_mix,
            invariant=stock_nonneg,
            cumulative=distinct_order_numbers,
        ),
        Scenario(
            name="delivery-vs-new-order",
            description="an order placed while the district's deliveries run"
            " — Delivery's 'everything delivered' result meets a phantom",
            focus=("TPCC_Delivery",),
            initial=tpcc.initial_state,
            make_specs=delivery_vs_new_order,
            invariant=stock_nonneg,
        ),
    ]


def mvcc_scenarios() -> list:
    """Storage-level stress scenarios enabled by the MVCC store.

    Both revolve around a *long-running reader*: a SNAPSHOT transaction
    whose begin pins a version horizon while writers commit past it.  The
    old deep-copy store could simulate the reader, but it had no version
    chains to retain or reclaim — these scenarios exist to exercise (and
    differentially validate) snapshot resolution against multi-version
    chains and the vacuum's oldest-active-snapshot horizon, so they
    register under their own key (``"mvcc-stress"``) rather than under an
    application whose certification surface is pinned.
    """
    from repro.core.formula import eq
    from repro.core.program import Read, TransactionType, Write
    from repro.core.terms import Local, Param

    i = Param("i")
    t = Param("t")
    sav = Field("acct_sav", i, "bal")
    ch = Field("acct_ch", i, "bal")

    audit = TransactionType(
        name="Audit",
        params=(i,),
        body=(
            Read(Local("S1"), sav, label="first savings read"),
            Read(Local("C1"), ch, label="first checking read"),
            Read(Local("S2"), sav, label="second savings read"),
            Read(Local("C2"), ch, label="second checking read"),
        ),
    )
    transfer = TransactionType(
        name="Transfer",
        params=(i, t),
        body=(
            Read(Local("Sav"), sav, label="read sav"),
            Write(sav, Local("Sav") - t, label="debit sav"),
            Read(Local("Ch"), ch, label="read ch"),
            Write(ch, Local("Ch") + t, label="credit ch"),
        ),
    )
    credit = TransactionType(
        name="Credit",
        params=(i,),
        body=(
            Read(Local("B1"), ch, label="first read"),
            Write(ch, Local("B1") + 1, label="first credit"),
            Read(Local("B2"), ch, label="second read"),
            Write(ch, Local("B2") + 1, label="second credit"),
        ),
    )

    def long_reader(levels: dict) -> list:
        return [
            InstanceSpec(audit, {"i": 0}, levels.get("Audit", "SNAPSHOT"), "A"),
            InstanceSpec(transfer, {"i": 0, "t": 1}, levels.get("Transfer", "SNAPSHOT"), "T1"),
            InstanceSpec(transfer, {"i": 0, "t": 1}, levels.get("Transfer", "SNAPSHOT"), "T2"),
        ]

    def version_bloat(levels: dict) -> list:
        return [
            InstanceSpec(audit, {"i": 0}, levels.get("Audit", "SNAPSHOT"), "A"),
            InstanceSpec(credit, {"i": 0}, levels.get("Credit", "SNAPSHOT"), "C1"),
            InstanceSpec(credit, {"i": 0}, levels.get("Credit", "SNAPSHOT"), "C2"),
        ]

    total = 4  # sav=3 + ch=1; transfers move value, never create or destroy it

    def conserved_and_stable(initial: DbState, final: DbState, committed: list):
        """Q_Sch: money is conserved and every audit saw one consistent sum."""
        problems = []
        actual = final.read_field("acct_sav", 0, "bal") + final.read_field(
            "acct_ch", 0, "bal"
        )
        if actual != total:
            problems.append(
                f"combined balance drifted to {actual} (expected {total}:"
                " a transfer leg was lost)"
            )
        for outcome in committed:
            if outcome.txn_type.name != "Audit":
                continue
            first = outcome.env[Local("S1")] + outcome.env[Local("C1")]
            second = outcome.env[Local("S2")] + outcome.env[Local("C2")]
            if first != total or second != total:
                problems.append(
                    f"audit {outcome.name} observed a torn transfer"
                    f" (sums {first} then {second}, expected {total})"
                )
        return problems

    def credits_accounted(initial: DbState, final: DbState, committed: list):
        """Q_Sch: the checking balance reflects every committed credit."""
        credits = sum(1 for o in committed if o.txn_type.name == "Credit")
        expected = initial.read_field("acct_ch", 0, "bal") + 2 * credits
        actual = final.read_field("acct_ch", 0, "bal")
        if actual != expected:
            return [
                f"checking balance is {actual} after {credits} committed"
                f" credits of 2 (expected {expected}: an increment was lost)"
            ]
        return []

    conservation = eq(
        Field("acct_sav", IntConst(0), "bal") + Field("acct_ch", IntConst(0), "bal"),
        total,
    )
    return [
        Scenario(
            name="long-reader",
            description="a four-read audit spans two transfers between the"
            " same accounts — its snapshot pins pre-transfer versions that"
            " vacuum must retain until it commits, and at weaker levels its"
            " re-reads watch the transfer tear",
            focus=("Audit", "Transfer"),
            initial=_banking_state(sav=3, ch=1),
            make_specs=long_reader,
            invariant=conservation,
            cumulative=conserved_and_stable,
        ),
        Scenario(
            name="version-bloat",
            description="two double-increment writers grow one checking-"
            "balance version chain under a pinned audit snapshot — the"
            " version-retention workload for the vacuum horizon and the"
            " E17 bloat metric",
            focus=("Audit", "Credit"),
            initial=_banking_state(sav=3, ch=1),
            make_specs=version_bloat,
            invariant=ge(Field("acct_ch", IntConst(0), "bal"), 0),
            cumulative=credits_accounted,
        ),
    ]


def scenarios_for(app_name: str) -> list:
    """The registered scenarios of an application (empty when none).

    ``"mvcc-stress"`` is not an application: it is the storage-stress
    suite (:func:`mvcc_scenarios`) addressed directly by the differential
    tests and the CI vacuum smoke.
    """
    registry = {
        "banking": banking_scenarios,
        "tpcc-lite": tpcc_scenarios,
        "mvcc-stress": mvcc_scenarios,
    }
    return registry.get(app_name, lambda: [])()
