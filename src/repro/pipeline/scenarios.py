"""Concrete concurrency scenarios for dynamic certification.

The static chooser reasons over *all* possible concurrent executions; the
dynamic half of the pipeline needs concrete, finite ones.  A
:class:`Scenario` packages the smallest instance set known to exercise a
transaction type's interesting interference — the lost update, the write
skew, the deposit race of the paper's Example 3 — together with the
initial state and the invariant the semantic checker evaluates.

Scenarios are deliberately tiny (two or three instances over one
account): exhaustive exploration is exponential in instances, and the
paper's anomalies all need only two participants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.formula import Formula, conj, ge
from repro.core.state import DbState
from repro.core.terms import Field, IntConst
from repro.sched.simulator import InstanceSpec


@dataclass
class Scenario:
    """One concrete instance set used to certify the focus types."""

    name: str
    description: str
    focus: tuple  # transaction type names this scenario certifies
    initial: Callable[[], DbState]
    make_specs: Callable[[dict], list]  # levels: type name -> level
    invariant: Formula
    cumulative: Callable | None = None

    def specs(self, levels: dict) -> list:
        return self.make_specs(dict(levels))


def _banking_invariant(accounts: int = 1) -> Formula:
    return conj(
        *(
            ge(
                Field("acct_sav", IntConst(i), "bal") + Field("acct_ch", IntConst(i), "bal"),
                0,
            )
            for i in range(accounts)
        )
    )


def _banking_state(sav: int, ch: int) -> Callable[[], DbState]:
    def build() -> DbState:
        return DbState(
            arrays={"acct_sav": {0: {"bal": sav}}, "acct_ch": {0: {"bal": ch}}}
        )

    return build


def banking_scenarios() -> list:
    from repro.apps import banking

    def withdraw_race(levels: dict) -> list:
        level = levels.get("Withdraw_sav", "SERIALIZABLE")
        return [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, level, "W1"),
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, level, "W2"),
        ]

    def write_skew(levels: dict) -> list:
        return [
            InstanceSpec(
                banking.WITHDRAW_SAV,
                {"i": 0, "w": 2},
                levels.get("Withdraw_sav", "SERIALIZABLE"),
                "Wsav",
            ),
            InstanceSpec(
                banking.WITHDRAW_CH,
                {"i": 0, "w": 2},
                levels.get("Withdraw_ch", "SERIALIZABLE"),
                "Wch",
            ),
        ]

    def deposit_race(levels: dict) -> list:
        level = levels.get("Deposit_sav", "SERIALIZABLE")
        return [
            InstanceSpec(banking.DEPOSIT_SAV, {"i": 0, "d": 1}, level, "D1"),
            InstanceSpec(banking.DEPOSIT_SAV, {"i": 0, "d": 1}, level, "D2"),
        ]

    def deposit_vs_withdraw(levels: dict) -> list:
        return [
            InstanceSpec(
                banking.DEPOSIT_CH,
                {"i": 0, "d": 1},
                levels.get("Deposit_ch", "SERIALIZABLE"),
                "D",
            ),
            InstanceSpec(
                banking.WITHDRAW_CH,
                {"i": 0, "w": 1},
                levels.get("Withdraw_ch", "SERIALIZABLE"),
                "W",
            ),
        ]

    invariant = _banking_invariant()
    return [
        Scenario(
            name="withdraw-race",
            description="two withdrawals of 1 from the same savings balance of 2"
            " — the classic lost update",
            focus=("Withdraw_sav",),
            initial=_banking_state(sav=2, ch=0),
            make_specs=withdraw_race,
            invariant=invariant,
        ),
        Scenario(
            name="write-skew",
            description="savings and checking withdrawals of 2 against balances 1/1"
            " — Example 3's write skew",
            focus=("Withdraw_sav", "Withdraw_ch"),
            initial=_banking_state(sav=1, ch=1),
            make_specs=write_skew,
            invariant=invariant,
        ),
        Scenario(
            name="deposit-race",
            description="two deposits of 1 into the same savings balance"
            " — a lost deposit",
            focus=("Deposit_sav",),
            initial=_banking_state(sav=0, ch=0),
            make_specs=deposit_race,
            invariant=invariant,
        ),
        Scenario(
            name="deposit-vs-withdraw",
            description="a checking deposit racing a checking withdrawal",
            focus=("Deposit_ch", "Withdraw_ch"),
            initial=_banking_state(sav=0, ch=2),
            make_specs=deposit_vs_withdraw,
            invariant=invariant,
        ),
    ]


def scenarios_for(app_name: str) -> list:
    """The registered scenarios of an application (empty when none)."""
    return {"banking": banking_scenarios}.get(app_name, lambda: [])()
