"""The shared run context threaded through the certification pipeline.

One :class:`RunContext` carries the knobs both halves of the pipeline
need — the static chooser (verdict cache, obligation-dispatch policy,
BMC budget/seed) and the dynamic explorer (workers, run bounds) — so a
``certify`` call configures everything once and the stats of both layers
land in one sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cache import VerdictCache, shared_cache
from repro.core.interference import InterferenceChecker
from repro.core.parallel import ParallelPolicy, resolve_workers


@dataclass
class RunContext:
    """Seeds, workers, cache and stats shared across pipeline stages."""

    seed: int = 0
    workers: int | None = None  # None -> $REPRO_WORKERS or 1
    backend: str = "thread"
    budget: int = 3000  # BMC sample budget per obligation
    max_schedules: int | None = 500  # exploration run bound per scenario
    max_depth: int | None = None  # exploration decision bound per run
    dpor: str = "optimal"  # exploration pruning algorithm (optimal | lite)
    use_sdg: bool = True  # SDG obligation pre-pruning in the static layer
    cache: VerdictCache | None = None  # None -> process-shared cache
    cache_dir: str | None = None  # persistent store directory (None -> env/off)
    no_persist: bool = False  # force the persistent store off
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.workers = resolve_workers(self.workers)
        if self.cache is None:
            self.cache = shared_cache()

    def store(self):
        """The persistent verdict store, or None when persistence is off."""
        from repro.core.persist import open_store

        return open_store(self.cache_dir, no_persist=self.no_persist)

    def checker(self, spec) -> InterferenceChecker:
        """A fresh interference checker wired to this context."""
        return InterferenceChecker(
            spec,
            budget=self.budget,
            seed=self.seed,
            cache=self.cache,
            workers=self.workers,
            use_sdg=self.use_sdg,
        )

    def policy(self, app_ref: str | None = None) -> ParallelPolicy:
        """Obligation-dispatch policy for the static stage."""
        return ParallelPolicy(workers=self.workers, backend=self.backend, app_ref=app_ref)

    def record(self, stage: str, **payload) -> None:
        """Merge one stage's statistics into the shared sink."""
        self.stats.setdefault(stage, {}).update(payload)
