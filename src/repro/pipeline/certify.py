"""The cross-layer certification pipeline: static choice, dynamic proof.

``certify(app)`` runs the paper's two halves against each other:

1. the **static** Section 5 chooser picks the lowest level per transaction
   type whose theorem condition holds (:mod:`repro.core.chooser`);
2. the **dynamic** explorer (:mod:`repro.sched.explore`) then exhaustively
   enumerates the mixed-level schedules of each registered scenario at the
   recommended assignment, checking every completed schedule against the
   semantic criterion (:mod:`repro.sched.semantic`) with an
   :class:`~repro.sched.monitor.AssertionMonitor` attached;
3. each focus type is additionally probed **one level below** its chosen
   level — the theorems claim that level can fail, and the explorer tries
   to exhibit a schedule proving it;
4. the **static conflict graph** (:mod:`repro.core.sdg`) is reconciled as
   a third verdict source (:func:`reconcile_sdg`): its sound
   "statically safe" verdicts must never undercut the chooser (a
   disagreement breaks ``agreement`` and fails the run), and its
   dangerous structures are cross-checked against the Berenson
   phenomena the probes actually observed.

Per transaction type the two layers are reconciled into a verdict:

* ``agree`` — no violation at the chosen level, and either there is no
  level below or exploration below produced a violating schedule (the
  static choice is tight);
* ``static-too-conservative`` — no violation at the chosen level *or*
  one below: within the registered scenarios the lower level is also
  safe (the theorem condition was sufficient, not necessary);
* ``counterexample`` — exploration found a semantically incorrect
  schedule *at the chosen level*: the static claim is contradicted, and
  the report carries the replayable history;
* ``unexercised`` — no registered scenario focuses the type.

Violating schedules are rendered as history-DSL strings
(:func:`repro.sched.histories.history_string`) with their level
assignments, so ``repro replay "<history>" --levels N=LEVEL`` reproduces
the anomaly step by step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import sdg
from repro.core.application import Application
from repro.core.chooser import ApplicationReport, analyze_application
from repro.core.conditions import ANSI_LADDER, EXTENDED_LADDER, LEVEL_ORDER, SERIALIZABLE
from repro.pipeline.context import RunContext
from repro.pipeline.scenarios import Scenario, scenarios_for
from repro.sched.anomalies import SDG_ANOMALY_NAMES, detect_all
from repro.sched.explore import explore
from repro.sched.histories import history_numbering, history_string
from repro.sched.monitor import AssertionMonitor
from repro.sched.semantic import check_semantic_correctness

#: Witnesses kept per probe (the rest are counted, not stored).
WITNESS_CAP = 2

LADDERS = {"ansi": ANSI_LADDER, "extended": EXTENDED_LADDER}


@dataclass
class Witness:
    """One semantically incorrect schedule, replayably rendered."""

    scenario: str
    summary: str  # the semantic checker's violation summary
    history: str | None  # DSL line, None when inexpressible
    levels: dict = field(default_factory=dict)  # DSL txn number -> level
    script: list = field(default_factory=list)  # realised scheduling decisions
    invalidations: int = 0  # monitor events observed during the run

    def replay_command(self) -> str | None:
        if self.history is None:
            return None
        assignments = " ".join(
            f'"{number}={level}"' for number, level in sorted(self.levels.items())
        )
        command = f'repro replay "{self.history}"'
        return f"{command} --levels {assignments}" if assignments else command

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "summary": self.summary,
            "history": self.history,
            "levels": {str(k): v for k, v in sorted(self.levels.items())},
            "script": list(self.script),
            "invalidations": self.invalidations,
            "replay_command": self.replay_command(),
        }


@dataclass
class DynamicProbe:
    """One exploration of a scenario under one level assignment."""

    scenario: str
    levels: dict  # type name -> level explored
    schedules: int = 0
    violations: int = 0
    witnesses: list = field(default_factory=list)
    exploration: dict = field(default_factory=dict)  # ExplorationResult.to_dict()
    anomalies: dict = field(default_factory=dict)  # detector name -> occurrences

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "levels": dict(self.levels),
            "schedules": self.schedules,
            "violations": self.violations,
            "witnesses": [witness.to_dict() for witness in self.witnesses],
            "exploration": dict(self.exploration),
            "anomalies": dict(self.anomalies),
        }


@dataclass
class TypeVerdict:
    """Static choice vs dynamic evidence for one transaction type."""

    transaction: str
    static_level: str
    verdict: str  # agree | static-too-conservative | counterexample | unexercised
    below_level: str | None = None
    chosen_probes: list = field(default_factory=list)
    below_probes: list = field(default_factory=list)

    @property
    def chosen_violations(self) -> int:
        return sum(probe.violations for probe in self.chosen_probes)

    @property
    def below_violations(self) -> int:
        return sum(probe.violations for probe in self.below_probes)

    def witnesses(self) -> list:
        found = []
        for probe in self.chosen_probes + self.below_probes:
            found.extend(probe.witnesses)
        return found

    def to_dict(self) -> dict:
        return {
            "transaction": self.transaction,
            "static_level": self.static_level,
            "below_level": self.below_level,
            "verdict": self.verdict,
            "chosen": [probe.to_dict() for probe in self.chosen_probes],
            "below": [probe.to_dict() for probe in self.below_probes],
        }


@dataclass
class CertificateReport:
    """The unified static + dynamic certificate for one application."""

    application: str
    ladder: tuple
    static: ApplicationReport
    verdicts: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    #: the third verdict layer: per-type SDG safe levels, dangerous
    #: structures (with dynamic corroboration), and any disagreement with
    #: the prover-backed chooser (see :func:`reconcile_sdg`)
    sdg: dict = field(default_factory=dict)

    @property
    def agreement(self) -> bool:
        """No dynamic counterexample and no SDG-vs-prover disagreement."""
        return (
            all(verdict.verdict != "counterexample" for verdict in self.verdicts)
            and not self.sdg.get("disagreements")
        )

    def verdict_for(self, name: str) -> TypeVerdict:
        for verdict in self.verdicts:
            if verdict.transaction == name:
                return verdict
        raise KeyError(name)

    def render(self) -> str:
        lines = [f"Certification for application {self.application!r}:"]
        width = max((len(v.transaction) for v in self.verdicts), default=12) + 2
        for v in self.verdicts:
            chosen = f"{v.chosen_violations} violations / {sum(p.schedules for p in v.chosen_probes)} schedules"
            if v.below_level is None:
                below = "(no level below)"
            else:
                below = (
                    f"{v.below_level}: {v.below_violations} violations /"
                    f" {sum(p.schedules for p in v.below_probes)} schedules"
                )
            lines.append(
                f"  {v.transaction:{width}s} static {v.static_level:22s}"
                f" at-chosen {chosen:28s} below {below:42s} -> {v.verdict}"
            )
        replayable = [
            (v, witness)
            for v in self.verdicts
            for witness in v.witnesses()
            if witness.history is not None
        ]
        if replayable:
            lines.append("witness histories (replayable):")
            seen = set()
            for v, witness in replayable:
                command = witness.replay_command()
                if command in seen:
                    continue
                seen.add(command)
                lines.append(f"  [{v.transaction} / {witness.scenario}] {witness.summary}")
                lines.append(f"    {command}")
        if self.sdg:
            lines.append("static conflict graph (SDG):")
            for entry in self.sdg.get("types", []):
                safe = entry["safe_level"] or "(none below SERIALIZABLE)"
                lines.append(
                    f"  {entry['transaction']:{width}s} SDG-safe from {safe}"
                )
            for structure in self.sdg.get("structures", []):
                mark = "corroborated" if structure.get("corroborated") else "not observed"
                lines.append(
                    f"  dangerous: {structure['kind']}"
                    f" [{'/'.join(structure['transactions'])}]"
                    f" below {structure['level']} ({mark} by exploration)"
                )
            for disagreement in self.sdg.get("disagreements", []):
                lines.append(f"  DISAGREEMENT: {disagreement['detail']}")
        lines.append(
            "overall: "
            + (
                "static, dynamic and SDG layers agree"
                if self.agreement
                else (
                    "SDG DISAGREES with the prover-backed chooser"
                    if self.sdg.get("disagreements")
                    else "DYNAMIC COUNTEREXAMPLE to a static claim"
                )
            )
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "application": self.application,
            "ladder": list(self.ladder),
            "agreement": self.agreement,
            "static": self.static.to_dict(),
            "verdicts": [verdict.to_dict() for verdict in self.verdicts],
            "sdg": dict(self.sdg),
            "stats": dict(self.stats),
        }


def classify(chosen_violations: int, below_level: str | None, below_violations: int) -> str:
    """The reconciliation rule (see module docstring)."""
    if chosen_violations:
        return "counterexample"
    if below_level is None or below_violations:
        return "agree"
    return "static-too-conservative"


def reconcile_sdg(app: Application, assignment: dict, ladder, probes) -> dict:
    """The third verdict layer: the conflict graph vs the chooser and probes.

    Only the *sound* direction counts as a disagreement: ``statically safe
    at L`` means every obligation the theorem enumerates at ``L`` has a
    disjoint footprint, so the prover-backed chooser must land at ``L`` or
    lower — a strictly higher choice is a bug in one of the layers.
    Dangerous structures are heuristic risk flags; a structure the probes
    did not reproduce is ordinary imprecision, but one whose matching
    Berenson phenomenon (:data:`repro.sched.anomalies.SDG_ANOMALY_NAMES`)
    showed up in a probe over the same transaction types is marked
    ``corroborated``.
    """
    graph = sdg.build_graph(app)
    rungs = list(ladder)
    if rungs[-1] != SERIALIZABLE:
        rungs.append(SERIALIZABLE)
    types = []
    disagreements = []
    for name in graph.nodes:
        safe = sdg.safe_levels(graph, name, rungs)
        safe_level = safe[0] if safe else None
        types.append({"transaction": name, "safe_level": safe_level})
        chosen = assignment.get(name)
        if (
            safe_level is not None
            and chosen is not None
            and LEVEL_ORDER[chosen] > LEVEL_ORDER[safe_level]
        ):
            disagreements.append(
                {
                    "transaction": name,
                    "sdg_safe_level": safe_level,
                    "chosen_level": chosen,
                    "detail": (
                        f"SDG certifies {name} safe at {safe_level} (disjoint"
                        f" footprints throughout) but the chooser picked"
                        f" {chosen}: one layer is wrong"
                    ),
                }
            )
    structures = []
    for structure in sdg.dangerous_structures(graph):
        phenomenon = SDG_ANOMALY_NAMES.get(structure.kind)
        corroborated = any(
            set(structure.transactions) <= set(probe.levels)
            and probe.anomalies.get(phenomenon, 0) > 0
            for probe in probes
        )
        entry = structure.to_dict()
        entry["phenomenon"] = phenomenon
        entry["corroborated"] = corroborated
        structures.append(entry)
    return {
        "types": types,
        "structures": structures,
        "disagreements": disagreements,
        "edges": len(graph.edges),
    }


def level_below(level: str, ladder) -> str | None:
    """The ladder level directly under ``level``, or None at the bottom."""
    levels = list(ladder)
    if levels[-1] != SERIALIZABLE:
        levels.append(SERIALIZABLE)
    try:
        index = levels.index(level)
    except ValueError:
        return None
    return levels[index - 1] if index > 0 else None


def run_probe(scenario: Scenario, type_levels: dict, context: RunContext) -> DynamicProbe:
    """Exhaustively explore one scenario under one level assignment."""
    probe = DynamicProbe(scenario=scenario.name, levels=dict(type_levels))
    result = explore(
        scenario.initial(),
        scenario.specs(type_levels),
        retry=True,
        max_schedules=context.max_schedules,
        max_depth=context.max_depth,
        pruning=True,
        dpor=context.dpor,
        workers=context.workers,
        observer_factory=AssertionMonitor,
    )
    probe.exploration = result.to_dict()
    probe.schedules = result.schedules
    for schedule in result.results:
        for name, occurrences in detect_all(schedule).items():
            if occurrences:
                probe.anomalies[name] = probe.anomalies.get(name, 0) + len(occurrences)
        report = check_semantic_correctness(schedule, scenario.invariant, scenario.cumulative)
        if report.correct:
            continue
        probe.violations += 1
        if len(probe.witnesses) >= WITNESS_CAP:
            continue
        numbering = history_numbering(schedule.history)
        levels = {}
        for outcome in schedule.outcomes:
            for txn_id in outcome.txn_ids:
                number = numbering.get(txn_id)
                if number is not None:
                    levels[number] = outcome.level
        monitors = [obs for obs in getattr(schedule, "observers", []) or []]
        invalidations = sum(len(getattr(m, "events", ())) for m in monitors)
        probe.witnesses.append(
            Witness(
                scenario=scenario.name,
                summary=report.summary(),
                history=history_string(schedule.history),
                levels=levels,
                script=list(schedule.script or []),
                invalidations=invalidations,
            )
        )
    return probe


def certify(
    app: Application | str,
    context: RunContext | None = None,
    ladder: str | tuple = "ansi",
    scenarios: list | None = None,
    include_snapshot: bool = False,
) -> CertificateReport:
    """Run the full static → dynamic certification pipeline for ``app``."""
    if isinstance(app, str):
        from repro.apps import registry

        app = registry()[app]()
    if context is None:
        context = RunContext()
    rungs = LADDERS[ladder] if isinstance(ladder, str) else tuple(ladder)
    if scenarios is None:
        scenarios = scenarios_for(app.name)

    started = time.perf_counter()
    store = context.store()
    if store is not None:
        store.load(context.cache)
    checker = context.checker(app.spec)
    try:
        static = analyze_application(
            app,
            checker,
            ladder=rungs,
            include_snapshot=include_snapshot,
            policy=context.policy(app.name),
        )
    finally:
        if store is not None:
            store.flush(context.cache)
    context.record(
        "static",
        seconds=round(time.perf_counter() - started, 3),
        tiers=dict(checker.stats),
        cache=context.cache.stats.snapshot(),
        **({"persist": store.snapshot()} if store is not None else {}),
    )
    assignment = static.levels()

    started = time.perf_counter()
    chosen_probes = {
        scenario.name: run_probe(scenario, assignment, context) for scenario in scenarios
    }
    report = CertificateReport(
        application=app.name, ladder=rungs, static=static, stats=context.stats
    )
    all_probes = list(chosen_probes.values())
    explored_runs = sum(p.exploration.get("runs", 0) for p in chosen_probes.values())
    for txn in app.transactions:
        chosen = assignment[txn.name]
        relevant = [s for s in scenarios if txn.name in s.focus]
        if not relevant:
            report.verdicts.append(
                TypeVerdict(
                    transaction=txn.name,
                    static_level=chosen,
                    verdict="unexercised",
                    below_level=level_below(chosen, rungs),
                )
            )
            continue
        verdict = TypeVerdict(
            transaction=txn.name,
            static_level=chosen,
            verdict="",
            below_level=level_below(chosen, rungs),
            chosen_probes=[chosen_probes[s.name] for s in relevant],
        )
        if verdict.below_level is not None:
            for scenario in relevant:
                lowered = dict(assignment)
                lowered[txn.name] = verdict.below_level
                verdict.below_probes.append(run_probe(scenario, lowered, context))
                all_probes.append(verdict.below_probes[-1])
                explored_runs += verdict.below_probes[-1].exploration.get("runs", 0)
        verdict.verdict = classify(
            verdict.chosen_violations, verdict.below_level, verdict.below_violations
        )
        report.verdicts.append(verdict)
    context.record(
        "dynamic",
        seconds=round(time.perf_counter() - started, 3),
        scenarios=len(scenarios),
        runs=explored_runs,
    )
    report.sdg = reconcile_sdg(app, assignment, rungs, all_probes)
    return report
