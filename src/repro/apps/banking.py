"""The banking application of Figure 1 and Example 3.

Savings and checking balances live in the record arrays ``acct_sav`` and
``acct_ch``; the consistency conjunct ``I_bal`` requires, per account,

    acct_sav[i].bal + acct_ch[i].bal >= 0.

Four transaction types:

* ``Withdraw_sav(i, w)`` — Figure 1: read both balances, withdraw ``w``
  from savings when the combined balance covers it;
* ``Withdraw_ch(i, w)`` — the symmetric checking-account withdrawal;
* ``Deposit_sav(i, d)`` / ``Deposit_ch(i, d)`` — add ``d >= 0``.

The paper's Example 3 facts this model reproduces under Theorem 5
(SNAPSHOT):

* ``Withdraw_sav`` and ``Withdraw_ch`` exhibit *write skew*: the write step
  of one interferes with the read-step postcondition of the other, and
  their write sets are disjoint, so neither Theorem 5 condition applies;
* two ``Withdraw_sav`` instances are safe: same account ⇒ write sets
  intersect ⇒ first-committer-wins aborts one; different accounts ⇒ no
  interference;
* deposits never interfere with a withdrawal's read-step postcondition
  (the balance-sum lower bounds are monotone under deposits).
"""

from __future__ import annotations

from repro.core.application import Application
from repro.core.domains import ArrayDomain, DomainSpec
from repro.core.formula import conj, disj, eq, ge, lt
from repro.core.program import If, Read, TransactionType, Write
from repro.core.terms import Field, Local, LogicalVar, Param


def _sum_nonneg(index) -> "Formula":
    return ge(Field("acct_sav", index, "bal") + Field("acct_ch", index, "bal"), 0)


def make_withdraw(kind: str) -> TransactionType:
    """Figure 1's annotated withdrawal, parameterised by target account array.

    ``kind`` is ``"sav"`` or ``"ch"``: the array the withdrawal debits.
    """
    if kind not in ("sav", "ch"):
        raise ValueError(f"kind must be 'sav' or 'ch', not {kind!r}")
    i = Param("i")
    w = Param("w")
    sav = Field("acct_sav", i, "bal")
    ch = Field("acct_ch", i, "bal")
    target = sav if kind == "sav" else ch
    target0 = LogicalVar(f"{kind.upper()}0_INIT")
    sav_local = Local("Sav")
    ch_local = Local("Ch")
    i_bal = _sum_nonneg(i)

    # Figure 1's displayed assertion after both reads: the combined balance
    # is still at least what was observed (deposits may only increase it).
    post_reads = conj(i_bal, ge(sav + ch, sav_local + ch_local))

    body = (
        Read(sav_local, sav, post=conj(i_bal, ge(sav, sav_local)), label="read sav"),
        Read(ch_local, ch, post=post_reads, label="read ch"),
        If(
            cond=ge(sav_local + ch_local, w),
            then=(
                Write(
                    target,
                    (sav_local if kind == "sav" else ch_local) - w,
                    label=f"debit {kind}",
                ),
            ),
        ),
    )
    # Q_i: the combined balance stays consistent and the debited balance
    # reflects the withdrawal exactly when the guard admitted it.
    sav0 = LogicalVar("SAV0")
    ch0 = LogicalVar("CH0")
    result = conj(
        i_bal,
        disj(
            conj(ge(sav0 + ch0, w), eq(target, target0 - w)),
            conj(lt(sav0 + ch0, w), eq(target, target0)),
        ),
    )
    return TransactionType(
        name=f"Withdraw_{kind}",
        params=(i, w),
        body=body,
        consistency=i_bal,
        param_pre=ge(w, 0),
        result=result,
        snapshot=((sav0, sav), (ch0, ch), (target0, target)),
    )


def make_deposit(kind: str) -> TransactionType:
    """A deposit of ``d >= 0`` into the savings or checking balance."""
    if kind not in ("sav", "ch"):
        raise ValueError(f"kind must be 'sav' or 'ch', not {kind!r}")
    i = Param("i")
    d = Param("d")
    array = "acct_sav" if kind == "sav" else "acct_ch"
    balance = Field(array, i, "bal")
    bal_local = Local("Bal")
    bal0 = LogicalVar("BAL0")
    i_bal = _sum_nonneg(i)
    body = (
        Read(bal_local, balance, post=conj(i_bal, ge(balance, bal_local)), label="read balance"),
        Write(balance, bal_local + d, label="credit"),
    )
    return TransactionType(
        name=f"Deposit_{kind}",
        params=(i, d),
        body=body,
        consistency=i_bal,
        param_pre=ge(d, 0),
        result=conj(i_bal, ge(balance, bal0 + d)),
        snapshot=((bal0, balance),),
    )


WITHDRAW_SAV = make_withdraw("sav")
WITHDRAW_CH = make_withdraw("ch")
DEPOSIT_SAV = make_deposit("sav")
DEPOSIT_CH = make_deposit("ch")


def domain_spec(accounts: int = 2, max_balance: int = 2) -> DomainSpec:
    """Small exhaustive domains for bounded model checking."""
    balances = tuple(range(-1, max_balance + 1))
    indices = tuple(range(accounts))

    def consistent(state) -> bool:
        return all(
            state.read_field("acct_sav", index, "bal")
            + state.read_field("acct_ch", index, "bal")
            >= 0
            for index in indices
        )

    return DomainSpec(
        arrays=(
            ArrayDomain("acct_sav", indices, (("bal", balances),)),
            ArrayDomain("acct_ch", indices, (("bal", balances),)),
        ),
        var_domains={"i": indices, "w": (0, 1, 2), "d": (0, 1, 2)},
        state_constraint=consistent,
    )


def make_application(accounts: int = 2) -> Application:
    """The Example 3 application: two withdrawals and two deposits."""
    return Application(
        name="banking",
        transactions=(WITHDRAW_SAV, WITHDRAW_CH, DEPOSIT_SAV, DEPOSIT_CH),
        spec=domain_spec(accounts=accounts),
        description="Figure 1 / Example 3: savings-checking write skew",
    )
