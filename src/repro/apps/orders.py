"""The Section 6 ordering application (Figures 2–5).

Schema:

* ``ORDERS(order_info, cust_name, deliv_date, done)`` — one row per order;
* ``CUST(cust_name, address, num_orders)`` — one row per customer;
* ``maximum_date`` — the MAXDATE single-row table, modeled as a scalar item
  (semantically identical: one row, one attribute).

Business rules (conjuncts of ``I``):

* **no gaps** — there is at least one order to be delivered on each date up
  to the delivery date of the last outstanding order.  Note the rule is
  *order-relative* (it constrains the dates present in ORDERS); ``I_max``
  separately ties ``maximum_date`` to the latest order date;
* **one order per day** — the variant rule: *exactly* one order per date;
* **order consistency** — ``#orders`` in each CUST row equals the number of
  ORDERS rows for that customer, and every order's customer exists in CUST.

Transaction types and the paper's verdicts this model reproduces:

* ``Mailing_List`` (Figure 2) — weak spec: no critical assertion depends on
  the database, so READ UNCOMMITTED suffices.  The strengthened spec
  ("every printed label refers to a customer") is invalidated by a
  ``New_Order`` rollback deleting a dirty-read CUST row, so it needs READ
  COMMITTED.
* ``New_Order`` (Figure 3) — under *no gaps*: fails READ UNCOMMITTED (the
  rollback of another New_Order restores ``maximum_date`` below the value
  this transaction read), passes READ COMMITTED.  Under *one order per
  day*: the read of ``maximum_date`` must be annotated with the strong
  ``maxdate = maximum_date`` (weaker forms cannot justify the INSERT), the
  strong form is interfered with by any other New_Order — so plain READ
  COMMITTED fails — but the read is followed by a write of the same item,
  so first-committer-wins protects it: READ COMMITTED FCW suffices.
* ``Delivery`` (Figure 4) — its SELECT's postcondition is interfered with
  by another Delivery, so READ COMMITTED fails; at REPEATABLE READ the
  interfering UPDATE's predicate intersects the SELECT's predicate and is
  blocked by the long tuple read locks (Theorem 6 condition 2), so
  REPEATABLE READ suffices.
* ``Audit`` (Figure 5) — both SELECT postconditions are interfered with by
  a phantom ``New_Order`` INSERT, which tuple locks cannot block, so
  SERIALIZABLE is required.

The paper implicitly assumes concurrent ``New_Order`` instances are placed
by different customers (otherwise two first-orders for the same new
customer race their CUST insert even at SERIALIZABLE-less levels); the
application records that as an explicit concurrency assumption.
"""

from __future__ import annotations

from repro.core.application import Application
from repro.core.domains import DomainSpec, ItemDomain, TableDomain
from repro.core.formula import (
    AbstractPred,
    BoolAtom,
    BoundVar,
    CountWhere,
    ExistsRow,
    ForAllInts,
    ForAllRows,
    RowAttr,
    TRUE,
    conj,
    eq,
    ge,
    implies,
    le,
    ne,
)
from repro.core.program import (
    ForEach,
    If,
    Insert,
    Read,
    Select,
    SelectCount,
    SelectScalar,
    TransactionType,
    Update,
    Write,
)
from repro.core.resources import TableResource
from repro.core.state import DbState
from repro.core.terms import BoolConst, IntConst, Item, Local, LogicalVar, Param

MAXDATE = Item("maximum_date")

# ---------------------------------------------------------------------------
# integrity-constraint conjuncts
# ---------------------------------------------------------------------------

#: no gaps: for every order, every earlier date (from 1) also has an order.
NO_GAP = ForAllRows(
    "ORDERS",
    "g1",
    ForAllInts(
        "d",
        IntConst(1),
        RowAttr("g1", "deliv_date"),
        ExistsRow("ORDERS", "g2", eq(RowAttr("g2", "deliv_date"), BoundVar("d"))),
    ),
)

#: one order per day: every date up to any order's date has exactly one order.
ONE_ORDER_PER_DAY = ForAllRows(
    "ORDERS",
    "g1",
    ForAllInts(
        "d",
        IntConst(1),
        RowAttr("g1", "deliv_date"),
        eq(CountWhere("ORDERS", "g2", eq(RowAttr("g2", "deliv_date"), BoundVar("d"))), 1),
    ),
)

#: I_max, upper-bound form: maximum_date bounds every delivery date.
I_MAX_LE = ForAllRows("ORDERS", "m1", le(RowAttr("m1", "deliv_date"), MAXDATE))

#: I_max, exact form: maximum_date is reached by some order when any exist.
I_MAX_EXACT = conj(
    I_MAX_LE,
    implies(
        ExistsRow("ORDERS", "m2", TRUE),
        ExistsRow("ORDERS", "m3", eq(RowAttr("m3", "deliv_date"), MAXDATE)),
    ),
    implies(ge(MAXDATE, 1), ExistsRow("ORDERS", "m4", eq(RowAttr("m4", "deliv_date"), MAXDATE))),
)

#: order consistency: per-customer counts agree and customers exist.
ORDER_CONSISTENCY = conj(
    ForAllRows(
        "CUST",
        "c",
        eq(
            RowAttr("c", "num_orders"),
            CountWhere("ORDERS", "o", eq(RowAttr("o", "cust_name"), RowAttr("c", "cust_name"))),
        ),
    ),
    ForAllRows(
        "ORDERS",
        "o2",
        ExistsRow("CUST", "c2", eq(RowAttr("c2", "cust_name"), RowAttr("o2", "cust_name"))),
    ),
    # customer names are unique (CUST's primary key)
    ForAllRows(
        "CUST",
        "c3",
        eq(CountWhere("CUST", "c4", eq(RowAttr("c4", "cust_name"), RowAttr("c3", "cust_name"))), 1),
    ),
    # CUST rows exist only for customers with at least one order — the
    # implicit invariant behind Figure 3's "custcount = 0 ⇒ customer is
    # new" branch logic
    ForAllRows("CUST", "c5", ge(RowAttr("c5", "num_orders"), 1)),
)


def invariant(rule: str):
    """The full consistency constraint for the chosen business rule."""
    gap_rule = NO_GAP if rule == "no_gap" else ONE_ORDER_PER_DAY
    return conj(gap_rule, ORDER_CONSISTENCY, I_MAX_EXACT)


# ---------------------------------------------------------------------------
# transaction types
# ---------------------------------------------------------------------------


def make_mailing_list(strengthened: bool = False) -> TransactionType:
    """Figure 2: print a mailing label for every customer."""
    buff = Local("labels", "str")
    select = Select("CUST", buff, attrs=("cust_name", "address"), row="c")

    if not strengthened:
        # Weak spec: every label has a name and an address — a property of
        # the returned data alone, independent of the database state.
        post = AbstractPred(
            name="labels have names and addresses",
            reads=frozenset(),
            evaluator=lambda state, env: all(
                "cust_name" in dict(row) and "address" in dict(row)
                for row in env.get(buff, ())
            ),
        )
        result = AbstractPred(
            name="labels have been printed", reads=frozenset(), evaluator=lambda s, e: True
        )
    else:
        # Strengthened spec: every printed label refers to a (still
        # existing) customer — this *does* read the database.
        def labels_refer_to_customers(state: DbState, env) -> bool:
            customers = {row.get("cust_name") for row in state.rows("CUST")}
            return all(dict(row).get("cust_name") in customers for row in env.get(buff, ()))

        post = AbstractPred(
            name="labels refer to customers",
            reads=frozenset({TableResource("CUST"), TableResource("CUST", "cust_name")}),
            evaluator=labels_refer_to_customers,
        )
        result = post

    select_annotated = Select(
        "CUST", buff, attrs=("cust_name", "address"), row="c", post=post
    )
    return TransactionType(
        name="Mailing_List" + ("_strengthened" if strengthened else ""),
        params=(),
        body=(select_annotated,),
        consistency=TRUE,
        result=result,
    )


def make_new_order(rule: str = "no_gap") -> TransactionType:
    """Figure 3: enter a new order, maintaining the delivery-date rule.

    ``rule`` selects the business rule and with it the strength of the
    read annotation (the crux of the paper's RC vs RC-FCW discussion).
    """
    customer = Param("customer", "str")
    address = Param("address", "str")
    order_info = Param("order_info")
    maxdate = Local("maxdate")
    custcount = Local("custcount")

    gap_rule = NO_GAP if rule == "no_gap" else ONE_ORDER_PER_DAY
    if rule == "no_gap":
        # the weak bound suffices to justify inserting at maxdate + 1
        maxdate_link = le(maxdate, MAXDATE)
        date_bound = I_MAX_LE
    else:
        # exactly-one-per-day can only be preserved if no other order can
        # land on maxdate + 1: the read needs the strong, equality form
        maxdate_link = eq(maxdate, MAXDATE)
        date_bound = ForAllRows("ORDERS", "b1", le(RowAttr("b1", "deliv_date"), maxdate))

    read_maxdate = Read(
        maxdate,
        MAXDATE,
        post=conj(gap_rule, ORDER_CONSISTENCY, maxdate_link, date_bound),
        label="read maximum_date",
    )
    bump = Write(MAXDATE, maxdate + 1, label="bump maximum_date")
    count_orders = SelectCount(
        "ORDERS",
        custcount,
        where=eq(RowAttr("r", "cust_name"), customer),
        post=conj(
            eq(
                custcount,
                CountWhere("ORDERS", "o", eq(RowAttr("o", "cust_name"), customer)),
            ),
        ),
        label="count customer's orders",
    )
    upsert_customer = If(
        cond=eq(custcount, 0),
        then=(
            Insert(
                "CUST",
                values=(
                    ("cust_name", customer),
                    ("address", address),
                    ("num_orders", IntConst(1)),
                ),
                label="insert new customer",
            ),
        ),
        orelse=(
            Update(
                "CUST",
                sets=(("num_orders", custcount + 1),),
                where=eq(RowAttr("r", "cust_name"), customer),
                label="bump customer's order count",
            ),
        ),
    )
    insert_order = Insert(
        "ORDERS",
        values=(
            ("order_info", order_info),
            ("cust_name", customer),
            ("deliv_date", maxdate + 1),
            ("done", False),
        ),
        label="insert order",
    )
    result = conj(
        gap_rule,
        ORDER_CONSISTENCY,
        I_MAX_LE,
        ExistsRow("ORDERS", "q1", eq(RowAttr("q1", "order_info"), order_info)),
        ExistsRow("CUST", "q2", eq(RowAttr("q2", "cust_name", "str"), customer)),
    )
    return TransactionType(
        name="New_Order",
        params=(customer, address, order_info),
        body=(read_maxdate, bump, count_orders, upsert_customer, insert_order),
        consistency=conj(gap_rule, ORDER_CONSISTENCY, I_MAX_EXACT),
        result=result,
    )


def make_delivery() -> TransactionType:
    """Figure 4: mark all of today's outstanding orders delivered."""
    today = Param("today")
    buff = Local("buff", "str")
    ord_inf = Local("ord_inf")
    due_today = conj(
        eq(RowAttr("r", "deliv_date"), today),
        eq(RowAttr("r", "done", "bool"), False),
    )
    select = Select("ORDERS", buff, where=due_today, attrs=("order_info",), row="r",
                    label="select today's undelivered orders")
    loop = ForEach(
        buffer=buff,
        bind=(("order_info", ord_inf),),
        body=(
            Update(
                "ORDERS",
                sets=(("done", BoolConst(True)),),
                where=eq(RowAttr("r", "order_info"), ord_inf),
                label="mark delivered",
            ),
        ),
    )
    # Q_i: every order due today is marked done.
    result = ForAllRows(
        "ORDERS",
        "q",
        implies(
            eq(RowAttr("q", "deliv_date"), today),
            eq(RowAttr("q", "done", "bool"), True),
        ),
    )
    return TransactionType(
        name="Delivery",
        params=(today,),
        body=(select, loop),
        # the delivery date being serviced never exceeds the outstanding
        # maximum (one cannot deliver orders that have not been placed)
        consistency=conj(le(today, MAXDATE), ge(today, 1)),
        result=result,
    )


def make_audit() -> TransactionType:
    """Figure 5: check order consistency for one customer."""
    customer = Param("customer", "str")
    count1 = Local("count1")
    count2 = Local("count2")
    retv = Local("retv", "bool")
    count_orders = SelectCount(
        "ORDERS",
        count1,
        where=eq(RowAttr("r", "cust_name"), customer),
        label="count orders",
    )
    read_declared = SelectScalar(
        "CUST",
        "num_orders",
        count2,
        where=eq(RowAttr("r", "cust_name"), customer),
        default=0,
        label="read declared count",
    )
    # Figure 5's final ``retv := (count1 == count2)`` is pure workspace
    # computation; its semantic content is carried by the result assertion.
    def result_matches(state: DbState, env) -> bool:
        return env.get(count1) == env.get(count2)

    result = AbstractPred(
        name="retv = order_consistency for customer",
        reads=frozenset(
            {
                TableResource("ORDERS"),
                TableResource("ORDERS", "cust_name"),
                TableResource("CUST"),
                TableResource("CUST", "num_orders"),
                TableResource("CUST", "cust_name"),
            }
        ),
        evaluator=result_matches,
    )
    return TransactionType(
        name="Audit",
        params=(customer,),
        body=(count_orders, read_declared),
        consistency=ORDER_CONSISTENCY,
        result=result,
    )


# ---------------------------------------------------------------------------
# domains and application factories
# ---------------------------------------------------------------------------


def domain_spec(rule: str = "no_gap", budget_friendly: bool = True) -> DomainSpec:
    """Small domains for the order application's bounded model checking."""
    dates = (1, 2)
    customers = ("a", "b")

    def consistent(state: DbState) -> bool:
        try:
            return invariant(rule).evaluate(state, {})
        except Exception:
            return False

    return DomainSpec(
        items=(ItemDomain("maximum_date", (0, 1, 2)),),
        tables=(
            TableDomain(
                "ORDERS",
                attrs=(
                    ("order_info", (1, 2)),
                    ("cust_name", customers),
                    ("deliv_date", dates),
                    ("done", (False, True)),
                ),
                max_rows=2,
            ),
            TableDomain(
                "CUST",
                attrs=(
                    ("cust_name", customers),
                    ("address", ("x",)),
                    ("num_orders", (0, 1, 2)),
                ),
                max_rows=2,
            ),
        ),
        var_domains={
            "customer": customers,
            "address": ("x",),
            "order_info": (3, 4),
            "today": (1, 2),
        },
        state_constraint=consistent,
    )


def make_application(rule: str = "no_gap", strengthened_mailing: bool = False) -> Application:
    """The Section 6 application under the chosen business rule."""
    new_order = make_new_order(rule)
    transactions = (
        make_mailing_list(strengthened_mailing),
        new_order,
        make_delivery(),
        make_audit(),
    )
    mailing_name = transactions[0].name
    assumptions = {}
    distinct_customers = ne(Param("customer", "str"), Param("customer!2", "str"))
    assumptions[("New_Order", "New_Order")] = distinct_customers
    return Application(
        name=f"orders[{rule}]",
        transactions=transactions,
        spec=domain_spec(rule),
        invariant=invariant(rule),
        description="Section 6 ordering application (Figures 2-5)",
        assumptions=assumptions,
    )
