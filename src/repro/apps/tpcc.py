"""TPC-C-lite: the paper's stated future work (Section 7).

The paper closes by planning to "analyze the TPC-C benchmark transactions
and run them at a combination of isolation levels to evaluate the
performance".  This module provides a laptop-scale TPC-C: the five
canonical transaction types over a reduced schema, annotated for the
static analyzer and runnable on the engine for the performance study
(benchmark E8).

Schema (conventional arrays + one relational table):

* ``district[d]``: ``next_o_id`` (order-number counter), ``ytd``;
* ``warehouse[0]``: ``ytd``;
* ``customer[c]``: ``balance``, ``ytd_payment``;
* ``stock[s]``: ``quantity``;
* ``ORDERS(o_id, d_id, c_id, item, qty, delivered)``.

Transaction types and the level assignment the analysis produces:

* ``NewOrder`` — reads and bumps ``district.next_o_id`` (read followed by
  a write of the same item: first-committer-wins protects it), decrements
  stock with restock, inserts the order;
* ``Payment`` — read-modify-write on warehouse/district/customer values,
  every read followed by a write of the same item;
* ``OrderStatus`` — read-only, weak spec (report whatever is committed);
* ``Delivery`` — SELECT undelivered orders for a district, mark them
  delivered and credit the customers;
* ``StockLevel`` — read-only count of low-stock items, weak spec.
"""

from __future__ import annotations

from repro.core.application import Application
from repro.core.domains import ArrayDomain, DomainSpec, ItemDomain, TableDomain
from repro.core.formula import (
    AbstractPred,
    CountWhere,
    ExistsRow,
    ForAllRows,
    RowAttr,
    TRUE,
    conj,
    eq,
    ge,
    le,
    lt,
    ne,
)
from repro.core.program import (
    ForEach,
    If,
    Insert,
    LocalAssign,
    Read,
    Select,
    SelectCount,
    TransactionType,
    Update,
    Write,
)
from repro.core.terms import BoolConst, Field, IntConst, Local, LogicalVar, Param

#: reduced sizes for the bounded model and quick simulations
DISTRICTS = 2
CUSTOMERS = 2
ITEMS = 2

#: stock is restocked by this amount when it would fall below zero
RESTOCK = 10


def _stock_nonneg(item) -> "Formula":
    return ge(Field("stock", item, "quantity"), 0)


def _next_oid_bound(district) -> "Formula":
    """Every existing order of the district numbers below ``next_o_id``."""
    return ForAllRows(
        "ORDERS",
        "n1",
        lt(RowAttr("n1", "o_id"), Field("district", district, "next_o_id")),
        where=eq(RowAttr("n1", "d_id"), district),
    )


def make_new_order() -> TransactionType:
    """Place one order: bump the district counter, take stock, insert."""
    d = Param("d")
    c = Param("c")
    item = Param("item")
    qty = Param("qty")
    o = Local("o")
    q = Local("q")
    next_oid = Field("district", d, "next_o_id")
    stock_q = Field("stock", item, "quantity")
    body = (
        Read(
            o,
            next_oid,
            post=conj(eq(o, next_oid), _next_oid_bound(d)),
            label="read next_o_id",
        ),
        Write(next_oid, o + 1, label="bump next_o_id"),
        Read(q, stock_q, post=conj(_stock_nonneg(item), eq(q, stock_q)), label="read stock"),
        If(
            cond=ge(q - qty, 0),
            then=(Write(stock_q, q - qty, label="take stock"),),
            orelse=(Write(stock_q, q - qty + RESTOCK, label="take stock with restock"),),
        ),
        Insert(
            "ORDERS",
            values=(
                ("o_id", o),
                ("d_id", d),
                ("c_id", c),
                ("item", item),
                ("qty", qty),
                ("delivered", False),
            ),
            label="insert order",
        ),
    )
    result = conj(
        _stock_nonneg(item),
        _next_oid_bound(d),
        ExistsRow(
            "ORDERS",
            "q1",
            conj(eq(RowAttr("q1", "o_id"), o), eq(RowAttr("q1", "d_id"), d)),
        ),
    )
    return TransactionType(
        name="TPCC_NewOrder",
        params=(d, c, item, qty),
        body=body,
        consistency=conj(_stock_nonneg(item), _next_oid_bound(d)),
        param_pre=conj(ge(qty, 1), le(qty, 3)),
        result=result,
    )


def make_payment() -> TransactionType:
    """Record a customer payment against warehouse/district/customer."""
    c = Param("c")
    d = Param("d")
    amount = Param("amount")
    bal = Local("Bal")
    wytd = Local("Wytd")
    dytd = Local("Dytd")
    bal0 = LogicalVar("BAL0")
    balance = Field("customer", c, "balance")
    w_ytd = Field("warehouse", IntConst(0), "ytd")
    d_ytd = Field("district", d, "ytd")
    body = (
        Read(wytd, w_ytd, post=eq(wytd, w_ytd), label="read warehouse ytd"),
        Write(w_ytd, wytd + amount, label="bump warehouse ytd"),
        Read(dytd, d_ytd, post=eq(dytd, d_ytd), label="read district ytd"),
        Write(d_ytd, dytd + amount, label="bump district ytd"),
        Read(bal, balance, post=eq(bal, balance), label="read balance"),
        Write(balance, bal - amount, label="debit balance"),
    )
    return TransactionType(
        name="TPCC_Payment",
        params=(c, d, amount),
        body=body,
        consistency=TRUE,
        param_pre=ge(amount, 0),
        result=eq(balance, bal0 - amount),
        snapshot=((bal0, balance),),
    )


def make_order_status() -> TransactionType:
    """Read-only status report for one customer (weak spec)."""
    c = Param("c")
    bal = Local("Bal")
    buff = Local("orders", "str")
    reported = AbstractPred(
        name="status reported from committed data",
        reads=frozenset(),
        evaluator=lambda state, env: True,
    )
    body = (
        Read(bal, Field("customer", c, "balance"), post=reported, label="read balance"),
        Select(
            "ORDERS",
            buff,
            where=eq(RowAttr("r", "c_id"), c),
            attrs=("o_id", "delivered"),
            post=reported,
            label="list orders",
        ),
    )
    return TransactionType(
        name="TPCC_OrderStatus",
        params=(c,),
        body=body,
        consistency=TRUE,
        result=reported,
    )


def make_delivery() -> TransactionType:
    """Deliver a district's outstanding orders, crediting each customer."""
    d = Param("d")
    buff = Local("batch", "str")
    oid = Local("oid")
    undelivered = conj(
        eq(RowAttr("r", "d_id"), d),
        eq(RowAttr("r", "delivered", "bool"), False),
    )
    body = (
        Select(
            "ORDERS",
            buff,
            where=undelivered,
            attrs=("o_id",),
            row="r",
            label="pick undelivered orders",
        ),
        ForEach(
            buffer=buff,
            bind=(("o_id", oid),),
            body=(
                Update(
                    "ORDERS",
                    sets=(("delivered", BoolConst(True)),),
                    where=conj(eq(RowAttr("r", "o_id"), oid), eq(RowAttr("r", "d_id"), d)),
                    label="mark delivered",
                ),
            ),
        ),
    )
    result = ForAllRows(
        "ORDERS",
        "q",
        eq(RowAttr("q", "delivered", "bool"), True),
        where=eq(RowAttr("q", "d_id"), d),
    )
    return TransactionType(
        name="TPCC_Delivery",
        params=(d,),
        body=body,
        consistency=TRUE,
        result=result,
    )


def make_stock_level() -> TransactionType:
    """Count low-stock items (read-only, weak spec)."""
    threshold = Param("threshold")
    low0 = Local("low0")
    low1 = Local("low1")
    count = Local("low_count")
    reported = AbstractPred(
        name="stock level reported", reads=frozenset(), evaluator=lambda s, e: True
    )
    body = (
        Read(low0, Field("stock", IntConst(0), "quantity"), post=reported, label="probe stock 0"),
        Read(low1, Field("stock", IntConst(1), "quantity"), post=reported, label="probe stock 1"),
        LocalAssign(count, IntConst(0)),
    )
    return TransactionType(
        name="TPCC_StockLevel",
        params=(threshold,),
        body=body,
        consistency=TRUE,
        param_pre=ge(threshold, 0),
        result=reported,
    )


NEW_ORDER = make_new_order()
PAYMENT = make_payment()
ORDER_STATUS = make_order_status()
DELIVERY = make_delivery()
STOCK_LEVEL = make_stock_level()

ALL_TYPES = (NEW_ORDER, PAYMENT, ORDER_STATUS, DELIVERY, STOCK_LEVEL)

#: the canonical TPC-C mix (approximate weights)
STANDARD_MIX = {
    "TPCC_NewOrder": 0.45,
    "TPCC_Payment": 0.43,
    "TPCC_OrderStatus": 0.04,
    "TPCC_Delivery": 0.04,
    "TPCC_StockLevel": 0.04,
}


def domain_spec() -> DomainSpec:
    def consistent(state) -> bool:
        for item in range(ITEMS):
            if state.read_field("stock", item, "quantity") < 0:
                return False
        for district in range(DISTRICTS):
            bound = state.read_field("district", district, "next_o_id")
            for row in state.rows("ORDERS"):
                if row.get("d_id") == district and row.get("o_id") >= bound:
                    return False
        return True

    return DomainSpec(
        arrays=(
            ArrayDomain("district", tuple(range(DISTRICTS)), (("next_o_id", (1, 2)), ("ytd", (0, 1)))),
            ArrayDomain("warehouse", (0,), (("ytd", (0, 1)),)),
            ArrayDomain("customer", tuple(range(CUSTOMERS)), (("balance", (0, 1)), ("ytd_payment", (0,)))),
            ArrayDomain("stock", tuple(range(ITEMS)), (("quantity", (0, 1, 2)),)),
        ),
        tables=(
            TableDomain(
                "ORDERS",
                attrs=(
                    ("o_id", (1,)),
                    ("d_id", tuple(range(DISTRICTS))),
                    ("c_id", (0,)),
                    ("item", (0,)),
                    ("qty", (1,)),
                    ("delivered", (False, True)),
                ),
                max_rows=1,
            ),
        ),
        var_domains={
            "d": tuple(range(DISTRICTS)),
            "c": tuple(range(CUSTOMERS)),
            "item": tuple(range(ITEMS)),
            "qty": (1, 2),
            "amount": (0, 1),
            "threshold": (1,),
        },
        state_constraint=consistent,
    )


def initial_state(scale: int = 1):
    """A populated TPC-C-lite database for simulation runs."""
    from repro.core.state import DbState

    districts = DISTRICTS * scale
    customers = CUSTOMERS * scale
    items = ITEMS * scale
    return DbState(
        items={},
        arrays={
            "district": {d: {"next_o_id": 1, "ytd": 0} for d in range(districts)},
            "warehouse": {0: {"ytd": 0}},
            "customer": {c: {"balance": 10, "ytd_payment": 0} for c in range(customers)},
            "stock": {s: {"quantity": 20} for s in range(items)},
        },
        tables={"ORDERS": []},
    )


def make_application() -> Application:
    distinct_district = ne(Param("d"), Param("d!2"))
    return Application(
        name="tpcc-lite",
        transactions=ALL_TYPES,
        spec=domain_spec(),
        description="TPC-C-lite (paper Section 7 future work)",
        assumptions={
            # concurrent NewOrders hit different districts (terminals are
            # bound to districts in TPC-C); same for Delivery
            ("TPCC_NewOrder", "TPCC_NewOrder"): distinct_district,
            ("TPCC_Delivery", "TPCC_Delivery"): distinct_district,
        },
    )
