"""Example 1: the ``cust`` array in the conventional model.

The elements of the record array ``cust`` describe a merchant's customers;
the integrity constraint ``I_c`` asserts exactly that (an abstract fact
with no arithmetic content).  Two transaction types access the array:

* ``Mailing_List_c`` scans the array and prints a label per valid record.
  Its specification requires only that each printed label contains a valid
  name and address — a property of the printed data, not of the database —
  so no critical assertion is interfered with by any write (including the
  record-removal performed by a ``New_Order_c`` rollback) and the
  transaction runs correctly at READ UNCOMMITTED (Theorem 1).
* ``New_Order_c(slot, name)`` enters a new customer record into a free
  slot (conventional model: records are never physically inserted or
  deleted, so occupancy is a ``valid`` flag).

This is the paper's one *positive* READ UNCOMMITTED example; the
strengthened specification that breaks it lives in the relational orders
application (:mod:`repro.apps.orders`).
"""

from __future__ import annotations

from repro.core.application import Application
from repro.core.domains import ArrayDomain, DomainSpec
from repro.core.formula import AbstractPred, BoolAtom, TRUE, conj, eq, lt, ne
from repro.core.program import If, LocalAssign, Read, ReadRecord, TransactionType, While, Write
from repro.core.terms import BoolConst, Field, IntConst, Local, Param

#: Number of slots in the customer array for the bounded model.
SLOTS = 2


def make_mailing_list() -> TransactionType:
    """Scan the array, printing a label for each valid record."""
    k = Local("k")
    valid = Local("valid", "bool")
    name = Local("name", "str")

    # "each printed label contains a valid name and address" — the weak
    # spec constrains the output only, hence the empty read footprint.
    labels_ok = AbstractPred(
        name="printed labels contain names and addresses",
        reads=frozenset(),
        evaluator=lambda state, env: True,
    )
    body = (
        LocalAssign(k, IntConst(0)),
        While(
            cond=lt(k, SLOTS),
            body=(
                ReadRecord(
                    array="cust",
                    index=k,
                    binds=(("valid", valid), ("name", name)),
                    post=labels_ok,
                    label="read customer record",
                ),
                LocalAssign(k, k + 1),
            ),
        ),
    )
    return TransactionType(
        name="Mailing_List_c",
        params=(),
        body=body,
        consistency=TRUE,
        result=labels_ok,
    )


def make_new_order() -> TransactionType:
    """Register a new customer in a given free slot."""
    slot = Param("slot")
    name = Param("name", "str")
    occupied = Local("occupied", "bool")
    body = (
        Read(occupied, Field("cust", slot, "valid", "bool"), label="check slot"),
        If(
            cond=eq(occupied, False),
            then=(
                Write(Field("cust", slot, "name", "str"), name, label="store name"),
                Write(Field("cust", slot, "valid", "bool"), BoolConst(True), label="mark valid"),
            ),
        ),
    )
    return TransactionType(
        name="New_Order_c",
        params=(slot, name),
        body=body,
        consistency=TRUE,
        result=TRUE,
    )


MAILING_LIST = make_mailing_list()
NEW_ORDER = make_new_order()


def domain_spec() -> DomainSpec:
    return DomainSpec(
        arrays=(
            ArrayDomain(
                "cust",
                indices=tuple(range(SLOTS)),
                attrs=(("valid", (False, True)), ("name", ("a", "b"))),
            ),
        ),
        var_domains={"slot": tuple(range(SLOTS)), "name": ("a", "b")},
    )


def make_application() -> Application:
    return Application(
        name="customers",
        transactions=(MAILING_LIST, NEW_ORDER),
        spec=domain_spec(),
        description="Example 1: mailing labels over the cust array",
    )
