"""The paper's example applications, modeled for analysis and simulation.

* :mod:`repro.apps.banking` — Figure 1 / Example 3 (savings/checking
  withdrawals, write skew under SNAPSHOT);
* :mod:`repro.apps.customers` — Example 1 (``cust`` array, Mailing_List /
  New_Order in the conventional model);
* :mod:`repro.apps.employees` — Example 2 (``emp`` array, Hours /
  Print_Records);
* :mod:`repro.apps.orders` — Section 6 / Figures 2–5 (ORDERS / CUST /
  MAXDATE, the four-transaction ordering application);
* :mod:`repro.apps.tpcc` — TPC-C-lite, the paper's stated future work.

:func:`registry` maps short names to application factories.  It is the
addressing scheme of the process-parallel backend: applications embed
closures (abstract-predicate evaluators, domain constraints) that cannot
cross a process boundary, so workers receive a registry name and rebuild
the application on their side.
"""

from __future__ import annotations


def registry() -> dict:
    """Short name -> zero-argument application factory, for CLI and workers."""
    from repro.apps import banking, customers, employees, orders, tpcc

    return {
        "banking": banking.make_application,
        "customers": customers.make_application,
        "employees": employees.make_application,
        "orders": lambda: orders.make_application("no_gap"),
        "orders-strict": lambda: orders.make_application("one_order"),
        "tpcc": tpcc.make_application,
    }
