"""The paper's example applications, modeled for analysis and simulation.

* :mod:`repro.apps.banking` — Figure 1 / Example 3 (savings/checking
  withdrawals, write skew under SNAPSHOT);
* :mod:`repro.apps.customers` — Example 1 (``cust`` array, Mailing_List /
  New_Order in the conventional model);
* :mod:`repro.apps.employees` — Example 2 (``emp`` array, Hours /
  Print_Records);
* :mod:`repro.apps.orders` — Section 6 / Figures 2–5 (ORDERS / CUST /
  MAXDATE, the four-transaction ordering application);
* :mod:`repro.apps.tpcc` — TPC-C-lite, the paper's stated future work.
"""
