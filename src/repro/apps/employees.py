"""Example 2: the ``emp`` array, ``Hours`` and ``Print_Record``.

Each record of ``emp`` holds an employee's hourly ``rate``, hours worked
``num_hrs`` and accumulated salary ``sal``; the consistency conjunct
``I_sal`` requires, per record,

    emp[i].rate * emp[i].num_hrs = emp[i].sal.

Locking granularity is *records* (paper: "The granularity of locking is at
the level of records"), so ``Print_Record`` reads the whole record with a
single :class:`repro.core.program.ReadRecord`.

* ``Hours(i, h)`` records a day's hours with **two separate writes**
  (increment ``num_hrs``, then recompute ``sal``) — together they preserve
  ``I_sal``, individually they do not.
* ``Print_Record(i)`` prints one employee's record; its specification
  requires the printed snapshot to be *internally consistent*.

Paper facts reproduced:

* at READ UNCOMMITTED both types fail: ``Hours``' individual writes
  interfere with ``I_sal`` (a reader can see the half-updated record, and
  a rollback can strand it);
* at READ COMMITTED both succeed: ``Hours`` is seen as an atomic unit
  (Theorem 2), and the record-granularity read makes ``Print_Record``'s
  snapshot consistency a workspace-only fact that nothing can invalidate;
* the long read locks of REPEATABLE READ are therefore unnecessary for
  ``Print_Record`` — the point of the example.

Like the paper, we assume two ``Hours`` instances never target the same
employee concurrently (hours are recorded once per employee per day);
without that assumption the canonical read postcondition of ``Hours`` is
invalidated by its twin and the chooser escalates to REPEATABLE READ.
"""

from __future__ import annotations

from repro.core.application import Application
from repro.core.domains import ArrayDomain, DomainSpec
from repro.core.formula import conj, eq, ge, ne
from repro.core.program import Read, ReadRecord, TransactionType, Write
from repro.core.terms import Field, Local, LogicalVar, Mul, Param


def _i_sal(index) -> "Formula":
    rate = Field("emp", index, "rate")
    num_hrs = Field("emp", index, "num_hrs")
    sal = Field("emp", index, "sal")
    return eq(Mul(rate, num_hrs), sal)


def make_hours() -> TransactionType:
    """Record ``h`` hours for employee ``i`` (two separate writes)."""
    i = Param("i")
    h = Param("h")
    rate = Local("R")
    hrs = Local("H")
    hrs0 = LogicalVar("H0")
    body = (
        ReadRecord(
            array="emp",
            index=i,
            binds=(("rate", rate), ("num_hrs", hrs)),
            post=conj(_i_sal(i), eq(hrs, Field("emp", i, "num_hrs"))),
            label="read employee record",
        ),
        Write(Field("emp", i, "num_hrs"), hrs + h, label="add hours"),
        Write(Field("emp", i, "sal"), Mul(rate, hrs + h), label="recompute salary"),
    )
    return TransactionType(
        name="Hours",
        params=(i, h),
        body=body,
        consistency=_i_sal(i),
        param_pre=ge(h, 0),
        result=conj(_i_sal(i), eq(Field("emp", i, "num_hrs"), hrs0 + h)),
        snapshot=((hrs0, Field("emp", i, "num_hrs")),),
    )


def make_print_record() -> TransactionType:
    """Print one employee's record; the snapshot must be consistent."""
    i = Param("i")
    rate = Local("R")
    hrs = Local("H")
    sal = Local("S")
    # the critical assertion: the *printed values* are mutually consistent
    # — a workspace-only fact once the atomic record read has executed
    snapshot_consistent = eq(Mul(rate, hrs), sal)
    body = (
        ReadRecord(
            array="emp",
            index=i,
            binds=(("rate", rate), ("num_hrs", hrs), ("sal", sal)),
            post=snapshot_consistent,
            label="read employee record",
        ),
    )
    return TransactionType(
        name="Print_Record",
        params=(i,),
        body=body,
        consistency=_i_sal(i),
        result=snapshot_consistent,
    )


HOURS = make_hours()
PRINT_RECORD = make_print_record()


def domain_spec(employees: int = 2) -> DomainSpec:
    indices = tuple(range(employees))

    def consistent(state) -> bool:
        return all(
            state.read_field("emp", index, "rate") * state.read_field("emp", index, "num_hrs")
            == state.read_field("emp", index, "sal")
            for index in indices
        )

    return DomainSpec(
        arrays=(
            ArrayDomain(
                "emp",
                indices=indices,
                attrs=(("rate", (1, 2)), ("num_hrs", (0, 1, 2)), ("sal", (0, 1, 2, 4))),
            ),
        ),
        var_domains={"i": indices, "h": (0, 1)},
        state_constraint=consistent,
    )


def make_application(employees: int = 2) -> Application:
    distinct = ne(Param("i"), Param("i!2"))
    return Application(
        name="employees",
        transactions=(HOURS, PRINT_RECORD),
        spec=domain_spec(employees),
        description="Example 2: Hours / Print_Record over emp",
        assumptions={("Hours", "Hours"): distinct},
    )
