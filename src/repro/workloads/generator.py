"""Workload generation: instance mixes with controlled contention.

A workload is a list of :class:`repro.sched.simulator.InstanceSpec` drawn
from a transaction mix.  Contention is controlled two ways:

* ``hot_fraction`` — the probability that an instance targets the single
  hottest key instead of a uniformly random one (the classic hot-spot
  model: 0.0 is uniform, 1.0 serialises everything through one record);
* workload size — more concurrent instances per batch means more overlap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.sched.simulator import InstanceSpec


@dataclass
class WorkloadConfig:
    """Knobs for one generated workload."""

    size: int = 10
    hot_fraction: float = 0.5
    seed: int = 0

    def rng(self, consumer: str = "") -> random.Random:
        """A fresh deterministic stream derived from the config seed.

        Every consumer must derive its randomness here — never from the
        module-level :mod:`random` state — so that equal seeds produce
        byte-identical workloads regardless of what else has drawn from
        the global RNG.  The unlabelled stream is ``Random(seed)``: the
        bundled workload generators all draw from it, and each gets its
        own instance, so interleaving generator calls never perturbs any
        of them.  A nonempty ``consumer`` label keys an independent
        stream for new consumers that must not replay the default draws.
        """
        if consumer:
            return random.Random(f"{self.seed}:{consumer}")
        return random.Random(self.seed)


def pick_weighted(rng: random.Random, weights: Mapping[str, float]) -> str:
    """Pick a key proportionally to its weight."""
    total = sum(weights.values())
    roll = rng.random() * total
    acc = 0.0
    for key, weight in weights.items():
        acc += weight
        if roll <= acc:
            return key
    return next(reversed(list(weights)))


def skewed_index(rng: random.Random, domain: int, hot_fraction: float) -> int:
    """Index 0 with probability ``hot_fraction``, else uniform."""
    if domain <= 1 or rng.random() < hot_fraction:
        return 0
    return rng.randrange(domain)


def banking_workload(config: WorkloadConfig, accounts: int = 4, levels: Mapping[str, str] | None = None) -> list:
    """Withdrawals and deposits over ``accounts`` accounts."""
    from repro.apps import banking

    rng = config.rng()
    mix = {
        "Withdraw_sav": 0.3,
        "Withdraw_ch": 0.3,
        "Deposit_sav": 0.2,
        "Deposit_ch": 0.2,
    }
    types = {txn.name: txn for txn in (
        banking.WITHDRAW_SAV, banking.WITHDRAW_CH, banking.DEPOSIT_SAV, banking.DEPOSIT_CH
    )}
    specs = []
    for position in range(config.size):
        name = pick_weighted(rng, mix)
        txn_type = types[name]
        account = skewed_index(rng, accounts, config.hot_fraction)
        if name.startswith("Withdraw"):
            args = {"i": account, "w": rng.randint(0, 2)}
        else:
            args = {"i": account, "d": rng.randint(0, 2)}
        level = (levels or {}).get(name, "SERIALIZABLE")
        specs.append(InstanceSpec(txn_type, args, level, f"{name}#{position}"))
    return specs


def banking_initial(accounts: int = 4):
    from repro.core.state import DbState

    return DbState(
        arrays={
            "acct_sav": {i: {"bal": 5} for i in range(accounts)},
            "acct_ch": {i: {"bal": 5} for i in range(accounts)},
        }
    )


def tpcc_workload(config: WorkloadConfig, levels: Mapping[str, str] | None = None) -> list:
    """The standard TPC-C-lite mix at the configured contention."""
    from repro.apps import tpcc

    rng = config.rng()
    types = {txn.name: txn for txn in tpcc.ALL_TYPES}
    specs = []
    for position in range(config.size):
        name = pick_weighted(rng, tpcc.STANDARD_MIX)
        txn_type = types[name]
        district = skewed_index(rng, tpcc.DISTRICTS, config.hot_fraction)
        customer = skewed_index(rng, tpcc.CUSTOMERS, config.hot_fraction)
        item = skewed_index(rng, tpcc.ITEMS, config.hot_fraction)
        if name == "TPCC_NewOrder":
            args = {"d": district, "c": customer, "item": item, "qty": rng.randint(1, 3)}
        elif name == "TPCC_Payment":
            args = {"c": customer, "d": district, "amount": rng.randint(0, 3)}
        elif name == "TPCC_OrderStatus":
            args = {"c": customer}
        elif name == "TPCC_Delivery":
            args = {"d": district}
        else:
            args = {"threshold": 5}
        level = (levels or {}).get(name, "SERIALIZABLE")
        specs.append(InstanceSpec(txn_type, args, level, f"{name}#{position}"))
    return specs


def order_entry_workload(
    config: WorkloadConfig, rule: str = "no_gap", levels: Mapping[str, str] | None = None
) -> list:
    """The Section 6 application under load (New_Order heavy)."""
    from repro.apps import orders

    rng = config.rng()
    mailing = orders.make_mailing_list()
    new_order = orders.make_new_order(rule)
    delivery = orders.make_delivery()
    audit = orders.make_audit()
    types = {t.name: t for t in (mailing, new_order, delivery, audit)}
    mix = {"New_Order": 0.6, "Mailing_List": 0.1, "Delivery": 0.2, "Audit": 0.1}
    customers = ["a", "b", "c", "d"]
    specs = []
    order_counter = 100
    for position in range(config.size):
        name = pick_weighted(rng, mix)
        txn_type = types[name]
        hot = config.hot_fraction
        customer = customers[0] if rng.random() < hot else rng.choice(customers)
        if name == "New_Order":
            order_counter += 1
            args = {"customer": customer, "address": "x", "order_info": order_counter}
        elif name == "Delivery":
            args = {"today": 1}
        elif name == "Audit":
            args = {"customer": customer}
        else:
            args = {}
        level = (levels or {}).get(name, "SERIALIZABLE")
        specs.append(InstanceSpec(txn_type, args, level, f"{name}#{position}"))
    return specs


def order_entry_initial():
    from repro.core.state import DbState

    return DbState(
        items={"maximum_date": 1},
        tables={
            "ORDERS": [
                {"order_info": 1, "cust_name": "a", "deliv_date": 1, "done": False},
            ],
            "CUST": [{"cust_name": "a", "address": "x", "num_orders": 1}],
        },
    )
