"""Random unannotated application generation for the inference pipeline.

:func:`generate_application` emits a structurally diverse, *unannotated*
transaction program over a small record array — every transaction body is
built from the same conventional-model shapes the bundled apps use
(guarded withdrawals, deposits, transfers, read-only reporters), but with
randomised composition, so ``repro infer`` has real work to do: there are
no hand-written ``I_i``/``B_i``/``Q_i`` triples and no read
postconditions.  ``repro infer appgen:<seed>`` then derives annotations,
``repro analyze`` chooses levels for them, and
:func:`make_inferred_scenario` closes the loop by packaging the inferred
invariant into a :class:`repro.pipeline.scenarios.Scenario` that
``certify`` can replay — the end-to-end infer → analyze → certify path.

Generation is deterministic: equal seeds produce byte-identical
applications (the :class:`~repro.workloads.generator.WorkloadConfig` seed
discipline).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.application import Application
from repro.core.domains import ArrayDomain, DomainSpec
from repro.core.program import If, Read, TransactionType, Write
from repro.core.terms import Field, Local, Param
from repro.core.formula import ge
from repro.errors import AnalysisError
from repro.sched.simulator import InstanceSpec

ARRAY = "acct"
BALANCE = "bal"

APPGEN_PREFIX = "appgen:"


@dataclass(frozen=True)
class AppGenConfig:
    """Knobs for one generated application.

    The defaults reproduce the historical generator byte for byte; the
    shaping knobs (``max_stmts``, ``profile``) only change the draw
    sequence when explicitly set, so every previously published seed keeps
    its program text.
    """

    seed: int = 0
    accounts: int = 2
    min_transactions: int = 3
    max_transactions: int = 5
    max_balance: int = 2
    #: statement budget: shape picks stop once the next shape's statement
    #: count would push the total past this bound (None = unbounded)
    max_stmts: int | None = None
    #: named shape-weight preset (see :data:`PROFILES`; None = legacy
    #: uniform ``rng.choice`` draws)
    profile: str | None = None

    def knobs(self) -> str:
        """Canonical knob string — the shape identity of this config.

        Everything except the seed, in a fixed order: two configs with
        equal knob strings generate structurally comparable corpora, and
        the string travels through :class:`~repro.pipeline.jobs.JobSpec`
        (the ``profile`` job field) so a service-side ``fuzz``/``infer``
        job regenerates the exact same application.
        """
        return (
            f"txns={self.min_transactions}..{self.max_transactions}"
            f";accounts={self.accounts}"
            f";balance={self.max_balance}"
            f";stmts={'-' if self.max_stmts is None else self.max_stmts}"
            f";profile={self.profile or '-'}"
        )

    @classmethod
    def from_knobs(cls, seed: int, knobs: str | None) -> "AppGenConfig":
        """Inverse of :meth:`knobs`; ``None``/empty means all defaults."""
        if not knobs:
            return cls(seed=seed)
        values: dict = {"seed": seed}
        for part in knobs.split(";"):
            key, sep, raw = part.partition("=")
            if not sep:
                raise AnalysisError(f"malformed appgen knob {part!r} in {knobs!r}")
            if key == "txns":
                lo, hi = parse_span(raw, what="txns")
                values["min_transactions"], values["max_transactions"] = lo, hi
            elif key == "accounts":
                values["accounts"] = _knob_int(raw, "accounts")
            elif key == "balance":
                values["max_balance"] = _knob_int(raw, "balance")
            elif key == "stmts":
                values["max_stmts"] = None if raw == "-" else _knob_int(raw, "stmts")
            elif key == "profile":
                if raw != "-" and raw not in PROFILES:
                    raise AnalysisError(
                        f"unknown appgen profile {raw!r};"
                        f" choose from {', '.join(sorted(PROFILES))}"
                    )
                values["profile"] = None if raw == "-" else raw
            else:
                raise AnalysisError(f"unknown appgen knob {key!r} in {knobs!r}")
        return cls(**values)


def _knob_int(raw: str, what: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise AnalysisError(f"appgen {what} must be an integer, got {raw!r}")
    if value <= 0:
        raise AnalysisError(f"appgen {what} must be positive, got {value}")
    return value


def parse_span(text: str, *, what: str = "span") -> tuple:
    """Parse ``"3..5"`` (inclusive bounds) or ``"4"`` into ``(lo, hi)``."""
    lo_text, sep, hi_text = text.partition("..")
    try:
        lo = int(lo_text)
        hi = int(hi_text) if sep else lo
    except ValueError:
        raise AnalysisError(f"{what} must be N or LO..HI, got {text!r}")
    if lo <= 0 or hi < lo:
        raise AnalysisError(f"{what} bounds must satisfy 0 < LO <= HI, got {text!r}")
    return lo, hi


def _field(index) -> Field:
    return Field(ARRAY, index, BALANCE)


def _make_deposit(name: str) -> TransactionType:
    i = Param("i")
    d = Param("d")
    bal = Local("Bal")
    body = (
        Read(bal, _field(i), label="read balance"),
        Write(_field(i), bal + d, label="deposit"),
    )
    return TransactionType(name=name, params=(i, d), body=body)


def _make_guarded_withdraw(name: str) -> TransactionType:
    i = Param("i")
    w = Param("w")
    bal = Local("Bal")
    body = (
        Read(bal, _field(i), label="read balance"),
        If(
            ge(bal, w),
            then=(Write(_field(i), bal - w, label="withdraw"),),
            label="sufficient funds?",
        ),
    )
    return TransactionType(name=name, params=(i, w), body=body)


def _make_transfer(name: str) -> TransactionType:
    src = Param("src")
    dst = Param("dst")
    t = Param("t")
    from_bal = Local("From")
    to_bal = Local("To")
    body = (
        Read(from_bal, _field(src), label="read source"),
        Read(to_bal, _field(dst), label="read target"),
        If(
            ge(from_bal, t),
            then=(
                Write(_field(src), from_bal - t, label="debit"),
                Write(_field(dst), to_bal + t, label="credit"),
            ),
            label="sufficient funds?",
        ),
    )
    return TransactionType(name=name, params=(src, dst, t), body=body)


def _make_reporter(name: str) -> TransactionType:
    i = Param("i")
    bal = Local("Bal")
    body = (Read(bal, _field(i), label="report balance"),)
    return TransactionType(name=name, params=(i,), body=body)


_SHAPES = (
    ("Deposit", _make_deposit),
    ("Withdraw", _make_guarded_withdraw),
    ("Transfer", _make_transfer),
    ("Report", _make_reporter),
)

#: Statements per shape (walked, nested included) — the ``max_stmts`` cost.
SHAPE_COSTS = {
    name: sum(1 for _ in factory("probe").walk()) for name, factory in _SHAPES
}

#: Named shape-weight presets, aligned with :data:`_SHAPES` order.
PROFILES = {
    "uniform": {"Deposit": 1, "Withdraw": 1, "Transfer": 1, "Report": 1},
    "write-heavy": {"Deposit": 3, "Withdraw": 3, "Transfer": 2, "Report": 1},
    "read-heavy": {"Deposit": 1, "Withdraw": 1, "Transfer": 1, "Report": 4},
    "transfer-heavy": {"Deposit": 1, "Withdraw": 1, "Transfer": 4, "Report": 1},
}


def _pick_shape(rng: random.Random, shapes, profile: str | None):
    if profile is None:
        return rng.choice(shapes)
    weights = [PROFILES[profile][name] for name, _factory in shapes]
    return rng.choices(shapes, weights=weights, k=1)[0]


def generate_application(config: AppGenConfig | int) -> Application:
    """A deterministic unannotated application for the given seed/config."""
    if isinstance(config, int):
        config = AppGenConfig(seed=config)
    rng = random.Random(f"appgen:{config.seed}")
    count = rng.randint(config.min_transactions, config.max_transactions)
    # always include one writer and one reader so analysis is non-trivial,
    # then fill the rest of the mix randomly
    picks = [_pick_shape(rng, _SHAPES[:3], config.profile), _SHAPES[3]]
    spent = sum(SHAPE_COSTS[name] for name, _factory in picks)
    while len(picks) < count:
        pick = _pick_shape(rng, _SHAPES, config.profile)
        if (
            config.max_stmts is not None
            and spent + SHAPE_COSTS[pick[0]] > config.max_stmts
        ):
            break
        picks.append(pick)
        spent += SHAPE_COSTS[pick[0]]
    rng.shuffle(picks)
    used: dict = {}
    transactions = []
    for shape_name, factory in picks:
        used[shape_name] = used.get(shape_name, 0) + 1
        suffix = f"_{used[shape_name]}" if used[shape_name] > 1 else ""
        transactions.append(factory(f"{shape_name}{suffix}"))

    indices = tuple(range(config.accounts))
    balances = tuple(range(-1, config.max_balance + 1))
    amounts = tuple(range(0, config.max_balance + 1))
    spec = DomainSpec(
        arrays=(ArrayDomain(ARRAY, indices, ((BALANCE, balances),)),),
        var_domains={
            "i": indices,
            "src": indices,
            "dst": indices,
            "d": amounts,
            "w": amounts,
            "t": amounts,
        },
        default_values={"int": 0},
    )
    return Application(
        name=f"appgen-{config.seed}",
        transactions=tuple(transactions),
        spec=spec,
        description=(
            f"generated unannotated application (seed {config.seed}): "
            + ", ".join(t.name for t in transactions)
        ),
    )


def parse_seed_range(ref: str) -> range:
    """Seeds of an ``appgen:`` reference — single or half-open range.

    ``appgen:7`` names the one seed 7; ``appgen:100..200`` names seeds 100
    (inclusive) through 200 (*exclusive*), so adjacent ranges
    ``0..100``/``100..200`` tile a corpus without overlap.  The syntax is
    shared by ``repro infer`` and ``repro fuzz``.
    """
    if not ref.startswith(APPGEN_PREFIX):
        raise AnalysisError(f"not an appgen reference: {ref!r}")
    raw = ref[len(APPGEN_PREFIX) :]
    start_text, sep, stop_text = raw.partition("..")
    try:
        start = int(start_text)
        stop = int(stop_text) if sep else start + 1
    except ValueError:
        raise AnalysisError(
            f"appgen seed must be an integer or LO..HI range, got {raw!r}"
        )
    if sep and stop <= start:
        raise AnalysisError(f"empty appgen seed range {raw!r} (LO..HI is half-open)")
    return range(start, stop)


def resolve_app_ref(ref: str, knobs: str | None = None) -> Application:
    """Resolve a single-seed ``appgen:<seed>`` to its generated application."""
    seeds = parse_seed_range(ref)
    if len(seeds) != 1:
        raise AnalysisError(
            f"{ref!r} names {len(seeds)} seeds; a single application is needed here"
        )
    return generate_application(AppGenConfig.from_knobs(seeds[0], knobs))


def initial_state(config: AppGenConfig | int, balance: int = 1):
    """A concrete all-equal starting state for certification runs."""
    if isinstance(config, int):
        config = AppGenConfig(seed=config)
    from repro.core.state import DbState

    return DbState(
        arrays={ARRAY: {i: {BALANCE: balance} for i in range(config.accounts)}}
    )


def make_inferred_scenario(app: Application, invariant, *, seed: int = 0):
    """A certification :class:`Scenario` for a generated application.

    ``invariant`` is the inferred application-level consistency formula
    (the conjunction of surviving candidates); the scenario runs two
    instances of every writing transaction type against a small shared
    state — the minimal interference pattern every paper anomaly needs.
    """
    from repro.pipeline.scenarios import Scenario

    writers = [t for t in app.transactions if t.written_resources()]
    focus = tuple(t.name for t in app.transactions)

    def build_args(txn: TransactionType, stream: random.Random) -> dict:
        args = {}
        for param in txn.params:
            values = app.spec.values_for(param) if app.spec else (0, 1)
            args[param.name] = stream.choice(list(values))
        return args

    def make_specs(levels: dict) -> list:
        # re-seeded per call: every invocation yields the same instance set
        stream = random.Random(f"appgen-scenario:{seed}")
        specs = []
        for txn in writers:
            level = levels.get(txn.name, "SERIALIZABLE")
            for copy in (1, 2):
                specs.append(
                    InstanceSpec(
                        txn, build_args(txn, stream), level, f"{txn.name}#{copy}"
                    )
                )
        return specs

    return Scenario(
        name=f"{app.name}-inferred",
        description="two copies of every writer over one hot record set",
        focus=focus,
        initial=lambda: initial_state(seed),
        make_specs=make_specs,
        invariant=invariant,
    )
