"""Random unannotated application generation for the inference pipeline.

:func:`generate_application` emits a structurally diverse, *unannotated*
transaction program over a small record array — every transaction body is
built from the same conventional-model shapes the bundled apps use
(guarded withdrawals, deposits, transfers, read-only reporters), but with
randomised composition, so ``repro infer`` has real work to do: there are
no hand-written ``I_i``/``B_i``/``Q_i`` triples and no read
postconditions.  ``repro infer appgen:<seed>`` then derives annotations,
``repro analyze`` chooses levels for them, and
:func:`make_inferred_scenario` closes the loop by packaging the inferred
invariant into a :class:`repro.pipeline.scenarios.Scenario` that
``certify`` can replay — the end-to-end infer → analyze → certify path.

Generation is deterministic: equal seeds produce byte-identical
applications (the :class:`~repro.workloads.generator.WorkloadConfig` seed
discipline).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.application import Application
from repro.core.domains import ArrayDomain, DomainSpec
from repro.core.program import If, Read, TransactionType, Write
from repro.core.terms import Field, Local, Param
from repro.core.formula import ge
from repro.errors import AnalysisError
from repro.sched.simulator import InstanceSpec

ARRAY = "acct"
BALANCE = "bal"

APPGEN_PREFIX = "appgen:"


@dataclass(frozen=True)
class AppGenConfig:
    """Knobs for one generated application."""

    seed: int = 0
    accounts: int = 2
    min_transactions: int = 3
    max_transactions: int = 5
    max_balance: int = 2


def _field(index) -> Field:
    return Field(ARRAY, index, BALANCE)


def _make_deposit(name: str) -> TransactionType:
    i = Param("i")
    d = Param("d")
    bal = Local("Bal")
    body = (
        Read(bal, _field(i), label="read balance"),
        Write(_field(i), bal + d, label="deposit"),
    )
    return TransactionType(name=name, params=(i, d), body=body)


def _make_guarded_withdraw(name: str) -> TransactionType:
    i = Param("i")
    w = Param("w")
    bal = Local("Bal")
    body = (
        Read(bal, _field(i), label="read balance"),
        If(
            ge(bal, w),
            then=(Write(_field(i), bal - w, label="withdraw"),),
            label="sufficient funds?",
        ),
    )
    return TransactionType(name=name, params=(i, w), body=body)


def _make_transfer(name: str) -> TransactionType:
    src = Param("src")
    dst = Param("dst")
    t = Param("t")
    from_bal = Local("From")
    to_bal = Local("To")
    body = (
        Read(from_bal, _field(src), label="read source"),
        Read(to_bal, _field(dst), label="read target"),
        If(
            ge(from_bal, t),
            then=(
                Write(_field(src), from_bal - t, label="debit"),
                Write(_field(dst), to_bal + t, label="credit"),
            ),
            label="sufficient funds?",
        ),
    )
    return TransactionType(name=name, params=(src, dst, t), body=body)


def _make_reporter(name: str) -> TransactionType:
    i = Param("i")
    bal = Local("Bal")
    body = (Read(bal, _field(i), label="report balance"),)
    return TransactionType(name=name, params=(i,), body=body)


_SHAPES = (
    ("Deposit", _make_deposit),
    ("Withdraw", _make_guarded_withdraw),
    ("Transfer", _make_transfer),
    ("Report", _make_reporter),
)


def generate_application(config: AppGenConfig | int) -> Application:
    """A deterministic unannotated application for the given seed/config."""
    if isinstance(config, int):
        config = AppGenConfig(seed=config)
    rng = random.Random(f"appgen:{config.seed}")
    count = rng.randint(config.min_transactions, config.max_transactions)
    # always include one writer and one reader so analysis is non-trivial,
    # then fill the rest of the mix randomly
    picks = [rng.choice(_SHAPES[:3]), _SHAPES[3]]
    while len(picks) < count:
        picks.append(rng.choice(_SHAPES))
    rng.shuffle(picks)
    used: dict = {}
    transactions = []
    for shape_name, factory in picks:
        used[shape_name] = used.get(shape_name, 0) + 1
        suffix = f"_{used[shape_name]}" if used[shape_name] > 1 else ""
        transactions.append(factory(f"{shape_name}{suffix}"))

    indices = tuple(range(config.accounts))
    balances = tuple(range(-1, config.max_balance + 1))
    amounts = tuple(range(0, config.max_balance + 1))
    spec = DomainSpec(
        arrays=(ArrayDomain(ARRAY, indices, ((BALANCE, balances),)),),
        var_domains={
            "i": indices,
            "src": indices,
            "dst": indices,
            "d": amounts,
            "w": amounts,
            "t": amounts,
        },
        default_values={"int": 0},
    )
    return Application(
        name=f"appgen-{config.seed}",
        transactions=tuple(transactions),
        spec=spec,
        description=(
            f"generated unannotated application (seed {config.seed}): "
            + ", ".join(t.name for t in transactions)
        ),
    )


def resolve_app_ref(ref: str) -> Application:
    """Resolve ``appgen:<seed>`` to its generated application."""
    if not ref.startswith(APPGEN_PREFIX):
        raise AnalysisError(f"not an appgen reference: {ref!r}")
    raw = ref[len(APPGEN_PREFIX) :]
    try:
        seed = int(raw)
    except ValueError:
        raise AnalysisError(f"appgen seed must be an integer, got {raw!r}")
    return generate_application(seed)


def initial_state(config: AppGenConfig | int, balance: int = 1):
    """A concrete all-equal starting state for certification runs."""
    if isinstance(config, int):
        config = AppGenConfig(seed=config)
    from repro.core.state import DbState

    return DbState(
        arrays={ARRAY: {i: {BALANCE: balance} for i in range(config.accounts)}}
    )


def make_inferred_scenario(app: Application, invariant, *, seed: int = 0):
    """A certification :class:`Scenario` for a generated application.

    ``invariant`` is the inferred application-level consistency formula
    (the conjunction of surviving candidates); the scenario runs two
    instances of every writing transaction type against a small shared
    state — the minimal interference pattern every paper anomaly needs.
    """
    from repro.pipeline.scenarios import Scenario

    writers = [t for t in app.transactions if t.written_resources()]
    focus = tuple(t.name for t in app.transactions)

    def build_args(txn: TransactionType, stream: random.Random) -> dict:
        args = {}
        for param in txn.params:
            values = app.spec.values_for(param) if app.spec else (0, 1)
            args[param.name] = stream.choice(list(values))
        return args

    def make_specs(levels: dict) -> list:
        # re-seeded per call: every invocation yields the same instance set
        stream = random.Random(f"appgen-scenario:{seed}")
        specs = []
        for txn in writers:
            level = levels.get(txn.name, "SERIALIZABLE")
            for copy in (1, 2):
                specs.append(
                    InstanceSpec(
                        txn, build_args(txn, stream), level, f"{txn.name}#{copy}"
                    )
                )
        return specs

    return Scenario(
        name=f"{app.name}-inferred",
        description="two copies of every writer over one hot record set",
        focus=focus,
        initial=lambda: initial_state(seed),
        make_specs=make_specs,
        invariant=invariant,
    )
