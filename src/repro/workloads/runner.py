"""Workload runners and sweep harnesses for the performance benchmarks.

``run_workload`` executes one generated workload under the simulator and
returns :class:`repro.workloads.metrics.RunMetrics`; the sweep helpers
iterate over isolation levels and contention settings — the axes of the
paper's performance claims (Section 2: "a semantically correct schedule
can perform significantly better than any equivalent serial schedule";
Section 7: run TPC-C at a combination of levels).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.formula import Formula, TRUE
from repro.core.state import DbState
from repro.sched.semantic import check_semantic_correctness
from repro.sched.simulator import Simulator, round_seeds
from repro.workloads.generator import WorkloadConfig
from repro.workloads.metrics import RunMetrics


def run_workload(
    initial: DbState,
    specs,
    rounds: int = 5,
    seed: int = 0,
    invariant: Formula = TRUE,
    retry: bool = True,
    max_restarts: int = 5,
) -> RunMetrics:
    """Run a workload ``rounds`` times under random interleavings."""
    metrics = RunMetrics()
    for round_seed in round_seeds(seed, rounds):
        simulator = Simulator(
            initial.copy(),
            specs,
            seed=round_seed,
            retry=retry,
            max_restarts=max_restarts,
        )
        result = simulator.run()
        report = check_semantic_correctness(result, invariant)
        # count every failed clause, not a 0/1 flag per round — a single
        # round can break the invariant and several Q_i at once
        metrics.add(result, violations=report.violation_count)
    return metrics


def sweep_levels(
    make_specs: Callable[[Mapping[str, str]], Sequence],
    initial: DbState,
    levels: Sequence[str],
    type_names: Sequence[str],
    rounds: int = 5,
    seed: int = 0,
    invariant: Formula = TRUE,
) -> dict:
    """Measure the same workload with every type at each single level."""
    out = {}
    for level in levels:
        assignment = {name: level for name in type_names}
        specs = make_specs(assignment)
        out[level] = run_workload(initial, specs, rounds=rounds, seed=seed, invariant=invariant)
    return out


def sweep_contention(
    make_specs: Callable[[WorkloadConfig], Sequence],
    initial: DbState,
    hot_fractions: Sequence[float],
    rounds: int = 5,
    seed: int = 0,
    size: int = 10,
    invariant: Formula = TRUE,
) -> dict:
    """Measure one level assignment across rising contention."""
    out = {}
    for hot in hot_fractions:
        config = WorkloadConfig(size=size, hot_fraction=hot, seed=seed)
        specs = make_specs(config)
        out[hot] = run_workload(initial, specs, rounds=rounds, seed=seed, invariant=invariant)
    return out


def compare_assignments(
    make_specs: Callable[[Mapping[str, str]], Sequence],
    initial: DbState,
    assignments: Mapping[str, Mapping[str, str]],
    rounds: int = 5,
    seed: int = 0,
    invariant: Formula = TRUE,
) -> dict:
    """Measure named per-type level assignments (e.g. 'mixed' vs 'all-SER')."""
    out = {}
    for label, assignment in assignments.items():
        specs = make_specs(assignment)
        out[label] = run_workload(initial, specs, rounds=rounds, seed=seed, invariant=invariant)
    return out
