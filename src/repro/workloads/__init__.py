"""Workload generation and performance measurement on the simulator.

* :mod:`repro.workloads.generator` — build instance mixes with controlled
  contention (hot-spot skew, mix weights, sizes);
* :mod:`repro.workloads.metrics` — throughput/abort/wait accounting over
  simulated scheduler steps;
* :mod:`repro.workloads.runner` — run a workload under a per-type
  isolation assignment and sweep harnesses for the E8/E9 benchmarks.
"""
