"""Performance accounting over simulated schedules.

The simulator's clock is *scheduler steps*: each step attempts one engine
operation (a blocked attempt costs a step, modelling lock-wait time).
Throughput is committed transactions per step — absolute numbers are
meaningless outside the simulator, but ratios between isolation levels are
exactly the shape the paper's performance argument is about.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable

from repro.sched.schedule import ScheduleResult


@dataclass
class RunMetrics:
    """Aggregated measurements over one or more schedule runs."""

    runs: int = 0
    committed: int = 0
    aborted: int = 0
    steps: int = 0
    waits: int = 0
    deadlocks: int = 0
    fcw_aborts: int = 0
    restarts: int = 0
    semantic_violations: int = 0

    @property
    def throughput(self) -> float:
        """Committed transactions per 1000 scheduler steps."""
        if self.steps == 0:
            return 0.0
        return 1000.0 * self.committed / self.steps

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0

    @property
    def wait_rate(self) -> float:
        return self.waits / self.steps if self.steps else 0.0

    def add(self, result: ScheduleResult, violations: int = 0) -> None:
        self.runs += 1
        self.committed += len(result.committed)
        self.aborted += len(result.aborted)
        self.steps += result.stats.get("steps", 0)
        self.waits += result.stats.get("waits", 0)
        self.deadlocks += result.stats.get("deadlocks", 0)
        self.fcw_aborts += result.stats.get("fcw_aborts", 0)
        self.restarts += result.stats.get("restarts", 0)
        self.semantic_violations += violations

    def row(self) -> tuple:
        """A formatted table row: throughput, waits, aborts, violations."""
        return (
            f"{self.throughput:7.2f}",
            f"{self.wait_rate:6.3f}",
            f"{self.abort_rate:6.3f}",
            f"{self.deadlocks:4d}",
            f"{self.semantic_violations:4d}",
        )

    def as_dict(self) -> dict:
        """Raw counters plus derived rates, for JSON benchmark records."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["throughput"] = round(self.throughput, 4)
        out["abort_rate"] = round(self.abort_rate, 4)
        out["wait_rate"] = round(self.wait_rate, 4)
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "RunMetrics":
        """Rebuild the counters from :meth:`as_dict` (derived rates ignored)."""
        return cls(**{f.name: payload[f.name] for f in fields(cls) if f.name in payload})


def merge(metrics: Iterable[RunMetrics]) -> RunMetrics:
    total = RunMetrics()
    for item in metrics:
        for f in fields(RunMetrics):
            setattr(total, f.name, getattr(total, f.name) + getattr(item, f.name))
    return total
