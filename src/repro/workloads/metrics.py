"""Performance accounting over simulated schedules.

The simulator's clock is *scheduler steps*: each step attempts one engine
operation (a blocked attempt costs a step, modelling lock-wait time).
Throughput is committed transactions per step — absolute numbers are
meaningless outside the simulator, but ratios between isolation levels are
exactly the shape the paper's performance argument is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.sched.schedule import ScheduleResult


@dataclass
class RunMetrics:
    """Aggregated measurements over one or more schedule runs."""

    runs: int = 0
    committed: int = 0
    aborted: int = 0
    steps: int = 0
    waits: int = 0
    deadlocks: int = 0
    fcw_aborts: int = 0
    restarts: int = 0
    semantic_violations: int = 0

    @property
    def throughput(self) -> float:
        """Committed transactions per 1000 scheduler steps."""
        if self.steps == 0:
            return 0.0
        return 1000.0 * self.committed / self.steps

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0

    @property
    def wait_rate(self) -> float:
        return self.waits / self.steps if self.steps else 0.0

    def add(self, result: ScheduleResult, violations: int = 0) -> None:
        self.runs += 1
        self.committed += len(result.committed)
        self.aborted += len(result.aborted)
        self.steps += result.stats.get("steps", 0)
        self.waits += result.stats.get("waits", 0)
        self.deadlocks += result.stats.get("deadlocks", 0)
        self.fcw_aborts += result.stats.get("fcw_aborts", 0)
        self.restarts += result.stats.get("restarts", 0)
        self.semantic_violations += violations

    def row(self) -> tuple:
        """A formatted table row: throughput, waits, aborts, violations."""
        return (
            f"{self.throughput:7.2f}",
            f"{self.wait_rate:6.3f}",
            f"{self.abort_rate:6.3f}",
            f"{self.deadlocks:4d}",
            f"{self.semantic_violations:4d}",
        )


def merge(metrics: Iterable[RunMetrics]) -> RunMetrics:
    total = RunMetrics()
    for item in metrics:
        total.runs += item.runs
        total.committed += item.committed
        total.aborted += item.aborted
        total.steps += item.steps
        total.waits += item.waits
        total.deadlocks += item.deadlocks
        total.fcw_aborts += item.fcw_aborts
        total.restarts += item.restarts
        total.semantic_violations += item.semantic_violations
    return total
