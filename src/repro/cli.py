"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze <app>`` — run the Section 5 chooser over a bundled application
  and print the level table (optionally a single ``--transaction`` at a
  single ``--level`` with failing obligations); ``--json`` emits the
  machine-readable report (schema in ``docs/PIPELINE.md``);
* ``certify <app>`` — the full cross-layer pipeline: static chooser, then
  exhaustive mixed-level schedule exploration at (and one level below) the
  recommended assignment, reconciled into per-type verdicts with
  replayable counterexample histories;
* ``explore <app>`` — exhaustively enumerate the schedules of one
  registered scenario under an explicit level assignment and report the
  pruning statistics and semantic violations;
* ``simulate <app>`` — run a generated workload under an isolation-level
  assignment (uniform ``--level`` or per-type ``--levels Txn=LEVEL``) with
  a random or exhaustive scheduling policy;
* ``replay "<history>"`` — replay a Berenson-style history (e.g.
  ``"w1[x=1] r2[x] c1 c2"``) under a per-transaction level assignment;
* ``lint [app ...]`` — static well-formedness checks plus the SDG
  dangerous-structure pass (``repro.core.lint``); exits 1 on any
  ``error``-severity finding;
* ``serve`` — run the long-lived analysis service (``repro.service``):
  an asyncio JSON-over-HTTP server with request batching, admission
  control and Prometheus telemetry; ``--fleet N`` puts a consistent-hash
  router in front of N worker processes (see ``docs/SERVICE.md``);
* ``submit <kind> <app> ...`` — send analyze/certify/lint jobs to a
  running service and render the results;
* ``compact`` — merge the persistent verdict store's segments into one
  (safe to run while a fleet is serving; see ``repro.core.persist``);
* ``apps`` — list the bundled applications;
* ``levels`` — list the supported isolation levels.

The bundled applications are the paper's: ``banking`` (Figure 1 /
Example 3), ``customers`` (Example 1), ``employees`` (Example 2),
``orders`` / ``orders-strict`` (Section 6, the two business rules), and
``tpcc`` (Section 7 future work).

Exit codes are uniform across subcommands: 0 success, 1 analysis verdict
failure (interference found, certification disagreement, lint errors),
2 usage or input errors (including every :class:`~repro.errors.ReproError`),
3 unexpected internal errors, and for ``submit`` additionally 4 connection
refused, 5 server busy (429), 6 deadline exceeded.  Errors print one
``repro: error: …`` line to stderr, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.cache import VerdictCache, shared_cache
from repro.core.conditions import LEVEL_ORDER
from repro.core.parallel import resolve_workers
from repro.core.report import analysis_stats_table, failure_details, level_table
from repro.errors import ReproError

#: Uniform exit codes (see module docstring and docs/SERVICE.md).
EXIT_OK = 0
EXIT_VERDICT = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3
EXIT_CONNECT = 4
EXIT_BUSY = 5
EXIT_DEADLINE = 6


def _version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # pragma: no cover - metadata always present when installed
        from repro import __version__

        return __version__


def _app_registry() -> dict:
    from repro.apps import registry

    return registry()


def _load_app(name: str):
    registry = _app_registry()
    if name not in registry:
        raise SystemExit(
            f"unknown application {name!r}; choose from {', '.join(sorted(registry))}"
        )
    return registry[name]()


def cmd_apps(_args) -> int:
    for name, factory in sorted(_app_registry().items()):
        app = factory()
        print(f"{name:15s} {', '.join(app.transaction_names())}")
        if app.description:
            print(f"{'':15s} {app.description}")
    return 0


def cmd_levels(_args) -> int:
    for level in sorted(LEVEL_ORDER, key=LEVEL_ORDER.get):
        print(level)
    return 0


def _stats_registry():
    """A telemetry registry + obligation-latency histogram for ``--stats``."""
    from repro.service.telemetry import Registry

    registry = Registry()
    histogram = registry.histogram(
        "repro_obligation_seconds", "wall time per decided obligation"
    )
    return registry, histogram


def _telemetry_summary(histogram) -> str:
    snap = histogram.snapshot()
    return (
        f"obligation latency: {snap['count']} decided,"
        f" mean {snap['mean'] * 1000:.2f} ms,"
        f" p50 {snap['p50'] * 1000:.2f} ms, p99 {snap['p99'] * 1000:.2f} ms"
        " (service telemetry histogram)"
    )


def _storage_summary() -> str:
    from repro.engine.storage import STORAGE_STATS

    snap = STORAGE_STATS.snapshot()
    captures = snap["snapshot_captures"]
    capture_mean = snap["snapshot_capture_seconds"]["mean"]
    return (
        f"storage: {captures} snapshot captures,"
        f" mean {capture_mean * 1e6:.2f} us,"
        f" {snap['vacuum_passes']} vacuum passes,"
        f" {snap['vacuum_reclaimed']} versions reclaimed"
    )


def cmd_analyze(args) -> int:
    from repro.pipeline.jobs import JobSpec, run_job

    _load_app(args.app)  # fail early with the canonical unknown-app message
    histogram = None
    checker_hook = None
    if args.stats:
        _registry, histogram = _stats_registry()

        def checker_hook(checker, histogram=histogram):
            checker.latency_observer = histogram.observe

    cache = VerdictCache(enabled=False) if args.no_cache else shared_cache()
    spec = JobSpec(
        kind="analyze",
        app=args.app,
        budget=args.budget,
        seed=args.seed,
        ladder=args.ladder,
        snapshot=args.snapshot,
        use_sdg=not args.no_sdg,
        transaction=args.transaction or None,
        level=args.level or None,
    )
    job = run_job(
        spec,
        cache=cache,
        workers=resolve_workers(args.workers),
        backend=args.backend,
        cache_dir=args.cache_dir,
        no_persist=args.no_persist or args.no_cache,
        checker_hook=checker_hook,
    )
    checker = job.artifacts["checker"]
    if spec.transaction is not None:
        if args.json:
            print(json.dumps(job.payload, indent=2))
            return job.exit_code
        result = job.report
        print(failure_details(result) if not result.ok else result.summary())
        if args.stats:
            print()
            print(analysis_stats_table(checker))
            print(_telemetry_summary(histogram))
            print(_storage_summary())
        return job.exit_code
    if args.json:
        print(json.dumps({**job.payload, **job.extras}, indent=2))
        return job.exit_code
    print(level_table(job.report))
    if args.snapshot:
        print()
        for check in job.report.snapshot_checks:
            print(check.summary())
    print()
    print(f"interference tiers used: {checker.stats}")
    if args.stats:
        print()
        print(analysis_stats_table(checker))
        print(_telemetry_summary(histogram))
        print(_storage_summary())
    return job.exit_code


def cmd_certify(args) -> int:
    from repro.pipeline.jobs import JobSpec, run_job

    _load_app(args.app)
    spec = JobSpec(
        kind="certify",
        app=args.app,
        budget=args.budget,
        seed=args.seed,
        ladder=args.ladder,
        use_sdg=not args.no_sdg,
        max_schedules=args.max_schedules,
        max_depth=args.max_depth,
        dpor=args.dpor,
    )
    job = run_job(
        spec,
        workers=args.workers,
        backend=args.backend,
        cache_dir=args.cache_dir,
        no_persist=args.no_persist,
    )
    if args.json:
        print(json.dumps({**job.payload, "stats": job.extras["stats"]}, indent=2))
    else:
        print(job.report.render())
    return job.exit_code


def _parse_type_levels(assignments, known_types=None) -> dict:
    """Parse ``Txn=LEVEL`` overrides, rejecting unknown names outright.

    An unknown level would otherwise raise a ``KeyError`` deep inside the
    lock table; an unknown transaction name would be silently carried in
    the levels dict and never applied.  Both fail here with the list of
    valid choices instead.
    """
    levels = {}
    for assignment in assignments or []:
        name, sep, level = assignment.partition("=")
        if not sep:
            raise SystemExit(f"--levels expects Txn=LEVEL, got {assignment!r}")
        if level not in LEVEL_ORDER:
            raise SystemExit(
                f"--levels: unknown isolation level {level!r} for {name!r};"
                f" choose from {', '.join(sorted(LEVEL_ORDER, key=LEVEL_ORDER.get))}"
            )
        if known_types is not None and name not in known_types:
            raise SystemExit(
                f"--levels: unknown transaction type {name!r};"
                f" choose from {', '.join(sorted(known_types))}"
            )
        levels[name] = level
    return levels


def cmd_explore(args) -> int:
    from repro.pipeline.scenarios import scenarios_for
    from repro.sched.explore import explore
    from repro.sched.histories import history_string
    from repro.sched.semantic import check_semantic_correctness

    app = _load_app(args.app)
    # scenarios register under the application's own name ("tpcc-lite"),
    # which may differ from the CLI registry key ("tpcc")
    scenarios = {scenario.name: scenario for scenario in scenarios_for(app.name)}
    if not scenarios:
        raise SystemExit(f"no registered scenarios for application {args.app!r}")
    if args.scenario is None and len(scenarios) > 1 and not args.all:
        raise SystemExit(
            f"choose --scenario from {', '.join(sorted(scenarios))} (or pass --all)"
        )
    chosen = list(scenarios.values()) if (args.all or args.scenario is None) else [
        scenarios.get(args.scenario) or _unknown_scenario(args.scenario, scenarios)
    ]
    _validate_level(args.level)
    overrides = _parse_type_levels(args.levels, known_types=app.transaction_names())
    payload = []
    exit_code = 0
    for scenario in chosen:
        levels: dict = {}
        for spec in scenario.specs({}):
            levels[spec.txn_type.name] = args.level
        levels.update(overrides)
        result = explore(
            scenario.initial(),
            scenario.specs(levels),
            retry=not args.no_retry,
            max_schedules=args.max_schedules,
            max_depth=args.max_depth,
            pruning=not args.no_pruning,
            dpor=args.dpor,
            workers=resolve_workers(args.workers),
        )
        violations = []
        for schedule in result.results:
            report = check_semantic_correctness(schedule, scenario.invariant, scenario.cumulative)
            if not report.correct:
                violations.append((report.summary(), history_string(schedule.history)))
        entry = {
            "scenario": scenario.name,
            "levels": levels,
            **result.to_dict(),
            "violations": len(violations),
            "witnesses": [
                {"summary": summary, "history": history}
                for summary, history in violations[:3]
            ],
        }
        payload.append(entry)
        if violations:
            exit_code = 1
        if not args.json:
            print(f"scenario {scenario.name!r} at {levels}:")
            print(
                f"  schedules: {result.schedules}  runs: {result.runs}"
                f"  pruned(sleep/state): {result.pruned_sleep}/{result.pruned_state}"
                f"  truncated: {result.truncated}"
            )
            print(
                f"  pruning: {result.mode}  races: {result.races}"
                f"  reversals: {result.reversals}"
            )
            print(f"  semantic violations: {len(violations)}")
            for summary, history in violations[:3]:
                print(f"    {summary}")
                if history:
                    print(f'      repro replay "{history}"')
    if args.json:
        print(json.dumps(payload, indent=2))
    return exit_code


def _unknown_scenario(name: str, scenarios: dict):
    raise SystemExit(f"unknown scenario {name!r}; choose from {', '.join(sorted(scenarios))}")


def _validate_level(level: str) -> None:
    if level not in LEVEL_ORDER:
        raise SystemExit(
            f"unknown isolation level {level!r};"
            f" choose from {', '.join(sorted(LEVEL_ORDER, key=LEVEL_ORDER.get))}"
        )


def cmd_simulate(args) -> int:
    from repro.workloads.generator import (
        WorkloadConfig,
        banking_initial,
        banking_workload,
        order_entry_initial,
        order_entry_workload,
        tpcc_workload,
    )
    from repro.workloads.runner import run_workload

    config = WorkloadConfig(size=args.size, hot_fraction=args.hot, seed=args.seed)
    _validate_level(args.level)
    overrides = _parse_type_levels(
        args.levels, known_types=_load_app(args.app).transaction_names()
    )
    if args.app == "banking":
        names = ("Withdraw_sav", "Withdraw_ch", "Deposit_sav", "Deposit_ch")
        levels = {n: overrides.get(n, args.level) for n in names}
        specs = banking_workload(config, levels=levels)
        initial = banking_initial()
    elif args.app == "tpcc":
        from repro.apps import tpcc as tpcc_app

        levels = {t.name: overrides.get(t.name, args.level) for t in tpcc_app.ALL_TYPES}
        specs = tpcc_workload(config, levels=levels)
        initial = tpcc_app.initial_state()
    elif args.app in ("orders", "orders-strict"):
        rule = "no_gap" if args.app == "orders" else "one_order"
        names = ("Mailing_List", "New_Order", "Delivery", "Audit")
        levels = {n: overrides.get(n, args.level) for n in names}
        specs = order_entry_workload(config, rule=rule, levels=levels)
        initial = order_entry_initial()
    else:
        raise SystemExit(f"no workload generator for {args.app!r}")
    if args.policy == "exhaustive":
        from repro.sched.explore import explore
        from repro.workloads.metrics import RunMetrics

        exploration = explore(
            initial.copy(),
            specs,
            retry=True,
            max_schedules=args.max_schedules,
            keep_results=True,
        )
        metrics = RunMetrics()
        for result in exploration.results:
            metrics.add(result)
        print("policy:     exhaustive")
        print(f"level(s):   {levels}")
        print(
            f"schedules:  {exploration.schedules} explored"
            f" ({exploration.runs} runs, pruned sleep/state:"
            f" {exploration.pruned_sleep}/{exploration.pruned_state},"
            f" truncated: {exploration.truncated})"
        )
        if exploration.results:
            print(f"throughput: {metrics.throughput:.1f} commits / 1000 steps")
            print(f"wait rate:  {metrics.wait_rate:.3f}")
            print(f"abort rate: {metrics.abort_rate:.3f}")
        return 0
    if args.guard:
        from repro.sched.monitor import AssertionGuard
        from repro.sched.simulator import Simulator, round_seeds

        from repro.workloads.metrics import RunMetrics

        metrics = RunMetrics()
        for round_seed in round_seeds(args.seed, args.rounds):
            guard = AssertionGuard()
            simulator = Simulator(
                initial.copy(), specs, seed=round_seed, retry=True,
                observers=[guard],
            )
            metrics.add(simulator.run())
        print("assertional concurrency control: ON")
    else:
        metrics = run_workload(initial, specs, rounds=args.rounds, seed=args.seed)
    print(f"level(s):   {levels if overrides else args.level}")
    print(f"throughput: {metrics.throughput:.1f} commits / 1000 steps")
    print(f"wait rate:  {metrics.wait_rate:.3f}")
    print(f"abort rate: {metrics.abort_rate:.3f}")
    print(f"deadlocks:  {metrics.deadlocks}")
    return 0


def cmd_lint(args) -> int:
    from repro.pipeline.jobs import JobSpec, run_job

    names = args.apps or sorted(_app_registry())
    for name in names:
        _load_app(name)  # canonical unknown-app rejection before any work
    jobs = [run_job(JobSpec(kind="lint", app=name)) for name in names]
    failed = any(job.exit_code for job in jobs)
    if args.json:
        print(json.dumps([job.payload for job in jobs], indent=2))
        return EXIT_VERDICT if failed else EXIT_OK
    for job in jobs:
        print(job.report.render())
    return EXIT_VERDICT if failed else EXIT_OK


def _appgen_knobs(args) -> str | None:
    """Canonical generator knob string from the shaping flags, or None.

    Round-trips through :meth:`AppGenConfig.from_knobs` so bad spans and
    unknown profile names fail here, as a usage error, not mid-corpus.
    """
    from repro.workloads.appgen import AppGenConfig, parse_span

    flags = (args.txns, args.accounts, args.balance, args.max_stmts, args.profile)
    if not any(value is not None for value in flags):
        return None
    values: dict = {}
    if args.txns is not None:
        lo, hi = parse_span(args.txns, what="--txns")
        values["min_transactions"], values["max_transactions"] = lo, hi
    if args.accounts is not None:
        values["accounts"] = args.accounts
    if args.balance is not None:
        values["max_balance"] = args.balance
    if args.max_stmts is not None:
        values["max_stmts"] = args.max_stmts
    if args.profile is not None:
        values["profile"] = args.profile
    knobs = AppGenConfig(seed=0, **values).knobs()
    AppGenConfig.from_knobs(0, knobs)  # validates bounds and profile name
    return knobs


def _add_appgen_flags(parser) -> None:
    """The generator shaping knobs shared by ``infer`` and ``fuzz``."""
    parser.add_argument(
        "--txns", metavar="N|LO..HI", default=None,
        help="transactions per generated application (inclusive span)",
    )
    parser.add_argument(
        "--accounts", type=int, default=None,
        help="records in the generated array (default 2)",
    )
    parser.add_argument(
        "--balance", type=int, default=None,
        help="maximum balance/amount in the generated domains (default 2)",
    )
    parser.add_argument(
        "--max-stmts", type=int, default=None,
        help="statement budget per generated application (default: unbounded)",
    )
    parser.add_argument(
        "--profile", default=None, metavar="NAME",
        help="shape-weight preset: uniform, write-heavy, read-heavy,"
        " transfer-heavy (default: legacy uniform draws)",
    )


def cmd_infer(args) -> int:
    from repro.pipeline.jobs import APPGEN_PREFIX, JobSpec, run_job

    knobs = _appgen_knobs(args)
    if args.app.startswith(APPGEN_PREFIX):
        from repro.workloads.appgen import parse_seed_range

        refs = [f"{APPGEN_PREFIX}{seed}" for seed in parse_seed_range(args.app)]
    else:
        _load_app(args.app)  # canonical unknown-app rejection before any work
        if knobs is not None:
            print(
                "repro: error: generator knobs only apply to appgen: references",
                file=sys.stderr,
            )
            return EXIT_USAGE
        refs = [args.app]
    workers = resolve_workers(args.workers)
    jobs = []
    for ref in refs:
        spec = JobSpec(
            kind="infer", app=ref, budget=args.budget, seed=args.seed, profile=knobs
        )
        jobs.append(run_job(spec, workers=workers))
    exit_code = max(job.exit_code for job in jobs)
    if args.json:
        if len(jobs) == 1:
            print(json.dumps(jobs[0].payload, indent=2))
        else:
            print(json.dumps([job.payload for job in jobs], indent=2))
        return exit_code
    for position, job in enumerate(jobs):
        if position:
            print()
        print(job.report.render())
        print()
        if "declared_levels" in job.payload:
            print("inferred-vs-declared level assignment:")
            for name, declared in job.payload["declared_levels"].items():
                inferred = job.payload["levels"][name]
                marker = "==" if job.payload["matches"][name] else "!="
                print(f"  {name}: declared {declared} {marker} inferred {inferred}")
            verdict = "AGREE" if job.payload["agreement"] else "DISAGREE"
            print(f"agreement: {verdict}")
        else:
            print("chooser levels for the inferred annotations:")
            for name, level in job.payload["levels"].items():
                print(f"  {name}: {level}")
    return exit_code


def cmd_fuzz(args) -> int:
    from repro.fuzz.runner import FuzzRunner
    from repro.pipeline.jobs import APPGEN_PREFIX
    from repro.workloads.appgen import parse_seed_range

    if (args.app is None) == (args.seeds is None):
        print(
            "repro: error: give either an appgen:LO..HI reference or --seeds N",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.app is not None:
        if not args.app.startswith(APPGEN_PREFIX):
            print(
                f"repro: error: fuzz takes {APPGEN_PREFIX}<seed|LO..HI> references,"
                f" got {args.app!r}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        seeds = parse_seed_range(args.app)
    else:
        seeds = range(args.seeds)
    if args.force_level is not None:
        _validate_level(args.force_level)
    runner = FuzzRunner(
        seeds,
        _appgen_knobs(args),
        args.corpus_dir,
        budget=args.budget,
        pairs=args.pairs,
        probe_schedules=args.max_schedules,
        force_level=args.force_level,
        shrink=not args.no_shrink,
        progress=None if args.json else print,
    )
    if args.service:
        host, _sep, port = args.service.rpartition(":")
        try:
            port = int(port)
        except ValueError:
            print(
                f"repro: error: --service expects HOST:PORT, got {args.service!r}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        summary = runner.run_fleet(
            host or "127.0.0.1", port,
            inflight=args.inflight, deadline_ms=args.deadline_ms,
        )
    else:
        summary = runner.run()
    findings = runner.findings()
    if args.json:
        print(json.dumps({"summary": summary, "findings": findings}, indent=2))
    else:
        verdicts = summary["verdicts"]
        tightness = summary["tightness"]
        line = (
            f"fuzz: {summary['seeds']} seeds — explored {summary['explored']},"
            f" answered from ledger {summary['skipped']}"
            f" (warm rate {summary['skip_rate']:.0%})"
        )
        if summary["interrupted"]:
            line += " — INTERRUPTED (resume with the same command)"
        if summary.get("errors"):
            line += f" — {summary['errors']} remote errors"
        print(line)
        print(
            f"  verdicts: SOUND {verdicts['SOUND']}"
            f"  UNSOUND {verdicts['UNSOUND']}"
            f"  UNSTABLE {verdicts['UNSTABLE']}"
            f"  (tight {tightness['TIGHT']}, loose {tightness['LOOSE']},"
            f" open {summary['open']})"
        )
        for finding in findings:
            print(f"  [{finding['severity']}] {finding['rule']}: {finding['message']}")
            if finding.get("witness"):
                print(f"    witness: repro replay {finding['witness']!r}")
    return EXIT_VERDICT if summary["verdicts"]["UNSOUND"] else EXIT_OK


def cmd_serve(args) -> int:
    from repro.service.server import ServiceConfig, serve

    persist_interval = args.persist_interval
    if persist_interval is None:
        # fleet shards flush/refresh periodically so verdicts propagate
        # across workers; the single server keeps its flush-on-drain default
        persist_interval = 5.0 if (args.fleet and not args.no_persist) else 0.0
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers if args.workers is not None else 2,
        job_workers=args.job_workers,
        window=args.window_ms / 1000.0,
        max_pending=args.queue_limit,
        max_body=args.max_body,
        default_deadline_ms=args.deadline_ms,
        drain_timeout=args.drain_timeout,
        cache_dir=args.cache_dir,
        no_persist=args.no_persist,
        backend=args.backend,
        persist_interval=persist_interval,
    )
    if args.fleet:
        from repro.service.router import FleetConfig, serve_fleet

        return serve_fleet(FleetConfig(
            host=args.host,
            port=args.port,
            fleet=args.fleet,
            worker=config,
            max_inflight=args.max_inflight,
            max_body=args.max_body,
            drain_timeout=args.drain_timeout,
        ))
    return serve(config)


def cmd_compact(args) -> int:
    from repro.core.persist import DEFAULT_CACHE_DIR, PersistentStore

    directory = (
        args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    )
    store = PersistentStore(directory)
    count = store.segment_count()
    if count == 0:
        print(f"{directory}: no verdict segments to compact")
        return EXIT_OK
    summary = store.compact()
    if not summary["compacted"]:
        print(f"{directory}: skipped — another process holds the compaction claim")
        return EXIT_OK
    print(
        f"{directory}: compacted {summary['segments_in']} segments into 1"
        f" ({summary['entries']} entries)"
    )
    return EXIT_OK


def _submit_options(args) -> dict:
    options = {
        "budget": args.budget,
        "seed": args.seed,
        "ladder": args.ladder,
        "use_sdg": not args.no_sdg,
    }
    if args.kind == "analyze":
        options["snapshot"] = args.snapshot
        if args.transaction:
            options["transaction"] = args.transaction
        if args.level:
            options["level"] = args.level
    if args.kind == "certify":
        options["max_schedules"] = args.max_schedules
        if args.max_depth is not None:
            options["max_depth"] = args.max_depth
        options["dpor"] = args.dpor
    if args.kind == "lint":
        # lint results depend on the app alone; a lean spec maximises the
        # service's chance to coalesce concurrent lint requests
        options = {}
    if args.kind == "infer":
        # inference depends only on budget, seed and generator knobs
        options = {"budget": args.budget, "seed": args.seed}
        if args.knobs:
            options["profile"] = args.knobs
    if args.kind == "fuzz":
        options = {
            "budget": args.budget,
            "pairs": args.pairs,
            "max_schedules": args.max_schedules,
        }
        if args.level:
            options["level"] = args.level  # the forced chooser override
        if args.knobs:
            options["profile"] = args.knobs
    return options


def cmd_submit(args) -> int:
    from repro.service.client import (
        ServiceBusyError,
        ServiceClient,
        ServiceConnectionError,
        ServiceError,
    )

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        response = client.submit(
            args.kind, args.apps, deadline_ms=args.deadline_ms, **_submit_options(args)
        )
    except ServiceBusyError as exc:
        print(f"repro: busy: {exc}", file=sys.stderr)
        return EXIT_BUSY
    except ServiceConnectionError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return EXIT_CONNECT
    except ServiceError as exc:
        detail = exc.payload.get("error") if isinstance(exc.payload, dict) else exc
        print(f"repro: error: {detail}", file=sys.stderr)
        return EXIT_USAGE if exc.status == 400 else EXIT_INTERNAL
    entries = response.get("results", [])
    if args.result_only:
        if len(entries) != 1:
            print("repro: error: --result-only needs exactly one app", file=sys.stderr)
            return EXIT_USAGE
        entry = entries[0]
        if entry.get("timed_out"):
            print("repro: error: request deadline exceeded", file=sys.stderr)
            return EXIT_DEADLINE
        print(json.dumps(entry.get("result"), indent=2))
        return int(entry.get("exit_code", EXIT_INTERNAL))
    if args.json:
        print(json.dumps(response, indent=2))
    else:
        for entry in entries:
            if entry.get("timed_out"):
                print(f"{entry['kind']} {entry['app']}: TIMED OUT (partial response)")
                continue
            if "error" in entry:
                print(f"{entry['kind']} {entry['app']}: ERROR {entry['error']}")
                continue
            line = (
                f"{entry['kind']} {entry['app']}: exit {entry['exit_code']}"
                f" in {entry['seconds']:.3f}s"
            )
            if entry.get("coalesced"):
                line += " (coalesced)"
            print(line)
            result = entry.get("result") or {}
            for txn, level in sorted((result.get("levels") or {}).items()):
                print(f"  {txn:24s} {level}")
            if "agreement" in result:
                print(f"  agreement: {result['agreement']}")
            if "ok" in result:
                print(f"  ok: {result['ok']}")
            if "verdict" in result:
                line = f"  verdict: {result['verdict']}"
                if result.get("tightness"):
                    line += f" ({result['tightness']})"
                print(line)
    exit_code = EXIT_OK
    for entry in entries:
        if entry.get("timed_out"):
            exit_code = max(exit_code, EXIT_DEADLINE)
        elif "error" in entry:
            exit_code = max(exit_code, EXIT_INTERNAL)
        else:
            exit_code = max(exit_code, int(entry.get("exit_code", 0)))
    return exit_code


def cmd_replay(args) -> int:
    from repro.sched.histories import replay

    levels = {}
    for assignment in args.levels or []:
        txn, sep, level = assignment.partition("=")
        if not sep or not txn.isdigit():
            raise SystemExit(f"--levels expects N=LEVEL with numeric N, got {assignment!r}")
        _validate_level(level)
        levels[int(txn)] = level
    _validate_level(args.default_level)
    result = replay(args.history, levels, default_level=args.default_level)
    for step in result.steps:
        suffix = f" -> {step.value!r}" if step.value is not None else ""
        detail = f"  ({step.detail})" if step.detail else ""
        print(f"{step.token:20s} {step.status}{suffix}{detail}")
    print(f"final items: {result.final.items}")
    if result.final.arrays:
        print(f"final arrays: {result.final.arrays}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic correctness at weak isolation levels (ICDE 2000), mechanised.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {_version()}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    apps = sub.add_parser("apps", help="list bundled applications")
    apps.set_defaults(func=cmd_apps)

    levels = sub.add_parser("levels", help="list isolation levels")
    levels.set_defaults(func=cmd_levels)

    analyze = sub.add_parser("analyze", help="run the Section 5 chooser")
    analyze.add_argument("app")
    analyze.add_argument("--transaction", help="check one transaction only")
    analyze.add_argument("--level", help="check at one level only (with --transaction)")
    analyze.add_argument("--budget", type=int, default=3000)
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument("--ladder", choices=("ansi", "extended"), default="ansi")
    analyze.add_argument("--snapshot", action="store_true", help="include Theorem 5 analysis")
    analyze.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="fan obligations/BMC chunks across N workers"
        " (default: $REPRO_WORKERS or 1 = serial)",
    )
    analyze.add_argument(
        "--no-cache", action="store_true",
        help="disable the verdict cache (every obligation re-checked)",
    )
    analyze.add_argument(
        "--cache-dir", nargs="?", const=".repro-cache", default=None, metavar="DIR",
        help="persistent verdict cache directory (bare flag: .repro-cache;"
        " default: $REPRO_CACHE_DIR, else persistence stays off)",
    )
    analyze.add_argument(
        "--no-persist", action="store_true",
        help="never load or write the persistent verdict cache",
    )
    analyze.add_argument(
        "--no-sdg", action="store_true",
        help="disable SDG obligation pre-pruning (verdicts are identical;"
        " every obligation goes through the checker tiers)",
    )
    analyze.add_argument(
        "--stats", action="store_true",
        help="print the per-tier timing and cache hit/miss table",
    )
    analyze.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="executor for parallel obligation dispatch (with --workers > 1)",
    )
    analyze.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report (schema: docs/PIPELINE.md)",
    )
    analyze.set_defaults(func=cmd_analyze)

    certify = sub.add_parser(
        "certify", help="static chooser + exhaustive dynamic certification"
    )
    certify.add_argument("app")
    certify.add_argument("--ladder", choices=("ansi", "extended"), default="ansi")
    certify.add_argument("--seed", type=int, default=0)
    certify.add_argument("--budget", type=int, default=3000)
    certify.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="fan static obligations and exploration root branches across N threads",
    )
    certify.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="executor for parallel obligation dispatch (with --workers > 1)",
    )
    certify.add_argument(
        "--max-schedules", type=int, default=500,
        help="simulator-run budget per scenario exploration",
    )
    certify.add_argument(
        "--max-depth", type=int, default=None,
        help="scheduling-decision budget per explored run",
    )
    certify.add_argument(
        "--dpor", choices=("optimal", "lite"), default="optimal",
        help="exploration pruning: source-set race reversal (optimal)"
        " or sleep sets + state caching (lite)",
    )
    certify.add_argument(
        "--no-sdg", action="store_true",
        help="disable SDG obligation pre-pruning in the static layer",
    )
    certify.add_argument(
        "--cache-dir", nargs="?", const=".repro-cache", default=None, metavar="DIR",
        help="persistent verdict cache directory (bare flag: .repro-cache;"
        " default: $REPRO_CACHE_DIR, else persistence stays off)",
    )
    certify.add_argument(
        "--no-persist", action="store_true",
        help="never load or write the persistent verdict cache",
    )
    certify.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable certificate (schema: docs/PIPELINE.md)",
    )
    certify.set_defaults(func=cmd_certify)

    lint = sub.add_parser(
        "lint", help="static well-formedness + SDG dangerous-structure checks"
    )
    lint.add_argument(
        "apps", nargs="*",
        help="applications to lint (default: every bundled application)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit machine-readable findings (schema: docs/PIPELINE.md)",
    )
    lint.set_defaults(func=cmd_lint)

    infer = sub.add_parser(
        "infer", help="derive I/B/Q annotations statically and compare levels"
    )
    infer.add_argument(
        "app", help="bundled application name, appgen:<seed> or appgen:LO..HI"
    )
    infer.add_argument("--budget", type=int, default=3000)
    infer.add_argument("--seed", type=int, default=0)
    infer.add_argument("--workers", type=int, default=None, metavar="N")
    _add_appgen_flags(infer)
    infer.add_argument("--json", action="store_true")
    infer.set_defaults(func=cmd_infer)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential-fuzz static level choices against exhaustive"
        " exploration (docs/FUZZING.md)",
    )
    fuzz.add_argument(
        "app", nargs="?", default=None,
        help="appgen:<seed> or appgen:LO..HI seed range (or use --seeds)",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="fuzz seeds 0..N (shorthand for appgen:0..N)",
    )
    fuzz.add_argument(
        "--corpus-dir", default=".repro-corpus", metavar="DIR",
        help="corpus ledger directory (default: .repro-corpus)",
    )
    fuzz.add_argument(
        "--resume", action="store_true",
        help="resume from the corpus ledger (always on; settled seeds are"
        " answered from the ledger — delete DIR for a fresh corpus)",
    )
    fuzz.add_argument("--budget", type=int, default=1500,
                      help="interference-checker budget for the chooser pass")
    fuzz.add_argument(
        "--pairs", type=int, default=3,
        help="probe instance sets explored per seed",
    )
    fuzz.add_argument(
        "--max-schedules", type=int, default=96,
        help="simulator-run budget per probe exploration",
    )
    fuzz.add_argument(
        "--force-level", default=None, metavar="LEVEL",
        help="override the chooser with one level everywhere (the weakened-"
        "chooser fixture; e.g. 'READ COMMITTED')",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="skip greedy witness shrinking on UNSOUND findings",
    )
    _add_appgen_flags(fuzz)
    fuzz.add_argument(
        "--service", default=None, metavar="HOST:PORT",
        help="fan unsettled seeds out across a running fleet (repro serve"
        " --fleet N) instead of exploring locally",
    )
    fuzz.add_argument(
        "--inflight", type=int, default=8,
        help="concurrent in-flight fuzz jobs with --service",
    )
    fuzz.add_argument(
        "--deadline-ms", type=int, default=None,
        help="server-side deadline per fuzz job with --service",
    )
    fuzz.add_argument(
        "--json", action="store_true",
        help="emit the run summary plus lint-style findings as JSON",
    )
    fuzz.set_defaults(func=cmd_fuzz)

    explore = sub.add_parser(
        "explore", help="exhaustively enumerate one scenario's schedules"
    )
    explore.add_argument("app")
    explore.add_argument("--scenario", help="registered scenario name")
    explore.add_argument("--all", action="store_true", help="explore every scenario")
    explore.add_argument("--level", default="SERIALIZABLE", help="uniform level")
    explore.add_argument(
        "--levels", nargs="*", metavar="Txn=LEVEL",
        help="per-type level overrides (e.g. Withdraw_sav='READ COMMITTED')",
    )
    explore.add_argument("--max-schedules", type=int, default=500)
    explore.add_argument("--max-depth", type=int, default=None)
    explore.add_argument(
        "--dpor", choices=("optimal", "lite"), default="optimal",
        help="pruning algorithm: source-set race reversal (optimal)"
        " or sleep sets + state caching (lite)",
    )
    explore.add_argument(
        "--no-pruning", action="store_true",
        help="disable all pruning (full DFS)",
    )
    explore.add_argument("--no-retry", action="store_true", help="no abort-retry loop")
    explore.add_argument("--workers", type=int, default=None, metavar="N")
    explore.add_argument("--json", action="store_true")
    explore.set_defaults(func=cmd_explore)

    simulate = sub.add_parser("simulate", help="run a workload on the engine")
    simulate.add_argument("app")
    simulate.add_argument("--level", default="SERIALIZABLE")
    simulate.add_argument(
        "--levels", nargs="*", metavar="Txn=LEVEL",
        help="per-type level overrides for a mixed-level run"
        " (e.g. Deposit_sav='READ COMMITTED')",
    )
    simulate.add_argument("--size", type=int, default=10)
    simulate.add_argument("--hot", type=float, default=0.5)
    simulate.add_argument("--rounds", type=int, default=5)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--policy", choices=("random", "exhaustive"), default="random",
        help="scheduling policy: seeded random rounds or bounded exhaustive"
        " exploration",
    )
    simulate.add_argument(
        "--max-schedules", type=int, default=200,
        help="run budget with --policy exhaustive",
    )
    simulate.add_argument(
        "--guard", action="store_true",
        help="run under the assertional concurrency control (AssertionGuard)",
    )
    simulate.set_defaults(func=cmd_simulate)

    replay = sub.add_parser("replay", help="replay a history DSL script")
    replay.add_argument("history")
    replay.add_argument("--levels", nargs="*", metavar="N=LEVEL")
    replay.add_argument("--default-level", default="READ COMMITTED")
    replay.set_defaults(func=cmd_replay)

    serve = sub.add_parser(
        "serve", help="run the long-lived analysis service (docs/SERVICE.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8923,
        help="listen port (0 picks a free port, announced on stdout)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="job worker pool size (default 2)",
    )
    serve.add_argument(
        "--job-workers", type=int, default=1, metavar="N",
        help="obligation fan-out width inside each job (default 1)",
    )
    serve.add_argument(
        "--window-ms", type=float, default=5.0,
        help="batching window in milliseconds (0 dispatches immediately)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission cap: jobs admitted but unfinished before 429s",
    )
    serve.add_argument(
        "--max-body", type=int, default=1_000_000,
        help="maximum request body bytes before 413",
    )
    serve.add_argument(
        "--deadline-ms", type=int, default=None,
        help="default per-request deadline (requests may override)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds to wait for in-flight work on SIGTERM",
    )
    serve.add_argument(
        "--cache-dir", nargs="?", const=".repro-cache", default=None, metavar="DIR",
        help="persistent verdict store warmed at boot, flushed on drain"
        " (bare flag: .repro-cache; default: $REPRO_CACHE_DIR, else off)",
    )
    serve.add_argument(
        "--no-persist", action="store_true",
        help="never load or write the persistent verdict cache",
    )
    serve.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="executor for per-job obligation dispatch (with --job-workers > 1)",
    )
    serve.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help="run a sharded fleet: a consistent-hash router in front of"
        " N worker processes (0 = single-process service)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=32, metavar="N",
        help="router backpressure: in-flight forwarded requests per worker"
        " shard before 429 (with --fleet)",
    )
    serve.add_argument(
        "--persist-interval", type=float, default=None, metavar="SECONDS",
        help="flush/refresh the persistent verdict store every SECONDS"
        " (default: 5 for fleet workers with persistence on, else only"
        " at drain)",
    )
    serve.set_defaults(func=cmd_serve)

    compact = sub.add_parser(
        "compact", help="merge the persistent verdict store's segments into one"
    )
    compact.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="verdict store directory (default: $REPRO_CACHE_DIR, else"
        " .repro-cache)",
    )
    compact.set_defaults(func=cmd_compact)

    submit = sub.add_parser(
        "submit", help="send jobs to a running analysis service"
    )
    submit.add_argument("kind", choices=("analyze", "certify", "lint", "infer", "fuzz"))
    submit.add_argument(
        "apps", nargs="+",
        help="application name(s); infer/fuzz also accept appgen:<seed>",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8923)
    submit.add_argument(
        "--timeout", type=float, default=300.0, help="client socket timeout (seconds)"
    )
    submit.add_argument(
        "--deadline-ms", type=int, default=None,
        help="server-side deadline; late units come back with timed_out markers",
    )
    submit.add_argument("--budget", type=int, default=3000)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--ladder", choices=("ansi", "extended"), default="ansi")
    submit.add_argument("--snapshot", action="store_true")
    submit.add_argument("--transaction", help="analyze one transaction (with --level)")
    submit.add_argument("--level", help="analyze at one level (with --transaction)")
    submit.add_argument("--max-schedules", type=int, default=500)
    submit.add_argument("--max-depth", type=int, default=None)
    submit.add_argument("--dpor", choices=("optimal", "lite"), default="optimal")
    submit.add_argument("--no-sdg", action="store_true")
    submit.add_argument(
        "--pairs", type=int, default=3,
        help="probe instance sets per fuzz case (fuzz jobs only)",
    )
    submit.add_argument(
        "--knobs", default=None, metavar="KNOBS",
        help="generator knob string for appgen refs (infer/fuzz jobs;"
        " e.g. 'txns=3..5;accounts=2;balance=2;stmts=-;profile=-')",
    )
    submit.add_argument(
        "--json", action="store_true", help="print the full service response"
    )
    submit.add_argument(
        "--result-only", action="store_true",
        help="print only the result payload (byte-identical to the batch CLI's"
        " deterministic JSON; requires exactly one app)",
    )
    submit.set_defaults(func=cmd_submit)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        return EXIT_OK
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except Exception as exc:  # noqa: BLE001 - tracebacks are not a UI
        print(f"repro: internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
