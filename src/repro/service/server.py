"""The asyncio JSON-over-HTTP analysis server.

Stdlib only: :func:`asyncio.start_server` plus a hand-rolled HTTP/1.1
request parser (request line, headers, ``Content-Length`` body; chunked
uploads are refused with 501).  Every connection serves one request and is
closed — the clients this server exists for (CI jobs, benchmark loops,
``repro submit``) open cheap local connections, and one-shot connections
keep the drain logic exact.

Endpoints (schemas in ``docs/SERVICE.md``):

* ``POST /analyze`` / ``POST /certify`` / ``POST /lint`` / ``POST /infer`` — run jobs for
  one ``app`` or a list of ``apps``; options mirror the batch CLI flags.
  Responses carry per-unit ``result`` payloads byte-identical to the
  batch CLI's JSON (both fronts call :func:`repro.pipeline.jobs.run_job`).
* ``GET /healthz`` — liveness + drain state (503 while draining).
* ``GET /metrics`` — Prometheus text exposition of the telemetry registry.

Robustness invariants, each enforced here and pinned by tests:

* **admission control** — beyond ``max_pending`` queued jobs the server
  answers 429 *before* allocating any work (``Batcher.admit`` is
  synchronous), so a flood costs memory proportional to open sockets only;
* **deadlines** — a request-level ``deadline_ms`` returns whatever units
  finished in time plus ``timed_out`` markers for the rest; the late jobs
  keep running and warm the cache for the retry;
* **isolation** — a malformed request dies with a 400 and a crashing job
  is confined to its per-unit error entry; the loop and the shared verdict
  cache survive both;
* **lifecycle** — SIGTERM/SIGINT stop the listener, drain in-flight work
  (bounded by ``drain_timeout``), flush the persistent verdict store once,
  then exit; the store is also what ``start`` warms the cache from.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time

from repro.core.cache import VerdictCache
from repro.core.persist import open_store
from repro.errors import ReproError
from repro.pipeline.jobs import JobError, JobSpec, run_job
from repro.service.batcher import Batcher, QueueFullError
from repro.service.telemetry import ServiceTelemetry

#: HTTP status reasons for the subset of codes the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

#: Option fields a job request may carry besides app/apps/deadline_ms.
JOB_OPTION_FIELDS = (
    "budget", "seed", "ladder", "snapshot", "use_sdg",
    "transaction", "level", "max_schedules", "max_depth",
)


class _HttpError(ReproError):
    """Internal: abort the request with this status and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceConfig:
    """Tunables of one :class:`ReproService` (defaults suit local use)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8923,
        workers: int = 2,
        job_workers: int = 1,
        window: float = 0.005,
        max_pending: int = 64,
        max_body: int = 1_000_000,
        read_timeout: float = 30.0,
        drain_timeout: float = 30.0,
        default_deadline_ms: int | None = None,
        cache_dir: str | None = None,
        no_persist: bool = False,
        backend: str = "thread",
    ) -> None:
        self.host = host
        self.port = port
        self.workers = workers
        self.job_workers = job_workers
        self.window = window
        self.max_pending = max_pending
        self.max_body = max_body
        self.read_timeout = read_timeout
        self.drain_timeout = drain_timeout
        self.default_deadline_ms = default_deadline_ms
        self.cache_dir = cache_dir
        self.no_persist = no_persist
        self.backend = backend


class ReproService:
    """One warmed analysis process serving many requests."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.telemetry = ServiceTelemetry()
        self.cache = VerdictCache()
        self.telemetry.track_cache(self.cache)
        self.telemetry.track_storage()
        self.store = open_store(self.config.cache_dir, no_persist=self.config.no_persist)
        self.warmed_entries = 0
        self.batcher = Batcher(
            self._execute,
            workers=self.config.workers,
            window=self.config.window,
            max_pending=self.config.max_pending,
            telemetry=self.telemetry,
        )
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._started = time.monotonic()
        self._draining = False
        self._active = 0
        self._idle = None  # asyncio.Event set whenever _active == 0
        self._stopped = None  # asyncio.Event set when drain completes
        self._drain_task = None

    # -- job execution (pool threads) ----------------------------------------

    def _execute(self, spec: JobSpec):
        """The batcher's runner: one job on one pool thread, shared cache."""
        return run_job(
            spec,
            cache=self.cache,
            workers=self.config.job_workers,
            backend=self.config.backend,
            no_persist=True,  # the service owns persistence (boot/drain)
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Warm the cache from the persistent store and open the listener."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._started = time.monotonic()
        if self.store is not None:
            self.warmed_entries = self.store.load(self.cache)
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    def begin_drain(self) -> None:
        """Idempotently start the graceful shutdown sequence."""
        if self._draining:
            return
        self._draining = True
        self._drain_task = asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_timeout
        await self.batcher.drain(timeout=self.config.drain_timeout)
        # handlers finish right after their jobs resolve; give them the rest
        # of the drain budget to flush their responses
        remaining = max(0.0, deadline - time.monotonic())
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=remaining or 0.05)
        except asyncio.TimeoutError:  # pragma: no cover - only on stuck jobs
            pass
        if self.store is not None:
            self.store.flush(self.cache)
        self.batcher.shutdown()
        self._stopped.set()

    async def serve_forever(self) -> None:
        """Run until a signal (or :meth:`begin_drain`) completes the drain."""
        if self._server is None:
            await self.start()
        self.install_signal_handlers()
        await self._stopped.wait()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        self._active += 1
        self._idle.clear()
        self.telemetry.inflight_requests.inc()
        started = time.perf_counter()
        endpoint, status = "?", 500
        try:
            try:
                method, path, headers = await asyncio.wait_for(
                    self._read_head(reader), timeout=self.config.read_timeout
                )
            except asyncio.TimeoutError:
                raise _HttpError(408, "timed out reading request head")
            endpoint = path
            body = await self._read_body(reader, method, headers)
            status, payload, content_type = await self._route(method, path, body)
            await self._respond(writer, status, payload, content_type)
        except _HttpError as exc:
            status = exc.status
            await self._respond_safely(writer, exc.status, {"error": str(exc)})
        except (ConnectionError, asyncio.IncompleteReadError):
            status = 0  # client went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 - the loop must survive anything
            status = 500
            await self._respond_safely(
                writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.telemetry.inflight_requests.dec()
            self.telemetry.requests.inc(endpoint=endpoint, status=str(status))
            self.telemetry.request_seconds.observe(time.perf_counter() - started)
            self._active -= 1
            if self._active == 0:
                self._idle.set()

    async def _read_head(self, reader):
        request_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            if len(headers) > 100:
                raise _HttpError(400, "too many headers")
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method, path.split("?", 1)[0], headers

    async def _read_body(self, reader, method: str, headers: dict) -> bytes:
        if method != "POST":
            return b""
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _HttpError(501, "chunked uploads are not supported")
        raw_length = headers.get("content-length")
        if raw_length is None:
            raise _HttpError(411, "POST requires Content-Length")
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length {raw_length!r}")
        if length < 0:
            raise _HttpError(400, f"bad Content-Length {raw_length!r}")
        if length > self.config.max_body:
            raise _HttpError(
                413, f"request body of {length} bytes exceeds limit {self.config.max_body}"
            )
        try:
            return await asyncio.wait_for(
                reader.readexactly(length), timeout=self.config.read_timeout
            )
        except asyncio.TimeoutError:
            raise _HttpError(408, "timed out reading request body")

    # -- routing -------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "use GET /healthz")
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "use GET /metrics")
            return 200, self.telemetry.registry.render(), "text/plain; version=0.0.4"
        if path in ("/analyze", "/certify", "/lint", "/infer"):
            if method != "POST":
                raise _HttpError(405, f"use POST {path}")
            if self._draining:
                raise _HttpError(503, "service is draining")
            payload = await self._handle_jobs(path.lstrip("/"), body)
            return 200, payload, "application/json"
        raise _HttpError(404, f"no route for {path}")

    def _healthz(self):
        status = "draining" if self._draining else "ok"
        payload = {
            "status": status,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "queue_depth": self.batcher.admitted,
            "warmed_entries": self.warmed_entries,
            "cache_entries": len(self.cache),
        }
        return (503 if self._draining else 200), payload, "application/json"

    def _parse_jobs(self, kind: str, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        apps = payload.get("apps")
        if apps is None:
            app = payload.get("app")
            if not isinstance(app, str):
                raise _HttpError(400, "request needs an 'app' string or 'apps' list")
            apps = [app]
        if not isinstance(apps, list) or not all(isinstance(a, str) for a in apps):
            raise _HttpError(400, "'apps' must be a list of application names")
        if not apps:
            raise _HttpError(400, "'apps' must not be empty")
        deadline_ms = payload.get("deadline_ms", self.config.default_deadline_ms)
        if deadline_ms is not None and (
            not isinstance(deadline_ms, int) or deadline_ms <= 0
        ):
            raise _HttpError(400, "'deadline_ms' must be a positive integer")
        options = {
            key: payload[key] for key in JOB_OPTION_FIELDS if key in payload
        }
        unknown = set(payload) - set(JOB_OPTION_FIELDS) - {"app", "apps", "deadline_ms"}
        if unknown:
            raise _HttpError(400, f"unknown request fields: {', '.join(sorted(unknown))}")
        specs = []
        for app in apps:
            try:
                spec = JobSpec.from_dict({**options, "app": app}, kind=kind)
                spec.validate()
            except JobError as exc:
                raise _HttpError(400, str(exc))
            specs.append(spec)
        return specs, deadline_ms

    async def _handle_jobs(self, kind: str, body: bytes) -> dict:
        specs, deadline_ms = self._parse_jobs(kind, body)
        loop = asyncio.get_running_loop()
        cutoff = loop.time() + deadline_ms / 1000.0 if deadline_ms else None
        units = []
        try:
            for spec in specs:
                units.append((spec, *self.batcher.admit(spec)))
        except QueueFullError as exc:
            raise _HttpError(429, str(exc))
        entries = []
        any_timeout = False
        for spec, future, coalesced in units:
            entry = {
                "app": spec.app,
                "kind": spec.kind,
                "fingerprint": spec.fingerprint(),
                "coalesced": coalesced,
                "timed_out": False,
            }
            started = time.perf_counter()
            try:
                if cutoff is None:
                    result = await asyncio.shield(future)
                else:
                    remaining = cutoff - loop.time()
                    if remaining <= 0:
                        raise asyncio.TimeoutError
                    result = await asyncio.wait_for(asyncio.shield(future), remaining)
            except asyncio.TimeoutError:
                # the job keeps running and will warm the cache for a retry;
                # swallow its eventual outcome so nothing logs as unretrieved
                future.add_done_callback(_swallow_outcome)
                self.telemetry.timeouts.inc()
                entry["timed_out"] = True
                any_timeout = True
                entries.append(entry)
                continue
            except Exception as exc:  # noqa: BLE001 - per-unit isolation
                entry["error"] = f"{type(exc).__name__}: {exc}"
                entry["exit_code"] = 3
                entries.append(entry)
                continue
            entry["seconds"] = round(time.perf_counter() - started, 6)
            entry["exit_code"] = result.exit_code
            entry["result"] = result.payload
            entry["meta"] = result.extras
            entries.append(entry)
        return {"kind": kind, "results": entries, "timed_out": any_timeout}

    # -- responses -----------------------------------------------------------

    async def _respond(self, writer, status: int, payload, content_type: str) -> None:
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        else:
            body = str(payload).encode("utf-8")
        reason = REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if status == 429:
            head += "Retry-After: 1\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _respond_safely(self, writer, status: int, payload) -> None:
        try:
            await self._respond(writer, status, payload, "application/json")
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass


def _swallow_outcome(future) -> None:
    if not future.cancelled():
        future.exception()


async def _amain(config: ServiceConfig, announce=print) -> int:
    service = ReproService(config)
    await service.start()
    announce(
        f"repro service listening on http://{config.host}:{service.port}"
        f" (workers={config.workers}, max_pending={config.max_pending},"
        f" warmed {service.warmed_entries} verdicts)",
        flush=True,
    )
    await service.serve_forever()
    announce("repro service drained cleanly", flush=True)
    return 0


def serve(config: ServiceConfig | None = None) -> int:
    """Blocking entry point used by ``repro serve``."""
    return asyncio.run(_amain(config or ServiceConfig()))
