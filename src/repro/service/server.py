"""The asyncio JSON-over-HTTP analysis server.

Stdlib only: :func:`asyncio.start_server` plus the hand-rolled HTTP/1.1
layer in :mod:`repro.service.http` (request line, headers,
``Content-Length`` body; chunked uploads are refused with 501).
Connections are persistent by default — one connection may carry many
requests back to back, which is what the router's pooled
:class:`~repro.service.client.AsyncServiceClient` relies on to forward
work without a connect per request.  Clients that prefer one-shot
connections (the blocking client) simply close after the first response;
an EOF at a request boundary is a clean end, not an error.

Endpoints (schemas in ``docs/SERVICE.md``):

* ``POST /analyze`` / ``POST /certify`` / ``POST /lint`` / ``POST /infer`` — run jobs for
  one ``app`` or a list of ``apps``; options mirror the batch CLI flags.
  Responses carry per-unit ``result`` payloads byte-identical to the
  batch CLI's JSON (both fronts call :func:`repro.pipeline.jobs.run_job`).
* ``GET /healthz`` — liveness + drain state (503 while draining).
* ``GET /metrics`` — Prometheus text exposition of the telemetry registry.

Robustness invariants, each enforced here and pinned by tests:

* **admission control** — beyond ``max_pending`` queued jobs the server
  answers 429 *before* allocating any work (``Batcher.admit`` is
  synchronous), so a flood costs memory proportional to open sockets only;
* **deadlines** — a request-level ``deadline_ms`` returns whatever units
  finished in time plus ``timed_out`` markers for the rest; the late jobs
  keep running and warm the cache for the retry;
* **isolation** — a malformed request dies with a 400 and a crashing job
  is confined to its per-unit error entry; the loop and the shared verdict
  cache survive both;
* **lifecycle** — SIGTERM/SIGINT stop the listener, close idle keep-alive
  connections, drain in-flight work (bounded by ``drain_timeout``), flush
  the persistent verdict store once, then exit; the store is also what
  ``start`` warms the cache from.

As a fleet shard (``repro serve --fleet N`` spawns these as worker
processes) the server additionally runs a periodic persistence cycle
(``persist_interval``): flush newly decided verdicts as a fresh segment,
then refresh the cache from segments other shards persisted — the shared
``--cache-dir`` is the fleet's cross-process verdict bus.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

from repro.core.cache import VerdictCache
from repro.core.persist import open_store
from repro.errors import ReproError
from repro.pipeline.jobs import JobError, JobSpec, run_job
from repro.service.batcher import Batcher, QueueFullError
from repro.service.http import (
    REASONS,
    HttpError,
    read_body,
    read_head,
    wants_close,
    write_response,
)
from repro.service.telemetry import ServiceTelemetry

__all__ = [
    "REASONS", "JOB_OPTION_FIELDS", "ServiceConfig", "ReproService",
    "parse_job_payload", "serve",
]

#: Option fields a job request may carry besides app/apps/deadline_ms.
JOB_OPTION_FIELDS = (
    "budget", "seed", "ladder", "snapshot", "use_sdg",
    "transaction", "level", "max_schedules", "max_depth", "dpor",
    "profile", "pairs",
)

# backwards-compatible alias: the server's request-abort exception now
# lives in repro.service.http, shared with the fleet router
_HttpError = HttpError


class ServiceConfig:
    """Tunables of one :class:`ReproService` (defaults suit local use).

    Construction validates the numeric knobs outright: a ``workers=0``
    pool or a zero ``max_pending`` would not fail here but deep inside the
    batcher's first dispatch, long after the flags were parsed.  Every
    rejection is a :class:`~repro.errors.ReproError` naming the field, so
    the CLI renders it as a one-line usage error (exit 2).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8923,
        workers: int = 2,
        job_workers: int = 1,
        window: float = 0.005,
        max_pending: int = 64,
        max_body: int = 1_000_000,
        read_timeout: float = 30.0,
        drain_timeout: float = 30.0,
        default_deadline_ms: int | None = None,
        cache_dir: str | None = None,
        no_persist: bool = False,
        backend: str = "thread",
        persist_interval: float = 0.0,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = workers
        self.job_workers = job_workers
        self.window = window
        self.max_pending = max_pending
        self.max_body = max_body
        self.read_timeout = read_timeout
        self.drain_timeout = drain_timeout
        self.default_deadline_ms = default_deadline_ms
        self.cache_dir = cache_dir
        self.no_persist = no_persist
        self.backend = backend
        self.persist_interval = persist_interval
        self.validate()

    def validate(self) -> None:
        """Reject nonsensical tunables with a clear error (see class doc)."""
        if not isinstance(self.port, int) or not 0 <= self.port <= 65535:
            raise ReproError(f"port must be an integer in 0..65535, got {self.port!r}")
        for name, minimum in (
            ("workers", 1), ("job_workers", 1), ("max_pending", 1), ("max_body", 1),
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < minimum:
                raise ReproError(
                    f"{name} must be an integer >= {minimum}, got {value!r}"
                )
        for name, minimum in (
            ("window", 0.0), ("drain_timeout", 0.0), ("persist_interval", 0.0),
        ):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value < minimum:
                raise ReproError(f"{name} must be a number >= {minimum}, got {value!r}")
        if not isinstance(self.read_timeout, (int, float)) or self.read_timeout <= 0:
            raise ReproError(
                f"read_timeout must be a positive number, got {self.read_timeout!r}"
            )
        if self.default_deadline_ms is not None and (
            not isinstance(self.default_deadline_ms, int)
            or self.default_deadline_ms <= 0
        ):
            raise ReproError(
                "default_deadline_ms must be a positive integer or None,"
                f" got {self.default_deadline_ms!r}"
            )
        if self.backend not in ("thread", "process"):
            raise ReproError(
                f"backend must be 'thread' or 'process', got {self.backend!r}"
            )
        if self.persist_interval and self.no_persist:
            raise ReproError("persist_interval requires persistence to be enabled")


def parse_job_payload(kind: str, payload, default_deadline_ms: int | None = None):
    """Validate one job-request JSON object into ``(specs, deadline_ms, options)``.

    Shared by the worker server (which executes the specs) and the fleet
    router (which shards them by fingerprint and forwards the *options*
    verbatim so worker-side parsing reproduces identical specs).  Raises
    :class:`~repro.service.http.HttpError` (400) on any malformed field.
    """
    if not isinstance(payload, dict):
        raise HttpError(400, "request body must be a JSON object")
    apps = payload.get("apps")
    if apps is None:
        app = payload.get("app")
        if not isinstance(app, str):
            raise HttpError(400, "request needs an 'app' string or 'apps' list")
        apps = [app]
    if not isinstance(apps, list) or not all(isinstance(a, str) for a in apps):
        raise HttpError(400, "'apps' must be a list of application names")
    if not apps:
        raise HttpError(400, "'apps' must not be empty")
    deadline_ms = payload.get("deadline_ms", default_deadline_ms)
    if deadline_ms is not None and (
        not isinstance(deadline_ms, int) or deadline_ms <= 0
    ):
        raise HttpError(400, "'deadline_ms' must be a positive integer")
    options = {key: payload[key] for key in JOB_OPTION_FIELDS if key in payload}
    unknown = set(payload) - set(JOB_OPTION_FIELDS) - {"app", "apps", "deadline_ms"}
    if unknown:
        raise HttpError(400, f"unknown request fields: {', '.join(sorted(unknown))}")
    specs = []
    for app in apps:
        try:
            spec = JobSpec.from_dict({**options, "app": app}, kind=kind)
            spec.validate()
        except JobError as exc:
            raise HttpError(400, str(exc))
        specs.append(spec)
    return specs, deadline_ms, options


class ReproService:
    """One warmed analysis process serving many requests."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.telemetry = ServiceTelemetry()
        self.cache = VerdictCache()
        self.telemetry.track_cache(self.cache)
        self.telemetry.track_storage()
        self.store = open_store(self.config.cache_dir, no_persist=self.config.no_persist)
        self.warmed_entries = 0
        self.batcher = Batcher(
            self._execute,
            workers=self.config.workers,
            window=self.config.window,
            max_pending=self.config.max_pending,
            telemetry=self.telemetry,
        )
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._started = time.monotonic()
        self._draining = False
        self._active = 0  # requests currently being parsed/served
        self._connections: dict = {}  # writer -> busy flag (idle keep-alives)
        self._idle = None  # asyncio.Event set whenever _active == 0
        self._stopped = None  # asyncio.Event set when drain completes
        self._drain_task = None
        self._persist_task = None

    # -- job execution (pool threads) ----------------------------------------

    def _execute(self, spec: JobSpec):
        """The batcher's runner: one job on one pool thread, shared cache."""
        return run_job(
            spec,
            cache=self.cache,
            workers=self.config.job_workers,
            backend=self.config.backend,
            no_persist=True,  # the service owns persistence (boot/drain/cycle)
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Warm the cache from the persistent store and open the listener."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._started = time.monotonic()
        if self.store is not None:
            self.warmed_entries = self.store.load(self.cache)
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.store is not None and self.config.persist_interval > 0:
            self._persist_task = asyncio.get_running_loop().create_task(
                self._persist_cycle()
            )

    async def _persist_cycle(self) -> None:
        """Fleet mode: periodically flush our verdicts, absorb other shards'.

        Flush-then-refresh makes the shared cache directory a cross-process
        verdict bus: every shard's newly decided verdicts become a segment,
        and every shard absorbs the segments it has not seen yet.  Run in a
        worker thread — segment IO must never stall the accept loop.
        """
        interval = self.config.persist_interval
        while not self._draining:
            await asyncio.sleep(interval)
            if self._draining:
                return
            try:
                await asyncio.to_thread(self._persist_once)
            except Exception:  # noqa: BLE001 - persistence is best-effort
                pass

    def _persist_once(self) -> None:
        self.store.flush(self.cache)
        self.store.refresh(self.cache)

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    def begin_drain(self) -> None:
        """Idempotently start the graceful shutdown sequence."""
        if self._draining:
            return
        self._draining = True
        self._drain_task = asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._persist_task is not None:
            self._persist_task.cancel()
        # idle keep-alive connections hold no work; close them so the
        # request loop sees EOF and exits cleanly
        for writer, busy in list(self._connections.items()):
            if not busy:
                writer.close()
        deadline = time.monotonic() + self.config.drain_timeout
        await self.batcher.drain(timeout=self.config.drain_timeout)
        # handlers finish right after their jobs resolve; give them the rest
        # of the drain budget to flush their responses
        remaining = max(0.0, deadline - time.monotonic())
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=remaining or 0.05)
        except asyncio.TimeoutError:  # pragma: no cover - only on stuck jobs
            pass
        if self.store is not None:
            self.store.flush(self.cache)
        self.batcher.shutdown()
        self._stopped.set()

    async def serve_forever(self) -> None:
        """Run until a signal (or :meth:`begin_drain`) completes the drain."""
        if self._server is None:
            await self.start()
        self.install_signal_handlers()
        await self._stopped.wait()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        """Serve one connection: a keep-alive loop of request/response."""
        self._connections[writer] = False
        try:
            first = True
            while True:
                keep_alive = await self._serve_one(reader, writer, first)
                first = False
                if not keep_alive:
                    break
        finally:
            self._connections.pop(writer, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(self, reader, writer, first: bool) -> bool:
        """Serve one request; returns whether the connection stays open."""
        try:
            head = await asyncio.wait_for(
                read_head(reader), timeout=self.config.read_timeout
            )
        except asyncio.TimeoutError:
            if first:
                # a fresh connection that never sent a head gets told why;
                # an idle keep-alive just expires silently
                await self._begin_request(writer)
                try:
                    await self._respond_safely(
                        writer, 408, {"error": "timed out reading request head"}
                    )
                    self._count(408, "?", time.perf_counter())
                finally:
                    self._end_request(writer)
            return False
        except (ConnectionError, asyncio.IncompleteReadError):
            return False
        if head is None:
            return False  # clean EOF between requests
        self._begin_request(writer)
        started = time.perf_counter()
        endpoint, status = "?", 500
        keep_alive = True
        try:
            method, path, headers = head
            endpoint = path
            if wants_close(headers):
                keep_alive = False
            body = await read_body(
                reader, method, headers,
                max_body=self.config.max_body,
                read_timeout=self.config.read_timeout,
            )
            status, payload, content_type = await self._route(method, path, body)
            if self._draining:
                keep_alive = False
            await write_response(
                writer, status, payload, content_type, keep_alive=keep_alive
            )
        except HttpError as exc:
            status = exc.status
            keep_alive = keep_alive and status in (404, 405, 429, 503) and not self._draining
            await self._respond_safely(
                writer, exc.status, {"error": str(exc)}, keep_alive=keep_alive
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            status = 0  # client went away; nothing to answer
            keep_alive = False
        except Exception as exc:  # noqa: BLE001 - the loop must survive anything
            status = 500
            keep_alive = False
            await self._respond_safely(
                writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        finally:
            self._count(status, endpoint, started)
            self._end_request(writer)
        return keep_alive

    def _begin_request(self, writer) -> None:
        self._active += 1
        if writer in self._connections:
            self._connections[writer] = True
        self._idle.clear()
        self.telemetry.inflight_requests.inc()

    def _end_request(self, writer) -> None:
        self.telemetry.inflight_requests.dec()
        if writer in self._connections:
            self._connections[writer] = False
        self._active -= 1
        if self._active == 0:
            self._idle.set()

    def _count(self, status: int, endpoint: str, started: float) -> None:
        self.telemetry.requests.inc(endpoint=endpoint, status=str(status))
        self.telemetry.request_seconds.observe(time.perf_counter() - started)

    # -- routing -------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET /healthz")
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "use GET /metrics")
            return 200, self.telemetry.registry.render(), "text/plain; version=0.0.4"
        if path in ("/analyze", "/certify", "/lint", "/infer", "/fuzz"):
            if method != "POST":
                raise HttpError(405, f"use POST {path}")
            if self._draining:
                raise HttpError(503, "service is draining")
            payload = await self._handle_jobs(path.lstrip("/"), body)
            return 200, payload, "application/json"
        raise HttpError(404, f"no route for {path}")

    def _healthz(self):
        status = "draining" if self._draining else "ok"
        payload = {
            "status": status,
            "pid": os.getpid(),
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "queue_depth": self.batcher.admitted,
            "warmed_entries": self.warmed_entries,
            "cache_entries": len(self.cache),
        }
        return (503 if self._draining else 200), payload, "application/json"

    def _parse_jobs(self, kind: str, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        specs, deadline_ms, _options = parse_job_payload(
            kind, payload, self.config.default_deadline_ms
        )
        return specs, deadline_ms

    async def _handle_jobs(self, kind: str, body: bytes) -> dict:
        specs, deadline_ms = self._parse_jobs(kind, body)
        loop = asyncio.get_running_loop()
        cutoff = loop.time() + deadline_ms / 1000.0 if deadline_ms else None
        units = []
        try:
            for spec in specs:
                units.append((spec, *self.batcher.admit(spec)))
        except QueueFullError as exc:
            raise HttpError(429, str(exc))
        entries = []
        any_timeout = False
        for spec, future, coalesced in units:
            entry = {
                "app": spec.app,
                "kind": spec.kind,
                "fingerprint": spec.fingerprint(),
                "coalesced": coalesced,
                "timed_out": False,
            }
            started = time.perf_counter()
            try:
                if cutoff is None:
                    result = await asyncio.shield(future)
                else:
                    remaining = cutoff - loop.time()
                    if remaining <= 0:
                        raise asyncio.TimeoutError
                    result = await asyncio.wait_for(asyncio.shield(future), remaining)
            except asyncio.TimeoutError:
                # the job keeps running and will warm the cache for a retry;
                # swallow its eventual outcome so nothing logs as unretrieved
                future.add_done_callback(_swallow_outcome)
                self.telemetry.timeouts.inc()
                entry["timed_out"] = True
                any_timeout = True
                entries.append(entry)
                continue
            except Exception as exc:  # noqa: BLE001 - per-unit isolation
                entry["error"] = f"{type(exc).__name__}: {exc}"
                entry["exit_code"] = 3
                entries.append(entry)
                continue
            entry["seconds"] = round(time.perf_counter() - started, 6)
            entry["exit_code"] = result.exit_code
            entry["result"] = result.payload
            entry["meta"] = result.extras
            entries.append(entry)
        return {"kind": kind, "results": entries, "timed_out": any_timeout}

    # -- responses -----------------------------------------------------------

    async def _respond_safely(
        self, writer, status: int, payload, keep_alive: bool = False
    ) -> None:
        try:
            await write_response(
                writer, status, payload, "application/json", keep_alive=keep_alive
            )
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass


def _swallow_outcome(future) -> None:
    if not future.cancelled():
        future.exception()


async def _amain(config: ServiceConfig, announce=print) -> int:
    service = ReproService(config)
    await service.start()
    announce(
        f"repro service listening on http://{config.host}:{service.port}"
        f" (workers={config.workers}, max_pending={config.max_pending},"
        f" warmed {service.warmed_entries} verdicts)",
        flush=True,
    )
    await service.serve_forever()
    announce("repro service drained cleanly", flush=True)
    return 0


def serve(config: ServiceConfig | None = None) -> int:
    """Blocking entry point used by ``repro serve``."""
    return asyncio.run(_amain(config or ServiceConfig()))
