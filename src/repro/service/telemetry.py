"""Service telemetry: counters, gauges and fixed-bucket histograms.

Designed for the service's thread mix — asyncio handlers on the loop
thread, job execution on pool threads — without locks: every mutation is a
single ``+=`` / ``=`` on an int slot, which the GIL makes indivisible
enough for monitoring (a lost increment under a torn read is acceptable
drift; a crash or a deadlock is not, and lock-free code cannot have
either).  Rendering takes a point-in-time snapshot and never blocks
writers.

Histograms use *fixed* cumulative buckets chosen once at construction —
the Prometheus model — so observation is O(#buckets) worst case with no
allocation, and quantiles are estimated by linear interpolation inside the
winning bucket (:meth:`Histogram.quantile`), which is exactly as precise
as the bucket layout and therefore honest about its own resolution.

The same primitives back the batch CLI's ``--stats`` enrichment
(``repro analyze --stats`` renders a :class:`Registry` summary) and the
E15 benchmark's latency accounting, so one schema serves all three
surfaces; ``GET /metrics`` renders the registry in Prometheus text
exposition format (version 0.0.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default latency buckets (seconds): 1 ms .. 60 s, roughly ×2.5 per step.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


@dataclass
class Counter:
    """A monotonically increasing count, optionally split by label values."""

    name: str
    help: str = ""
    _values: dict = field(default_factory=dict)

    def inc(self, amount: int = 1, **labels) -> None:
        key = tuple(sorted(labels.items()))
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> int:
        if labels:
            return self._values.get(tuple(sorted(labels.items())), 0)
        return sum(self._values.values())

    def render(self) -> list:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        if not self._values:
            lines.append(f"{self.name} 0")
            return lines
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_format_labels(dict(key))}"
                f" {_format_value(float(self._values[key]))}"
            )
        return lines

    def snapshot(self) -> dict:
        if not self._values:
            return {"total": 0}
        out = {"total": self.value()}
        for key, count in sorted(self._values.items()):
            if key:
                out[",".join(f"{k}={v}" for k, v in key)] = count
        return out


@dataclass
class Gauge:
    """A point-in-time value (queue depth, in-flight requests, …)."""

    name: str
    help: str = ""
    _value: float = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    def value(self) -> float:
        return self._value

    def render(self) -> list:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} gauge",
            f"{self.name} {_format_value(float(self._value))}",
        ]

    def snapshot(self) -> dict:
        return {"value": self._value}


class Histogram:
    """Fixed-bucket cumulative histogram with quantile estimation."""

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        # one extra slot for the +Inf bucket; slots are *non*-cumulative
        # internally and accumulated only at render/quantile time, so
        # observe() touches exactly one slot
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self._counts[index] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1), interpolated within its bucket."""
        if self._count == 0:
            return 0.0
        target = q * self._count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            bucket = self._counts[i]
            if cumulative + bucket >= target:
                if bucket == 0:
                    return bound
                fraction = (target - cumulative) / bucket
                return lower + fraction * (bound - lower)
            cumulative += bucket
            lower = bound
        return self.buckets[-1] if self.buckets else 0.0

    def render(self) -> list:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        cumulative = 0
        for i, bound in enumerate(self.buckets):
            cumulative += self._counts[i]
            lines.append(f'{self.name}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
        lines.append(f"{self.name}_sum {_format_value(self._sum)}")
        lines.append(f"{self.name}_count {self._count}")
        return lines

    def snapshot(self) -> dict:
        return {
            "count": self._count,
            "sum": round(self._sum, 6),
            "mean": round(self.mean, 6),
            "p50": round(self.quantile(0.50), 6),
            "p99": round(self.quantile(0.99), 6),
        }


class Registry:
    """An ordered collection of metrics with one rendering surface."""

    def __init__(self) -> None:
        self._metrics: dict = {}
        self._collectors: list = []

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(name, Gauge(name, help))

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._register(name, Histogram(name, help, buckets))

    def _register(self, name: str, metric):
        if name in self._metrics:
            raise ValueError(f"metric {name!r} already registered")
        self._metrics[name] = metric
        return metric

    def add_collector(self, collector) -> None:
        """Register a callable returning ``{metric_name: value}`` metrics.

        Collectors surface externally owned state (e.g. the shared verdict
        cache's hit/miss totals, the storage layer's capture/vacuum stats)
        without copying it on every mutation; they are polled at render
        time only.  A scalar value renders as a gauge (counter when the
        name ends in ``_total``); a dict of the shape
        ``{"buckets": {le: cumulative}, "sum": s, "count": n}`` — the
        engine histograms' :meth:`~repro.engine.storage._FixedHistogram.expose`
        contract — renders as a full Prometheus histogram.
        """
        self._collectors.append(collector)

    @staticmethod
    def _is_histogram_value(value) -> bool:
        return isinstance(value, dict) and "buckets" in value

    def render(self) -> str:
        """Prometheus text exposition format (one trailing newline)."""
        lines = []
        for metric in self._metrics.values():
            lines.extend(metric.render())
        for collector in self._collectors:
            for name, value in sorted(collector().items()):
                if self._is_histogram_value(value):
                    lines.append(f"# TYPE {name} histogram")
                    for bound, cumulative in sorted(value["buckets"].items()):
                        lines.append(f'{name}_bucket{{le="{bound}"}} {cumulative}')
                    lines.append(f'{name}_bucket{{le="+Inf"}} {value["count"]}')
                    lines.append(f"{name}_sum {_format_value(float(value['sum']))}")
                    lines.append(f"{name}_count {value['count']}")
                else:
                    kind = "counter" if name.endswith("_total") else "gauge"
                    lines.append(f"# TYPE {name} {kind}")
                    lines.append(f"{name} {_format_value(float(value))}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-friendly snapshot (the /healthz and --stats surface)."""
        out = {name: metric.snapshot() for name, metric in self._metrics.items()}
        for collector in self._collectors:
            for name, value in collector().items():
                if self._is_histogram_value(value):
                    count = value["count"]
                    total = value["sum"]
                    out[name] = {
                        "count": count,
                        "sum": round(total, 9),
                        "mean": round(total / count, 9) if count else 0.0,
                    }
                else:
                    out[name] = {"value": value}
        return out


@dataclass
class ServiceTelemetry:
    """The service's pre-declared metric set (schema in docs/SERVICE.md)."""

    registry: Registry = field(default_factory=Registry)

    def __post_init__(self) -> None:
        reg = self.registry
        self.requests = reg.counter(
            "repro_requests_total", "HTTP requests by endpoint and status code"
        )
        self.request_seconds = reg.histogram(
            "repro_request_seconds", "End-to-end request latency (seconds)"
        )
        self.jobs = reg.counter(
            "repro_jobs_total", "Jobs executed by kind and outcome"
        )
        self.job_seconds = reg.histogram(
            "repro_job_seconds", "Single-job execution latency (seconds)"
        )
        self.batches = reg.counter("repro_batches_total", "Dispatched job batches")
        self.batch_size = reg.histogram(
            "repro_batch_size", "Jobs per dispatched batch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self.coalesced = reg.counter(
            "repro_coalesced_total", "Requests answered by an in-flight duplicate"
        )
        self.rejected = reg.counter(
            "repro_rejected_total", "Requests rejected by admission control (429)"
        )
        self.timeouts = reg.counter(
            "repro_deadline_timeouts_total", "Jobs that missed their request deadline"
        )
        self.queue_depth = reg.gauge(
            "repro_queue_depth", "Jobs admitted but not yet finished"
        )
        self.inflight_requests = reg.gauge(
            "repro_inflight_requests", "HTTP requests currently being served"
        )

    def track_cache(self, cache) -> None:
        """Expose a VerdictCache's counters as collected gauges."""

        def collect() -> dict:
            stats = cache.stats
            return {
                "repro_verdict_cache_hits": stats.hits,
                "repro_verdict_cache_misses": stats.misses,
                "repro_verdict_cache_entries": len(cache),
                "repro_verdict_cache_persist_hits": stats.persist_hits,
            }

        self.registry.add_collector(collect)

    def track_storage(self, stats=None) -> None:
        """Expose the MVCC store's capture/vacuum stats as collected metrics.

        ``stats`` defaults to the process-wide
        :data:`repro.engine.storage.STORAGE_STATS` every engine reports
        into; every analysis job the service executes in-process feeds it.
        """
        if stats is None:
            from repro.engine.storage import STORAGE_STATS as stats

        def collect() -> dict:
            return {
                "repro_storage_snapshot_captures_total": stats.snapshot_captures,
                "repro_storage_snapshot_capture_seconds": stats.capture_seconds.expose(),
                "repro_storage_vacuum_passes_total": stats.vacuum_passes,
                "repro_storage_vacuum_reclaimed_total": stats.vacuum_reclaimed,
                "repro_storage_vacuum_seconds": stats.vacuum_seconds.expose(),
            }

        self.registry.add_collector(collect)
