"""The fleet router: one front door, N analysis worker processes.

``repro serve --fleet N`` turns the single-process analysis service into
a multi-process fleet.  The router owns the listening socket and speaks
the exact single-server HTTP API (same endpoints, same schemas, same
status codes — a client cannot tell the difference); behind it, N worker
processes each run a full :class:`~repro.service.server.ReproService` on
an ephemeral port.

**Sharding.**  Every job unit is routed by the consistent hash of its
:class:`~repro.pipeline.jobs.JobSpec` fingerprint — the same key the
worker's batcher coalesces on.  Identical jobs therefore always land on
the same shard, which preserves the coalescing/micro-batching win of the
single-process service *per shard* while distinct jobs spread across all
cores.  The hash ring gives each worker ``vnodes`` points; when a worker
dies only its arc rebalances onto the survivors, and when it respawns
(same worker id, same points) its keys come back — warm per-shard caches
stay warm through a bounce.

**Failure handling.**  A worker that exits or stops answering is removed
from the ring and respawned with capped exponential backoff.  In-flight
forwards to a dead worker are retried on the rebalanced ring (bounded
attempts with growing delays that cover one respawn window), so a worker
crash degrades to added latency, not 5xx storms.  Units that remain
unroutable after the retry budget come back as per-unit ``error``
entries — the same shape a crashed job has in the single server.

**Backpressure.**  The router tracks in-flight forwarded requests per
worker; a request whose target shard is at ``max_inflight`` is answered
429 + ``Retry-After`` before anything is forwarded, mirroring the
worker's own synchronous admission control one layer out.

**Persistence.**  Workers share one ``--cache-dir``: each shard
periodically flushes its verdicts and refreshes from segments other
shards wrote (``persist_interval``), and compaction of the shared
directory is serialised by the advisory claim protocol in
:mod:`repro.core.persist` — see ``repro compact``.

**Telemetry.**  ``GET /metrics`` renders the router's own registry plus
every live worker's scrape with a ``worker="<id>"`` label injected into
each sample (HELP/TYPE lines deduplicated), so one scrape sees the whole
fleet.  ``GET /healthz`` reports per-worker pid/port/health — which is
also how the CI smoke job finds a victim to kill.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import os
import re
import signal
import sys
import time

from repro.errors import ReproError
from repro.service.client import (
    AsyncServiceClient,
    ServiceBusyError,
    ServiceConnectionError,
    ServiceError,
)
from repro.service.http import (
    HttpError,
    read_body,
    read_head,
    wants_close,
    write_response,
)
from repro.service.server import ServiceConfig, parse_job_payload
from repro.service.telemetry import Registry

#: Virtual points per worker on the hash ring.
DEFAULT_VNODES = 64

#: How the worker announces its bound port on stdout (server._amain).
_ANNOUNCE_RE = re.compile(r"listening on http://[^:]+:(\d+)")


def _ring_hash(key: str) -> int:
    return int(hashlib.sha256(key.encode("utf-8")).hexdigest()[:16], 16)


class HashRing:
    """Consistent hashing with virtual nodes.

    Deterministic: the points of worker ``i`` depend only on ``i`` and
    ``vnodes``, so every router instance (and a respawned worker) agrees
    on the mapping, and removing a worker moves only the keys on its arc.
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        self.vnodes = vnodes
        self._hashes: list[int] = []  # sorted point hashes
        self._owners: list[int] = []  # worker id per point, same order

    def _points(self, worker_id: int):
        return (_ring_hash(f"worker-{worker_id}#{r}") for r in range(self.vnodes))

    def add(self, worker_id: int) -> None:
        for point in self._points(worker_id):
            index = bisect.bisect_left(self._hashes, point)
            self._hashes.insert(index, point)
            self._owners.insert(index, worker_id)

    def remove(self, worker_id: int) -> None:
        keep = [
            (h, w) for h, w in zip(self._hashes, self._owners) if w != worker_id
        ]
        self._hashes = [h for h, _ in keep]
        self._owners = [w for _, w in keep]

    def members(self) -> set:
        return set(self._owners)

    def __len__(self) -> int:
        return len(self.members())

    def lookup(self, key: str) -> int:
        """The worker owning ``key``; raises :class:`ReproError` when empty."""
        if not self._hashes:
            raise ReproError("hash ring is empty (no healthy workers)")
        index = bisect.bisect_right(self._hashes, _ring_hash(key))
        if index == len(self._hashes):
            index = 0  # wrap around
        return self._owners[index]


class WorkerBootError(ReproError):
    """A worker process failed to come up and announce its port."""


class FleetConfig:
    """Tunables of one :class:`FleetRouter`.

    ``worker`` is the :class:`~repro.service.server.ServiceConfig` every
    worker process is started with (its ``port`` is forced to 0 — workers
    always bind ephemeral ports and announce them on stdout).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8923,
        fleet: int = 2,
        worker: ServiceConfig | None = None,
        max_inflight: int = 32,
        vnodes: int = DEFAULT_VNODES,
        health_interval: float = 0.25,
        boot_timeout: float = 60.0,
        max_body: int = 1_000_000,
        read_timeout: float = 30.0,
        drain_timeout: float = 30.0,
        respawn_backoff: float = 0.2,
        pool_size: int = 16,
        forward_timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.fleet = fleet
        self.worker = worker or ServiceConfig()
        self.max_inflight = max_inflight
        self.vnodes = vnodes
        self.health_interval = health_interval
        self.boot_timeout = boot_timeout
        self.max_body = max_body
        self.read_timeout = read_timeout
        self.drain_timeout = drain_timeout
        self.respawn_backoff = respawn_backoff
        self.pool_size = pool_size
        self.forward_timeout = forward_timeout
        self.validate()

    def validate(self) -> None:
        if not isinstance(self.fleet, int) or self.fleet < 1:
            raise ReproError(f"fleet size must be an integer >= 1, got {self.fleet!r}")
        for name, minimum in (("max_inflight", 1), ("vnodes", 1), ("pool_size", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or value < minimum:
                raise ReproError(
                    f"{name} must be an integer >= {minimum}, got {value!r}"
                )
        for name in ("health_interval", "boot_timeout", "drain_timeout",
                     "respawn_backoff", "forward_timeout", "read_timeout"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ReproError(f"{name} must be a positive number, got {value!r}")


class Worker:
    """One worker process slot: subprocess, pooled client, health state."""

    def __init__(self, worker_id: int, config: FleetConfig) -> None:
        self.id = worker_id
        self.config = config
        self.process: asyncio.subprocess.Process | None = None
        self.client: AsyncServiceClient | None = None
        self.port: int | None = None
        self.healthy = False
        self.inflight = 0  # forwarded requests outstanding (router view)
        self.restarts = 0
        self.respawn_at = 0.0  # monotonic gate for the next respawn attempt
        self._pump_task = None

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def _command(self) -> list:
        worker = self.config.worker
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", worker.host,
            "--port", "0",
            "--workers", str(worker.workers),
            "--job-workers", str(worker.job_workers),
            "--window-ms", str(worker.window * 1000.0),
            "--queue-limit", str(worker.max_pending),
            "--max-body", str(worker.max_body),
            "--drain-timeout", str(worker.drain_timeout),
            "--backend", worker.backend,
        ]
        if worker.default_deadline_ms is not None:
            cmd += ["--deadline-ms", str(worker.default_deadline_ms)]
        if worker.no_persist:
            cmd += ["--no-persist"]
        else:
            if worker.cache_dir is not None:
                cmd += ["--cache-dir", str(worker.cache_dir)]
            if worker.persist_interval > 0:
                # REPRO_CACHE_DIR may supply the directory via the child's
                # environment even when no --cache-dir was given
                cmd += ["--persist-interval", str(worker.persist_interval)]
        return cmd

    async def spawn(self) -> None:
        """Start the process and wait for its port announcement."""
        env = dict(os.environ)
        # make the repro package importable in the child no matter how the
        # router itself was launched (pytest, pip install -e, PYTHONPATH)
        src = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        self.process = await asyncio.create_subprocess_exec(
            *self._command(),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=env,
        )
        deadline = time.monotonic() + self.config.boot_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerBootError(
                    f"worker {self.id} did not announce a port within"
                    f" {self.config.boot_timeout}s"
                )
            try:
                raw = await asyncio.wait_for(
                    self.process.stdout.readline(), timeout=remaining
                )
            except asyncio.TimeoutError:
                continue
            if not raw:
                code = await self.process.wait()
                raise WorkerBootError(
                    f"worker {self.id} exited with code {code} before announcing"
                )
            match = _ANNOUNCE_RE.search(raw.decode("utf-8", "replace"))
            if match:
                self.port = int(match.group(1))
                break
        self.client = AsyncServiceClient(
            self.config.worker.host, self.port,
            pool_size=self.config.pool_size,
            timeout=self.config.forward_timeout,
        )
        self.healthy = True
        self._pump_task = asyncio.get_running_loop().create_task(self._pump())

    async def _pump(self) -> None:
        """Drain the worker's remaining output so its pipe never fills."""
        try:
            while True:
                raw = await self.process.stdout.readline()
                if not raw:
                    return
                line = raw.decode("utf-8", "replace").rstrip()
                if line:
                    print(f"[worker {self.id}] {line}", file=sys.stderr, flush=True)
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            return

    def mark_dead(self) -> None:
        self.healthy = False

    @property
    def exited(self) -> bool:
        return self.process is None or self.process.returncode is not None

    async def close(self) -> None:
        if self.client is not None:
            await self.client.aclose()
        if self._pump_task is not None:
            self._pump_task.cancel()

    def terminate(self) -> None:
        if self.process is not None and self.process.returncode is None:
            try:
                self.process.terminate()
            except ProcessLookupError:  # pragma: no cover - exit race
                pass

    def kill(self) -> None:
        if self.process is not None and self.process.returncode is None:
            try:
                self.process.kill()
            except ProcessLookupError:  # pragma: no cover - exit race
                pass


class RouterTelemetry:
    """The router's own metric set (worker metrics are scraped, not mirrored)."""

    def __init__(self) -> None:
        self.registry = Registry()
        self.requests = self.registry.counter(
            "repro_router_requests_total", "HTTP requests by endpoint and status code"
        )
        self.request_seconds = self.registry.histogram(
            "repro_router_request_seconds", "End-to-end routed request latency (seconds)"
        )
        self.forwards = self.registry.counter(
            "repro_router_forwards_total", "Sub-requests forwarded, by worker"
        )
        self.forward_retries = self.registry.counter(
            "repro_router_forward_retries_total",
            "Sub-requests re-routed after a worker failure",
        )
        self.rejected = self.registry.counter(
            "repro_router_rejected_total", "Requests rejected by shard backpressure (429)"
        )
        self.respawns = self.registry.counter(
            "repro_router_respawns_total", "Worker processes respawned after death"
        )
        self.unroutable = self.registry.counter(
            "repro_router_unroutable_total",
            "Job units that exhausted the forward retry budget",
        )
        self.workers = self.registry.gauge(
            "repro_fleet_workers", "Configured fleet size"
        )
        self.healthy = self.registry.gauge(
            "repro_fleet_healthy_workers", "Workers currently on the hash ring"
        )
        self.inflight = self.registry.gauge(
            "repro_router_inflight_requests", "HTTP requests currently being routed"
        )


class FleetRouter:
    """The front process: accept, shard, forward, aggregate, supervise."""

    def __init__(self, config: FleetConfig | None = None) -> None:
        self.config = config or FleetConfig()
        self.telemetry = RouterTelemetry()
        self.ring = HashRing(vnodes=self.config.vnodes)
        self.workers = [Worker(i, self.config) for i in range(self.config.fleet)]
        self.port: int | None = None
        self._server = None
        self._monitor_task = None
        self._started = time.monotonic()
        self._draining = False
        self._active = 0
        self._connections: dict = {}
        self._idle = None
        self._stopped = None
        self._drain_task = None
        self.telemetry.workers.set(self.config.fleet)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the fleet, build the ring, open the listener."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._started = time.monotonic()
        results = await asyncio.gather(
            *(worker.spawn() for worker in self.workers), return_exceptions=True
        )
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            for worker in self.workers:
                worker.terminate()
            raise WorkerBootError(
                f"{len(failures)}/{len(self.workers)} workers failed to boot:"
                f" {failures[0]}"
            )
        for worker in self.workers:
            self.ring.add(worker.id)
        self.telemetry.healthy.set(len(self.ring))
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._monitor_task = asyncio.get_running_loop().create_task(self._monitor())

    async def _monitor(self) -> None:
        """Detect dead workers, pull them off the ring, respawn with backoff."""
        while not self._draining:
            await asyncio.sleep(self.config.health_interval)
            for worker in self.workers:
                if self._draining:
                    return
                if worker.healthy and worker.exited:
                    self._demote(worker)
                if not worker.healthy and worker.exited:
                    if time.monotonic() < worker.respawn_at:
                        continue
                    await self._respawn(worker)

    def _demote(self, worker: Worker) -> None:
        """Take a dead or unresponsive worker off the ring (idempotent)."""
        if worker.healthy:
            worker.mark_dead()
        if worker.id in self.ring.members():
            self.ring.remove(worker.id)
            self.telemetry.healthy.set(len(self.ring))
        backoff = min(
            5.0, self.config.respawn_backoff * (2 ** min(worker.restarts, 5))
        )
        worker.respawn_at = time.monotonic() + backoff

    async def _respawn(self, worker: Worker) -> None:
        await worker.close()
        worker.restarts += 1
        try:
            await worker.spawn()
        except WorkerBootError:
            self._demote(worker)  # try again after a longer backoff
            return
        if self._draining:
            worker.terminate()
            return
        self.ring.add(worker.id)
        self.telemetry.healthy.set(len(self.ring))
        self.telemetry.respawns.inc()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    def begin_drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        self._drain_task = asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self) -> None:
        """Stop accepting, finish routing, then cascade SIGTERM to workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        for writer, busy in list(self._connections.items()):
            if not busy:
                writer.close()
        deadline = time.monotonic() + self.config.drain_timeout
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self.config.drain_timeout)
        except asyncio.TimeoutError:  # pragma: no cover - stuck forwards
            pass
        for worker in self.workers:
            worker.terminate()
        for worker in self.workers:
            if worker.process is not None:
                remaining = max(0.05, deadline - time.monotonic())
                try:
                    await asyncio.wait_for(worker.process.wait(), timeout=remaining)
                except asyncio.TimeoutError:  # pragma: no cover - stuck worker
                    worker.kill()
            await worker.close()
        self._stopped.set()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        self.install_signal_handlers()
        await self._stopped.wait()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling (same keep-alive discipline as the server) ------

    async def _handle(self, reader, writer) -> None:
        self._connections[writer] = False
        try:
            first = True
            while True:
                keep_alive = await self._serve_one(reader, writer, first)
                first = False
                if not keep_alive:
                    break
        finally:
            self._connections.pop(writer, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(self, reader, writer, first: bool) -> bool:
        try:
            head = await asyncio.wait_for(
                read_head(reader), timeout=self.config.read_timeout
            )
        except asyncio.TimeoutError:
            if first:
                try:
                    await write_response(
                        writer, 408, {"error": "timed out reading request head"},
                        "application/json", keep_alive=False,
                    )
                except (ConnectionError, OSError):
                    pass
            return False
        except (ConnectionError, asyncio.IncompleteReadError):
            return False
        if head is None:
            return False
        self._begin_request(writer)
        started = time.perf_counter()
        endpoint, status = "?", 500
        keep_alive = True
        try:
            method, path, headers = head
            endpoint = path
            if wants_close(headers):
                keep_alive = False
            body = await read_body(
                reader, method, headers,
                max_body=self.config.max_body,
                read_timeout=self.config.read_timeout,
            )
            status, payload, content_type = await self._route(method, path, body)
            if self._draining:
                keep_alive = False
            await write_response(
                writer, status, payload, content_type, keep_alive=keep_alive
            )
        except HttpError as exc:
            status = exc.status
            keep_alive = keep_alive and status in (404, 405, 429, 503) and not self._draining
            try:
                await write_response(
                    writer, status, {"error": str(exc)}, "application/json",
                    keep_alive=keep_alive,
                )
            except (ConnectionError, OSError):
                keep_alive = False
        except (ConnectionError, asyncio.IncompleteReadError):
            status = 0
            keep_alive = False
        except Exception as exc:  # noqa: BLE001 - the loop must survive anything
            status = 500
            keep_alive = False
            try:
                await write_response(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"},
                    "application/json", keep_alive=False,
                )
            except (ConnectionError, OSError):
                pass
        finally:
            self.telemetry.requests.inc(endpoint=endpoint, status=str(status))
            self.telemetry.request_seconds.observe(time.perf_counter() - started)
            self._end_request(writer)
        return keep_alive

    def _begin_request(self, writer) -> None:
        self._active += 1
        if writer in self._connections:
            self._connections[writer] = True
        self._idle.clear()
        self.telemetry.inflight.inc()

    def _end_request(self, writer) -> None:
        self.telemetry.inflight.dec()
        if writer in self._connections:
            self._connections[writer] = False
        self._active -= 1
        if self._active == 0:
            self._idle.set()

    # -- routing -------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET /healthz")
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "use GET /metrics")
            return 200, await self._metrics(), "text/plain; version=0.0.4"
        if path in ("/analyze", "/certify", "/lint", "/infer", "/fuzz"):
            if method != "POST":
                raise HttpError(405, f"use POST {path}")
            if self._draining:
                raise HttpError(503, "service is draining")
            payload = await self._route_jobs(path.lstrip("/"), body)
            return 200, payload, "application/json"
        raise HttpError(404, f"no route for {path}")

    def _healthz(self):
        status = "draining" if self._draining else (
            "ok" if len(self.ring) else "degraded"
        )
        payload = {
            "status": status,
            "role": "router",
            "pid": os.getpid(),
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "fleet": self.config.fleet,
            "healthy_workers": len(self.ring),
            "workers": [
                {
                    "id": worker.id,
                    "port": worker.port,
                    "pid": worker.pid,
                    "healthy": worker.healthy,
                    "inflight": worker.inflight,
                    "restarts": worker.restarts,
                }
                for worker in self.workers
            ],
        }
        return (503 if self._draining else 200), payload, "application/json"

    # -- job forwarding ------------------------------------------------------

    async def _route_jobs(self, kind: str, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        specs, deadline_ms, options = parse_job_payload(
            kind, payload, self.config.worker.default_deadline_ms
        )
        entries: list = [None] * len(specs)
        pending = list(range(len(specs)))
        fingerprints = [spec.fingerprint() for spec in specs]
        # bounded re-route attempts: enough cumulative delay (~6s) to cover
        # one worker respawn window, growing geometrically
        delays = (0.0, 0.1, 0.3, 0.9, 2.0, 3.0)
        for attempt, delay in enumerate(delays):
            if not pending:
                break
            if delay:
                await asyncio.sleep(delay)
            groups = self._assign(pending, fingerprints)
            if groups is None:  # empty ring right now — wait for a respawn
                continue
            if attempt == 0:
                self._check_backpressure(groups)
            pending = await self._forward_groups(
                kind, groups, specs, deadline_ms, options, entries,
                retrying=attempt > 0,
            )
        for index in pending:  # retry budget exhausted: per-unit errors
            self.telemetry.unroutable.inc()
            entries[index] = {
                "app": specs[index].app,
                "kind": kind,
                "fingerprint": fingerprints[index],
                "coalesced": False,
                "timed_out": False,
                "error": "no healthy worker could serve this unit",
                "exit_code": 3,
            }
        return {
            "kind": kind,
            "results": entries,
            "timed_out": any(e.get("timed_out") for e in entries),
        }

    def _assign(self, pending, fingerprints):
        """Group pending unit indices by owning worker; None on empty ring."""
        if not len(self.ring):
            return None
        groups: dict = {}
        for index in pending:
            worker_id = self.ring.lookup(fingerprints[index])
            groups.setdefault(worker_id, []).append(index)
        return groups

    def _check_backpressure(self, groups: dict) -> None:
        """Shard-level admission control, before anything is forwarded."""
        for worker_id, indices in groups.items():
            worker = self.workers[worker_id]
            if worker.inflight + 1 > self.config.max_inflight:
                self.telemetry.rejected.inc()
                raise HttpError(
                    429,
                    f"shard {worker_id} is at its in-flight cap"
                    f" ({worker.inflight}/{self.config.max_inflight} requests)",
                )

    async def _forward_groups(
        self, kind, groups, specs, deadline_ms, options, entries, retrying=False
    ):
        """Forward one sub-request per worker group; return still-pending indices."""
        ordered = sorted(groups.items())
        tasks = [
            self._forward_one(
                kind, self.workers[worker_id], indices, specs, deadline_ms,
                options, retrying=retrying,
            )
            for worker_id, indices in ordered
        ]
        # return_exceptions so every sibling forward settles before any
        # error propagates — no orphan tasks with unretrieved exceptions
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        failure = None
        still_pending: list = []
        for (_worker_id, indices), outcome in zip(ordered, outcomes):
            if isinstance(outcome, BaseException):
                failure = failure or outcome
            elif outcome is None:
                still_pending.extend(indices)
            else:
                for index, entry in zip(indices, outcome):
                    entries[index] = entry
        if failure is not None:
            raise failure
        return still_pending

    async def _forward_one(
        self, kind, worker, indices, specs, deadline_ms, options, retrying=False
    ):
        """One sub-request to one worker; returns its entries or None to re-route."""
        payload = {"apps": [specs[i].app for i in indices], **options}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        worker.inflight += 1
        self.telemetry.forwards.inc(worker=str(worker.id))
        if retrying:
            self.telemetry.forward_retries.inc(amount=len(indices))
        try:
            response = await worker.client.request_json("POST", f"/{kind}", payload)
        except ServiceBusyError as exc:
            # shard admission control fired: surface the 429 as our own
            self.telemetry.rejected.inc()
            raise HttpError(429, str(exc))
        except ServiceConnectionError:
            self._demote(worker)
            return None
        except ServiceError as exc:
            if exc.status == 503:  # worker began draining under us
                self._demote(worker)
                return None
            raise HttpError(exc.status, str(exc))
        finally:
            worker.inflight -= 1
        results = response.get("results", [])
        if len(results) != len(indices):  # pragma: no cover - defensive
            raise HttpError(502, f"worker {worker.id} returned a malformed batch")
        return results

    # -- metrics aggregation -------------------------------------------------

    async def _metrics(self) -> str:
        """Router registry + every live worker's scrape, worker-labelled."""
        chunks = [self.telemetry.registry.render()]
        scrapes = await asyncio.gather(
            *(self._scrape(worker) for worker in self.workers),
            return_exceptions=True,
        )
        seen_meta: set = set()
        lines: list = []
        for worker, scrape in zip(self.workers, scrapes):
            if not isinstance(scrape, str):
                continue
            for line in scrape.splitlines():
                if not line:
                    continue
                if line.startswith("#"):
                    # one HELP/TYPE per metric across the whole fleet
                    parts = line.split(" ", 3)
                    key = (parts[1] if len(parts) > 1 else "?",
                           parts[2] if len(parts) > 2 else "?")
                    if key in seen_meta:
                        continue
                    seen_meta.add(key)
                    lines.append(line)
                    continue
                lines.append(_relabel(line, worker.id))
        chunks.append("\n".join(lines) + ("\n" if lines else ""))
        return "".join(chunks)

    async def _scrape(self, worker: Worker):
        if not worker.healthy or worker.client is None:
            return None
        try:
            return await worker.client.metrics()
        except (ServiceError, ServiceConnectionError, ReproError):
            return None


def _relabel(sample_line: str, worker_id: int) -> str:
    """Inject ``worker="<id>"`` into one Prometheus sample line."""
    name_part, _sep, value = sample_line.rpartition(" ")
    if not name_part:
        return sample_line
    if "{" in name_part:
        name, labels = name_part.split("{", 1)
        return f'{name}{{worker="{worker_id}",{labels} {value}'
    return f'{name_part}{{worker="{worker_id}"}} {value}'


async def _amain(config: FleetConfig, announce=print) -> int:
    router = FleetRouter(config)
    await router.start()
    announce(
        f"repro fleet router listening on http://{config.host}:{router.port}"
        f" (fleet={config.fleet}, max_inflight={config.max_inflight},"
        f" vnodes={config.vnodes})",
        flush=True,
    )
    await router.serve_forever()
    announce("repro fleet drained cleanly", flush=True)
    return 0


def serve_fleet(config: FleetConfig | None = None) -> int:
    """Blocking entry point used by ``repro serve --fleet N``."""
    return asyncio.run(_amain(config or FleetConfig()))
