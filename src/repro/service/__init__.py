"""repro.service — a long-lived analysis server over the batch pipeline.

The batch CLI pays the full warm-up bill (hash-consing tables, prover
memos, verdict cache, persistent store) on every invocation; the service
keeps one warmed process alive and answers a stream of analyze / certify /
lint requests over JSON-HTTP at the warm cost.  Pieces:

* :mod:`repro.service.telemetry` — counters, gauges and fixed-bucket
  latency histograms with Prometheus text rendering;
* :mod:`repro.service.batcher` — request coalescing, fingerprint-based
  deduplication and the bounded worker pool;
* :mod:`repro.service.server` — the asyncio HTTP/1.1 front end with
  admission control, per-request deadlines and graceful drain;
* :mod:`repro.service.client` — a small blocking client used by
  ``repro submit``, the tests and the benchmarks.

Everything is stdlib-only: ``asyncio`` streams plus a hand-rolled
HTTP/1.1 request parser, no third-party server framework.
"""

from repro.service.batcher import Batcher, QueueFullError
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ReproService, ServiceConfig
from repro.service.telemetry import Counter, Gauge, Histogram, Registry

__all__ = [
    "Batcher",
    "Counter",
    "Gauge",
    "Histogram",
    "QueueFullError",
    "Registry",
    "ReproService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
]
