"""A small blocking client for the analysis service.

Used by ``repro submit``, the service tests and the E15 benchmark.  One
HTTP/1.1 request per connection (matching the server's connection-per-
request model), stdlib :mod:`http.client` underneath, JSON in and out.

Errors map onto a small exception ladder so callers can translate them
into the CLI's exit-code contract (see ``docs/SERVICE.md``):

* :class:`ServiceConnectionError` — the server is unreachable;
* :class:`ServiceBusyError` — admission control said 429;
* :class:`ServiceError` — any other non-2xx answer (carries status and
  the decoded error payload).
"""

from __future__ import annotations

import http.client
import json
import socket
import time

from repro.errors import ReproError


class ServiceError(ReproError):
    """The service answered with a non-2xx status."""

    def __init__(self, status: int, payload) -> None:
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"service answered {status}: {detail}")
        self.status = status
        self.payload = payload


class ServiceBusyError(ServiceError):
    """Admission control rejected the request (HTTP 429)."""


class ServiceConnectionError(ReproError):
    """The service could not be reached at all."""


class ServiceClient:
    """Blocking JSON client bound to one host/port."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8923, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def request(self, method: str, path: str, payload: dict | None = None):
        """One request; returns ``(status, body_text)`` or raises."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8", "replace")
            return response.status, text
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise ServiceConnectionError(
                f"cannot reach repro service at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()

    def request_json(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, text = self.request(method, path, payload)
        try:
            decoded = json.loads(text)
        except ValueError:
            decoded = {"error": text.strip()}
        if status == 429:
            raise ServiceBusyError(status, decoded)
        if not 200 <= status < 300:
            raise ServiceError(status, decoded)
        return decoded

    # -- endpoints -----------------------------------------------------------

    def submit(self, kind: str, apps, deadline_ms: int | None = None, **options) -> dict:
        """POST one job request; ``apps`` is a name or a list of names."""
        if isinstance(apps, str):
            payload: dict = {"app": apps}
        else:
            payload = {"apps": list(apps)}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        payload.update(options)
        return self.request_json("POST", f"/{kind}", payload)

    def analyze(self, apps, **options) -> dict:
        return self.submit("analyze", apps, **options)

    def certify(self, apps, **options) -> dict:
        return self.submit("certify", apps, **options)

    def lint(self, apps, **options) -> dict:
        return self.submit("lint", apps, **options)

    def infer(self, apps, **options) -> dict:
        return self.submit("infer", apps, **options)

    def health(self, raise_for_status: bool = False) -> dict:
        status, text = self.request("GET", "/healthz")
        try:
            decoded = json.loads(text)
        except ValueError:
            decoded = {"status": text.strip()}
        if raise_for_status and status != 200:
            raise ServiceError(status, decoded)
        decoded["http_status"] = status
        return decoded

    def metrics(self) -> str:
        status, text = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, {"error": text.strip()})
        return text

    def wait_ready(self, timeout: float = 15.0, interval: float = 0.05) -> dict:
        """Poll /healthz until the server answers; raises on timeout."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except ServiceConnectionError as exc:
                last = exc
                time.sleep(interval)
        raise ServiceConnectionError(
            f"service at {self.host}:{self.port} not ready after {timeout}s: {last}"
        )
