"""Clients for the analysis service: blocking and pooled-async.

Two transports share one protocol and one exception ladder:

* :class:`ServiceClient` — the blocking client behind ``repro submit``,
  the service tests and the E15 benchmark.  One HTTP/1.1 request per
  connection, stdlib :mod:`http.client` underneath, JSON in and out.
* :class:`AsyncServiceClient` — the pooled asyncio client the fleet
  router and the E19 benchmark drive traffic with: a bounded pool of
  keep-alive connections, requests pipelined back to back on each
  (connect once, then request/response cycles), and the same JSON
  surface as the blocking client, awaitable.

Both honour admission control the same way: a 429 raises
:class:`ServiceBusyError` immediately by default; ``submit(...,
retries=N)`` opts into capped, jittered backoff that honours the
server's ``Retry-After`` header before giving up.

Errors map onto a small exception ladder so callers can translate them
into the CLI's exit-code contract (see ``docs/SERVICE.md``):

* :class:`ServiceConnectionError` — the server is unreachable;
* :class:`ServiceBusyError` — admission control said 429 (carries
  ``retry_after`` when the server sent one);
* :class:`ServiceError` — any other non-2xx answer (carries status and
  the decoded error payload).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import socket
import time

from repro.errors import ReproError

#: Hard ceiling on one backoff sleep (seconds) regardless of Retry-After.
RETRY_BACKOFF_CAP = 5.0

#: First backoff step (seconds) when the server sent no Retry-After.
RETRY_BACKOFF_BASE = 0.05


class ServiceError(ReproError):
    """The service answered with a non-2xx status."""

    def __init__(self, status: int, payload) -> None:
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"service answered {status}: {detail}")
        self.status = status
        self.payload = payload


class ServiceBusyError(ServiceError):
    """Admission control rejected the request (HTTP 429)."""

    def __init__(self, status: int, payload, retry_after: float | None = None) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class ServiceConnectionError(ReproError):
    """The service could not be reached at all."""


def _parse_retry_after(value) -> float | None:
    """Seconds from a ``Retry-After`` header value (delta form only)."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    return seconds if seconds >= 0 else None


def backoff_delay(attempt: int, retry_after: float | None, *,
                  base: float = RETRY_BACKOFF_BASE,
                  cap: float = RETRY_BACKOFF_CAP,
                  rng: random.Random | None = None) -> float:
    """One capped, jittered backoff sleep for retry number ``attempt`` (0-based).

    The server's ``Retry-After`` is the floor when present — retrying
    sooner than the server asked just buys another 429.  On top of it (or
    of exponential ``base * 2**attempt`` without one) goes up to 25%
    random jitter, so a fleet of synchronized clients de-synchronizes
    instead of re-flooding in lockstep; the whole delay is capped.
    """
    delay = base * (2 ** attempt)
    if retry_after is not None:
        delay = max(delay, retry_after)
    jitter = (rng.random() if rng is not None else random.random()) * 0.25
    return min(cap, delay * (1.0 + jitter))


def _decode_body(status: int, text: str) -> dict:
    try:
        return json.loads(text)
    except ValueError:
        return {"error": text.strip()}


def _raise_for_status(status: int, decoded, retry_after: float | None = None):
    if status == 429:
        raise ServiceBusyError(status, decoded, retry_after=retry_after)
    if not 200 <= status < 300:
        raise ServiceError(status, decoded)


def _job_payload(kind: str, apps, deadline_ms, options) -> tuple[str, dict]:
    if isinstance(apps, str):
        payload: dict = {"app": apps}
    else:
        payload = {"apps": list(apps)}
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    payload.update(options)
    return f"/{kind}", payload


class ServiceClient:
    """Blocking JSON client bound to one host/port."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8923, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None):
        """One request; returns ``(status, body_text, headers)`` or raises."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8", "replace")
            return response.status, text, dict(response.getheaders())
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise ServiceConnectionError(
                f"cannot reach repro service at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()

    def request(self, method: str, path: str, payload: dict | None = None):
        """One request; returns ``(status, body_text)`` or raises."""
        status, text, _headers = self._request(method, path, payload)
        return status, text

    def request_json(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, text, headers = self._request(method, path, payload)
        decoded = _decode_body(status, text)
        retry_after = _parse_retry_after(
            {k.lower(): v for k, v in headers.items()}.get("retry-after")
        )
        _raise_for_status(status, decoded, retry_after)
        return decoded

    # -- endpoints -----------------------------------------------------------

    def submit(
        self,
        kind: str,
        apps,
        deadline_ms: int | None = None,
        retries: int = 0,
        **options,
    ) -> dict:
        """POST one job request; ``apps`` is a name or a list of names.

        ``retries`` opts into busy-retry: up to that many additional
        attempts after a 429, sleeping a capped jittered backoff that
        honours the server's ``Retry-After`` between attempts
        (:func:`backoff_delay`).  The default (0) keeps the historical
        fail-fast contract: the first 429 raises
        :class:`ServiceBusyError`.
        """
        path, payload = _job_payload(kind, apps, deadline_ms, options)
        for attempt in range(retries + 1):
            try:
                return self.request_json("POST", path, payload)
            except ServiceBusyError as exc:
                if attempt >= retries:
                    raise
                time.sleep(backoff_delay(attempt, exc.retry_after))
        raise AssertionError("unreachable")  # pragma: no cover

    def analyze(self, apps, **options) -> dict:
        return self.submit("analyze", apps, **options)

    def certify(self, apps, **options) -> dict:
        return self.submit("certify", apps, **options)

    def lint(self, apps, **options) -> dict:
        return self.submit("lint", apps, **options)

    def infer(self, apps, **options) -> dict:
        return self.submit("infer", apps, **options)

    def fuzz(self, apps, **options) -> dict:
        return self.submit("fuzz", apps, **options)

    def health(self, raise_for_status: bool = False) -> dict:
        status, text = self.request("GET", "/healthz")
        try:
            decoded = json.loads(text)
        except ValueError:
            decoded = {"status": text.strip()}
        if raise_for_status and status != 200:
            raise ServiceError(status, decoded)
        decoded["http_status"] = status
        return decoded

    def metrics(self) -> str:
        status, text = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, {"error": text.strip()})
        return text

    def wait_ready(self, timeout: float = 15.0, interval: float = 0.05) -> dict:
        """Poll /healthz until the server answers; raises on timeout."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except ServiceConnectionError as exc:
                last = exc
                time.sleep(interval)
        raise ServiceConnectionError(
            f"service at {self.host}:{self.port} not ready after {timeout}s: {last}"
        )


class _PooledConnection:
    """One keep-alive connection of an :class:`AsyncServiceClient`."""

    __slots__ = ("reader", "writer", "requests")

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.requests = 0  # served on this connection (pool telemetry)

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:  # noqa: BLE001 - closing is best-effort
            pass


class AsyncServiceClient:
    """Pooled asyncio JSON client bound to one host/port.

    Holds at most ``pool_size`` open connections; requests beyond that
    wait for a slot instead of opening more sockets (bounded pressure on
    the server's accept loop).  Idle connections are reused back to back —
    the server keeps them alive — and a connection the server closed while
    idle (read timeout, drain) is detected on first use and replaced with
    a fresh one, transparently retrying the request once.

    Counters (``stats``): ``requests``, ``connects``, ``reuses``,
    ``stale_retries``, ``busy_retries``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8923,
        *,
        pool_size: int = 8,
        timeout: float = 300.0,
        retries: int = 0,
    ) -> None:
        if pool_size < 1:
            raise ReproError(f"pool_size must be >= 1, got {pool_size!r}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self._slots = asyncio.Semaphore(pool_size)
        self._idle: list[_PooledConnection] = []
        self._closed = False
        self.stats = {
            "requests": 0, "connects": 0, "reuses": 0,
            "stale_retries": 0, "busy_retries": 0,
        }

    # -- pool ----------------------------------------------------------------

    async def _connect(self) -> _PooledConnection:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), timeout=self.timeout
            )
        except (ConnectionError, asyncio.TimeoutError, OSError) as exc:
            raise ServiceConnectionError(
                f"cannot reach repro service at {self.host}:{self.port}: {exc}"
            ) from exc
        self.stats["connects"] += 1
        return _PooledConnection(reader, writer)

    async def aclose(self) -> None:
        """Close every idle pooled connection (in-flight ones close on release)."""
        self._closed = True
        while self._idle:
            self._idle.pop().close()

    # -- transport -----------------------------------------------------------

    async def request(self, method: str, path: str, payload: dict | None = None):
        """One request via the pool; returns ``(status, body_text, headers)``."""
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Connection: keep-alive\r\n"
        )
        if payload is not None:
            head += "Content-Type: application/json\r\n"
        head += f"Content-Length: {len(body)}\r\n\r\n"
        request_bytes = head.encode("latin-1") + body
        await self._slots.acquire()
        try:
            # a pooled connection may have been closed by the server while
            # idle; retry once on a fresh socket before giving up
            for attempt in (0, 1):
                reused = bool(self._idle)
                if reused:
                    conn = self._idle.pop()
                    self.stats["reuses"] += 1
                else:
                    conn = await self._connect()
                try:
                    status, text, headers = await asyncio.wait_for(
                        self._roundtrip(conn, request_bytes), timeout=self.timeout
                    )
                except (ConnectionError, asyncio.IncompleteReadError, OSError,
                        asyncio.TimeoutError) as exc:
                    conn.close()
                    if reused and attempt == 0:
                        self.stats["stale_retries"] += 1
                        continue
                    raise ServiceConnectionError(
                        f"cannot reach repro service at {self.host}:{self.port}: {exc}"
                    ) from exc
                conn.requests += 1
                self.stats["requests"] += 1
                keep = "close" not in headers.get("connection", "").lower()
                if keep and not self._closed:
                    self._idle.append(conn)
                else:
                    conn.close()
                return status, text, headers
            raise AssertionError("unreachable")  # pragma: no cover
        finally:
            self._slots.release()

    async def _roundtrip(self, conn: _PooledConnection, request_bytes: bytes):
        conn.writer.write(request_bytes)
        await conn.writer.drain()
        status_line = (await conn.reader.readline()).decode("latin-1").strip()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict = {}
        while True:
            line = (await conn.reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        text = (await conn.reader.readexactly(length)).decode("utf-8", "replace")
        return status, text, headers

    async def request_json(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, text, headers = await self.request(method, path, payload)
        decoded = _decode_body(status, text)
        _raise_for_status(status, decoded, _parse_retry_after(headers.get("retry-after")))
        return decoded

    # -- endpoints -----------------------------------------------------------

    async def submit(
        self,
        kind: str,
        apps,
        deadline_ms: int | None = None,
        retries: int | None = None,
        **options,
    ) -> dict:
        """POST one job request, with the same busy-retry contract as the
        blocking client (``retries`` defaults to the pool's constructor
        value; backoff honours Retry-After, capped and jittered)."""
        if retries is None:
            retries = self.retries
        path, payload = _job_payload(kind, apps, deadline_ms, options)
        for attempt in range(retries + 1):
            try:
                return await self.request_json("POST", path, payload)
            except ServiceBusyError as exc:
                if attempt >= retries:
                    raise
                self.stats["busy_retries"] += 1
                await asyncio.sleep(backoff_delay(attempt, exc.retry_after))
        raise AssertionError("unreachable")  # pragma: no cover

    async def analyze(self, apps, **options) -> dict:
        return await self.submit("analyze", apps, **options)

    async def certify(self, apps, **options) -> dict:
        return await self.submit("certify", apps, **options)

    async def lint(self, apps, **options) -> dict:
        return await self.submit("lint", apps, **options)

    async def infer(self, apps, **options) -> dict:
        return await self.submit("infer", apps, **options)

    async def fuzz(self, apps, **options) -> dict:
        return await self.submit("fuzz", apps, **options)

    async def health(self, raise_for_status: bool = False) -> dict:
        status, text, _headers = await self.request("GET", "/healthz")
        try:
            decoded = json.loads(text)
        except ValueError:
            decoded = {"status": text.strip()}
        if raise_for_status and status != 200:
            raise ServiceError(status, decoded)
        decoded["http_status"] = status
        return decoded

    async def metrics(self) -> str:
        status, text, _headers = await self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, {"error": text.strip()})
        return text

    async def wait_ready(self, timeout: float = 15.0, interval: float = 0.05) -> dict:
        """Poll /healthz until the server answers; raises on timeout."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return await self.health()
            except ServiceConnectionError as exc:
                last = exc
                await asyncio.sleep(interval)
        raise ServiceConnectionError(
            f"service at {self.host}:{self.port} not ready after {timeout}s: {last}"
        )
