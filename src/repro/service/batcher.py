"""Request batching, deduplication and the bounded worker pool.

Concurrent requests for the same :class:`~repro.pipeline.jobs.JobSpec`
fingerprint share one execution: the first submission creates an in-flight
future, later submissions within its lifetime attach to it (*coalescing* —
counted in telemetry, surfaced per-unit in responses).  Soundness rests on
the spec/runtime split in :mod:`repro.pipeline.jobs`: the fingerprint
covers every field that can change the payload, so attaching to a
duplicate is indistinguishable from running the job again — modulo the
shared verdict cache, which would have answered the second run from memory
anyway.

Distinct specs are *micro-batched*: the first admission in a quiet period
opens a short window (``window`` seconds); everything admitted inside it
is dispatched to the pool as one batch.  The window trades a bounded
latency penalty for a wider coalescing net and fewer pool wakeups under
fan-in traffic, the same shape model-inference servers use.

Admission control is a hard cap on admitted-but-unfinished jobs
(``max_pending``).  Beyond the cap, :meth:`Batcher.submit` raises
:class:`QueueFullError` *synchronously* — the server turns that into an
immediate 429 without queueing anything, so a flood costs attackers a
socket each but the service no memory.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ReproError
from repro.pipeline.jobs import JobSpec


class QueueFullError(ReproError):
    """Admission control rejected the job (the pending cap is reached)."""


class Batcher:
    """Coalesce, batch and bound the execution of analysis jobs."""

    def __init__(
        self,
        runner,
        *,
        workers: int = 2,
        window: float = 0.005,
        max_pending: int = 64,
        telemetry=None,
    ) -> None:
        self._runner = runner  # sync callable: JobSpec -> JobResult
        self._window = max(0.0, window)
        self._max_pending = max(1, max_pending)
        self._telemetry = telemetry
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-job"
        )
        self._inflight: dict = {}  # fingerprint -> asyncio.Future
        self._pending_batch: list = []  # (fingerprint, spec) awaiting dispatch
        self._flush_handle = None
        self._admitted = 0  # admitted and not yet finished (the 429 gauge)
        self._closed = False

    @property
    def admitted(self) -> int:
        return self._admitted

    def admit(self, spec: JobSpec):
        """Admit one job *synchronously*; returns ``(future, coalesced)``.

        Raises :class:`QueueFullError` without queueing anything when the
        pending cap is hit — the caller can turn a flood into an immediate
        429.  Must be called from the event-loop thread.
        """
        if self._closed:
            raise QueueFullError("service is draining")
        key = spec.fingerprint()
        existing = self._inflight.get(key)
        if existing is not None and not existing.done():
            if self._telemetry is not None:
                self._telemetry.coalesced.inc()
            return existing, True
        if self._admitted >= self._max_pending:
            if self._telemetry is not None:
                self._telemetry.rejected.inc()
            raise QueueFullError(
                f"admission queue full ({self._admitted}/{self._max_pending} jobs pending)"
            )
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        self._admitted += 1
        if self._telemetry is not None:
            self._telemetry.queue_depth.set(self._admitted)
        self._pending_batch.append((key, spec))
        if self._flush_handle is None:
            if self._window > 0:
                self._flush_handle = loop.call_later(self._window, self._flush)
            else:
                self._flush_handle = loop.call_soon(self._flush)
        return future, False

    async def submit(self, spec: JobSpec):
        """Admit and await one job; returns ``(result, coalesced)``."""
        future, coalesced = self.admit(spec)
        return await future, coalesced

    def _flush(self) -> None:
        """Dispatch the current window's batch to the worker pool."""
        self._flush_handle = None
        batch, self._pending_batch = self._pending_batch, []
        if not batch:
            return
        if self._telemetry is not None:
            self._telemetry.batches.inc()
            self._telemetry.batch_size.observe(len(batch))
        loop = asyncio.get_running_loop()
        for key, spec in batch:
            pool_future = loop.run_in_executor(self._pool, self._run_timed, spec)
            pool_future.add_done_callback(
                lambda done, key=key: self._finish(key, done)
            )

    def _run_timed(self, spec: JobSpec):
        started = time.perf_counter()
        try:
            result = self._runner(spec)
        except Exception:
            if self._telemetry is not None:
                self._telemetry.jobs.inc(kind=spec.kind, outcome="error")
                self._telemetry.job_seconds.observe(time.perf_counter() - started)
            raise
        if self._telemetry is not None:
            self._telemetry.jobs.inc(kind=spec.kind, outcome="ok")
            self._telemetry.job_seconds.observe(time.perf_counter() - started)
        return result

    def _finish(self, key: str, done) -> None:
        self._admitted -= 1
        if self._telemetry is not None:
            self._telemetry.queue_depth.set(self._admitted)
        future = self._inflight.pop(key, None)
        if future is None or future.done():
            return
        error = done.exception()
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(done.result())

    async def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, wait for in-flight jobs; True when fully drained.

        Dispatches any window still pending immediately — a drain must not
        wait out the batching window, nor abandon admitted jobs.
        """
        self._closed = True
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        self._flush()
        pending = [f for f in self._inflight.values() if not f.done()]
        if pending:
            _, not_done = await asyncio.wait(pending, timeout=timeout)
            if not_done:
                return False
        return True

    def shutdown(self) -> None:
        self._closed = True
        self._pool.shutdown(wait=False, cancel_futures=True)
