"""Shared HTTP/1.1 plumbing for the analysis server and the fleet router.

Both fronts speak the same hand-rolled, stdlib-only dialect: request line,
headers, ``Content-Length`` bodies (chunked uploads are refused with 501),
and persistent connections.  Factoring the parser and the response writer
here keeps the two servers byte-compatible — a client cannot tell whether
it is talking to a single worker or to the router in front of a fleet.

Keep-alive rules (HTTP/1.1 defaults, deliberately minimal):

* a connection stays open after a response unless the request carried
  ``Connection: close``, the server is draining, or the response itself is
  an error the connection cannot recover from (malformed head);
* an EOF at a request boundary is a clean close, not an error — clients
  that open one connection per request (the blocking
  :class:`~repro.service.client.ServiceClient`) hit exactly this path;
* the response always announces its intent in a ``Connection`` header so
  pooled clients know whether the socket is reusable.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ReproError

#: HTTP status reasons for the subset of codes the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class HttpError(ReproError):
    """Abort the current request with this status and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def read_head(reader):
    """Parse one request head; ``None`` on clean EOF at a request boundary.

    Returns ``(method, path, headers)`` with header names lower-cased and
    the query string stripped from the path.
    """
    raw_line = await reader.readline()
    if not raw_line:
        return None  # client closed between requests: clean keep-alive end
    request_line = raw_line.decode("latin-1").rstrip("\r\n")
    if not request_line:
        raise HttpError(400, "empty request")
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, path, _version = parts
    headers = {}
    while True:
        line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not line:
            break
        if len(headers) > 100:
            raise HttpError(400, "too many headers")
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, path.split("?", 1)[0], headers


async def read_body(reader, method: str, headers: dict, *, max_body: int,
                    read_timeout: float) -> bytes:
    """Read a ``Content-Length`` body (POST only; empty for other methods)."""
    if method != "POST":
        return b""
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked uploads are not supported")
    raw_length = headers.get("content-length")
    if raw_length is None:
        raise HttpError(411, "POST requires Content-Length")
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {raw_length!r}")
    if length < 0:
        raise HttpError(400, f"bad Content-Length {raw_length!r}")
    if length > max_body:
        raise HttpError(
            413, f"request body of {length} bytes exceeds limit {max_body}"
        )
    try:
        return await asyncio.wait_for(
            reader.readexactly(length), timeout=read_timeout
        )
    except asyncio.TimeoutError:
        raise HttpError(408, "timed out reading request body")


def encode_response(status: int, payload, content_type: str, *,
                    keep_alive: bool, extra_headers: dict | None = None) -> bytes:
    """Serialise one response (dict/list payloads become indented JSON)."""
    if isinstance(payload, (dict, list)):
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    elif isinstance(payload, bytes):
        body = payload
    else:
        body = str(payload).encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    if status == 429 and not (extra_headers and "Retry-After" in extra_headers):
        head += "Retry-After: 1\r\n"
    for name, value in (extra_headers or {}).items():
        head += f"{name}: {value}\r\n"
    head += f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
    return head.encode("latin-1") + body


async def write_response(writer, status: int, payload, content_type: str, *,
                         keep_alive: bool, extra_headers: dict | None = None) -> None:
    writer.write(encode_response(
        status, payload, content_type,
        keep_alive=keep_alive, extra_headers=extra_headers,
    ))
    await writer.drain()


def wants_close(headers: dict) -> bool:
    """Did the request ask for the connection to be closed after the reply?"""
    return "close" in headers.get("connection", "").lower()
