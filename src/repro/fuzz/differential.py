"""One fuzz case end to end: synthesize, infer, choose, probe, classify.

The differential check drives the whole pipeline on one generated seed:

1. generate the unannotated application (:mod:`repro.workloads.appgen`)
   and infer its annotations (:func:`repro.core.infer.infer_application`);
2. run the Section 5 chooser over the inferred annotations — the level
   assignment under test;
3. build small deterministic *probe* instance sets (pairs of writers over
   one hot record set — the minimal interference pattern every paper
   anomaly needs) and exhaustively explore each probe with source-set
   DPOR at the chosen levels, checking every completed schedule against
   the inferred application invariant and the inferred ``Q_i`` results
   (:func:`repro.sched.semantic.check_semantic_correctness`);
4. classify: a violation at the admitted levels is ``UNSOUND`` only when
   the same probe is clean at SERIALIZABLE (otherwise the inferred
   invariant itself is broken — ``UNSTABLE``); a clean case is probed
   again with every transaction weakened one rung down the ANSI ladder
   to decide ``TIGHT`` vs ``LOOSE``.

Every exploration runs single-threaded (``workers=1``): corpus rows must
be byte-identical across runs, and parallelism lives one layer up — the
runner fans out across *seeds*, never inside a case.
"""

from __future__ import annotations

import random

from repro.core.conditions import ANSI_LADDER, SERIALIZABLE
from repro.fuzz.case import (
    FuzzCase,
    LOOSE,
    SOUND,
    TIGHT,
    UNSOUND,
    UNSTABLE,
    case_fingerprint,
    probe_knobs,
)
from repro.workloads.appgen import AppGenConfig, generate_application, initial_state

#: Probe instance sets explored per case (writer pairs, deterministic order).
DEFAULT_PAIRS = 3
#: Simulator-run budget per probe exploration.
DEFAULT_PROBE_SCHEDULES = 96
#: Interference-checker budget for the chooser pass.
DEFAULT_BUDGET = 1500


def weaker_level(level: str, ladder=ANSI_LADDER) -> str | None:
    """One rung down ``ladder``; ``None`` at (or off) the floor."""
    if level not in ladder:
        return None
    position = ladder.index(level)
    return ladder[position - 1] if position > 0 else None


def probe_sets(app, config: AppGenConfig, pairs: int = DEFAULT_PAIRS) -> list:
    """Deterministic writer-pair probes: ``[(label, [(txn, args), ...])]``.

    Same-type pairs first (the lost-update shape), then distinct-writer
    pairs (write skew), capped at ``pairs``.  Arguments are drawn from the
    domain spec with a per-probe seeded stream, so equal configs always
    produce equal probes.
    """
    writers = [t for t in app.transactions if t.written_resources()]
    combos = [(w, w) for w in writers]
    combos += [
        (writers[i], writers[j])
        for i in range(len(writers))
        for j in range(i + 1, len(writers))
    ]
    probes = []
    for position, (first, second) in enumerate(combos[:pairs]):
        stream = random.Random(f"fuzz:{config.seed}:{position}")
        instances = []
        for copy, txn in enumerate((first, second), start=1):
            args = {}
            for param in txn.params:
                values = list(app.spec.values_for(param)) if app.spec else [0, 1]
                args[param.name] = stream.choice(values)
            instances.append((txn, args, f"{txn.name}#{copy}"))
        probes.append((f"{first.name}+{second.name}@{position}", instances))
    return probes


def explore_probe(initial, instances, levels, invariant, *, max_schedules):
    """Explore one probe at ``levels``; return ``(schedules, violations)``.

    ``violations`` holds ``(summary, history, committed)`` triples for
    every semantically incorrect completed schedule, in exploration order
    (deterministic at ``workers=1``).
    """
    from repro.sched.explore import explore
    from repro.sched.histories import history_string
    from repro.sched.semantic import check_semantic_correctness
    from repro.sched.simulator import InstanceSpec

    specs = [
        InstanceSpec(txn, args, levels.get(txn.name, SERIALIZABLE), name)
        for txn, args, name in instances
    ]
    result = explore(
        initial.copy(),
        specs,
        max_schedules=max_schedules,
        workers=1,
        keep_results=True,
    )
    violations = []
    for schedule in result.results:
        report = check_semantic_correctness(schedule, invariant)
        if not report.correct:
            violations.append(
                (
                    report.summary(),
                    history_string(schedule.history),
                    [outcome.name for outcome in schedule.committed],
                )
            )
    return result.schedules, violations


def _witness(probe_label: str, levels: dict, violation) -> dict:
    summary, history, committed = violation
    return {
        "probe": probe_label,
        "levels": dict(sorted(levels.items())),
        "summary": summary,
        "history": history,
        "committed": committed,
    }


def run_case(
    config: AppGenConfig | int,
    *,
    budget: int = DEFAULT_BUDGET,
    pairs: int = DEFAULT_PAIRS,
    probe_schedules: int = DEFAULT_PROBE_SCHEDULES,
    force_level: str | None = None,
    shrink: bool = True,
) -> FuzzCase:
    """The full differential check for one generator config.

    ``force_level`` overrides the chooser's assignment for every
    transaction type — the weakened-chooser fixture the acceptance tests
    use to prove the harness actually catches unsound assignments.
    """
    from repro.core.chooser import analyze_application
    from repro.core.infer import infer_application
    from repro.core.interference import InterferenceChecker

    if isinstance(config, int):
        config = AppGenConfig(seed=config)
    app = generate_application(config)
    fingerprint = case_fingerprint(
        app, config, probe_knobs(budget, pairs, probe_schedules, force_level)
    )
    inferred, report = infer_application(app, seed=config.seed)
    checker = InterferenceChecker(inferred.spec, budget=budget, seed=config.seed)
    levels = analyze_application(inferred, checker).levels()
    if force_level is not None:
        levels = {name: force_level for name in levels}
    invariant = report.closed_invariant(app.spec)
    initial = initial_state(config, balance=1)
    probes = probe_sets(inferred, config, pairs=pairs)

    case = FuzzCase(
        seed=config.seed,
        fingerprint=fingerprint,
        knobs=config.knobs(),
        verdict=SOUND,
        levels=dict(levels),
        probes=len(probes),
    )

    serializable = {name: SERIALIZABLE for name in levels}
    unstable_witness = None
    for label, instances in probes:
        schedules, violations = explore_probe(
            initial, instances, levels, invariant, max_schedules=probe_schedules
        )
        case.schedules += schedules
        if not violations:
            continue
        # violation at an admitted level — real only if SERIALIZABLE is clean
        baseline_schedules, baseline = explore_probe(
            initial, instances, serializable, invariant,
            max_schedules=probe_schedules,
        )
        case.schedules += baseline_schedules
        if baseline:
            if unstable_witness is None:
                unstable_witness = _witness(label, serializable, baseline[0])
            continue
        case.verdict = UNSOUND
        case.violation = _witness(label, levels, violations[0])
        if shrink:
            from repro.fuzz.shrink import shrink_unsound

            case.shrunk = shrink_unsound(
                inferred,
                instances,
                levels,
                invariant,
                initial,
                probe_schedules=probe_schedules,
            )
        return case

    if unstable_witness is not None:
        case.verdict = UNSTABLE
        case.violation = unstable_witness
        return case

    weakened = {name: weaker_level(level) or level for name, level in levels.items()}
    if weakened == levels:
        return case  # every type already at the ladder floor: no comparison
    case.tightness = LOOSE
    for label, instances in probes:
        schedules, violations = explore_probe(
            initial, instances, weakened, invariant, max_schedules=probe_schedules
        )
        case.schedules += schedules
        if not violations:
            continue
        baseline_schedules, baseline = explore_probe(
            initial, instances, serializable, invariant,
            max_schedules=probe_schedules,
        )
        case.schedules += baseline_schedules
        if baseline:
            continue  # inference artifact, not a level-comparison witness
        case.tightness = TIGHT
        case.violation = _witness(label, weakened, violations[0])
        break
    return case
