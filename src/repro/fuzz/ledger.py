"""The append-only JSONL corpus ledger — resumable fuzzing's memory.

Built on :class:`repro.core.persist.SegmentLog` (the verdict store's
substrate): uniquely named ``corpus-*.jsonl`` segments written via
temp-file rename, salted headers so rows from other algorithm versions
miss cleanly, and advisory-claim compaction safe under concurrent
writers.  On top of that the ledger adds the corpus semantics:

* rows are keyed by ``(seed, fingerprint)``; the first recorded row for
  a key wins (verdicts for one key are equal by construction — the
  differential check is deterministic);
* :meth:`record` flushes **one segment per case**: a SIGKILL between
  cases loses at most the case in flight, which is exactly the resume
  contract the interrupt tests enforce;
* :meth:`canonical_bytes` is the ledger's identity — sorted rows, sorted
  keys, one JSON object per line — byte-equal between an interrupted-
  and-resumed run and an uninterrupted one, however many segments the
  rows physically landed in.

The salt binds :data:`repro.core.persist.store_salt` (prover/encoding
versions) with :data:`repro.fuzz.case.FUZZ_VERSION`: a change to either
re-opens every seed.
"""

from __future__ import annotations

import json
import os

from repro.core.persist import SegmentLog, store_salt
from repro.fuzz.case import FUZZ_VERSION, FuzzCase

#: Segment-count threshold beyond which :meth:`CorpusLedger.record`
#: compacts.  Higher than the verdict store's (one segment *per case* is
#: the durability design, not an accident to be merged away eagerly).
COMPACT_THRESHOLD = 64


def ledger_salt() -> str:
    return f"{store_salt()}.{FUZZ_VERSION}"


class CorpusLedger:
    """Settled fuzz cases in one corpus directory."""

    def __init__(self, directory: str | os.PathLike, salt: str | None = None) -> None:
        self._log = SegmentLog(directory, salt or ledger_salt(), prefix="corpus")
        self.directory = self._log.directory
        self.entries: dict = {}  # (seed, fingerprint) -> row dict
        self.stats = self._log.stats
        self.stats.update({"entries_loaded": 0, "entries_recorded": 0})

    # -- loading -------------------------------------------------------------

    def _absorb_rows(self, rows: list, counter: str) -> int:
        absorbed = 0
        for row in rows:
            case = FuzzCase.from_row(row)
            if case is None:
                self.stats["lines_skipped"] += 1
                continue
            key = (case.seed, case.fingerprint)
            if key not in self.entries:
                self.entries[key] = row
                absorbed += 1
        self.stats[counter] += absorbed
        return absorbed

    def load(self) -> int:
        """Absorb every readable same-salt segment; returns rows absorbed."""
        absorbed = 0
        for _segment, rows in self._log.iter_new_segments():
            absorbed += self._absorb_rows(rows, "entries_loaded")
        return absorbed

    refresh = load  # same operation: only not-yet-seen segments are read

    # -- querying ------------------------------------------------------------

    def settled(self, seed: int, fingerprint: str) -> dict | None:
        """The recorded row for this key, or ``None`` if still open."""
        return self.entries.get((seed, fingerprint))

    def cases(self) -> list:
        """All settled cases, decoded, in canonical (seed, fp) order."""
        return [FuzzCase.from_row(row) for _key, row in sorted(self.entries.items())]

    def __len__(self) -> int:
        return len(self.entries)

    # -- recording -----------------------------------------------------------

    def record(self, row: dict) -> bool:
        """Persist one settled case immediately (one segment per case).

        Returns False (and writes nothing) when the key is already
        settled — re-runs never duplicate rows.
        """
        case = FuzzCase.from_row(row)
        if case is None:
            raise ValueError(f"not a valid corpus row: {row!r}")
        key = (case.seed, case.fingerprint)
        if key in self.entries:
            return False
        self.entries[key] = row
        self._log.write_segment([row])
        self.stats["entries_recorded"] += 1
        if self._log.segment_count() > COMPACT_THRESHOLD:
            self.compact()
        return True

    def compact(self) -> dict:
        """Merge every segment into one, deduplicating by case key."""

        def merge(rows: list) -> list:
            merged: dict = {}
            for row in rows:
                case = FuzzCase.from_row(row)
                if case is None:
                    self.stats["lines_skipped"] += 1
                    continue
                merged.setdefault((case.seed, case.fingerprint), row)
            return [row for _key, row in sorted(merged.items())]

        return self._log.compact(merge)

    def segment_count(self) -> int:
        return self._log.segment_count()

    # -- identity ------------------------------------------------------------

    def canonical_rows(self) -> list:
        """Rows sorted by key with sorted inner keys — the ledger's value."""
        return [
            json.loads(json.dumps(row, sort_keys=True))
            for _key, row in sorted(self.entries.items())
        ]

    def canonical_bytes(self) -> bytes:
        """Byte identity of the ledger, independent of segment layout."""
        lines = [
            json.dumps(row, sort_keys=True)
            for _key, row in sorted(self.entries.items())
        ]
        return ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
