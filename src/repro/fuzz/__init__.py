"""Corpus-scale differential fuzzing of static level choices.

The last open soundness item of the roadmap: synthesize unannotated
applications (:mod:`repro.workloads.appgen`), infer their annotations
(:mod:`repro.core.infer`), let the Section 5 chooser assign levels, and
cross-check the assignment against exhaustive source-set DPOR
exploration (:mod:`repro.sched.explore`) — at the chosen levels *and*
one rung below, the native form of the HyperLTL-style "does level L
admit outcomes level L' forbids" comparison.

* :mod:`repro.fuzz.case` — the verdict taxonomy and the corpus row schema;
* :mod:`repro.fuzz.differential` — one seed end to end: infer, choose,
  probe, classify;
* :mod:`repro.fuzz.shrink` — greedy instance/statement deletion of
  UNSOUND findings, every step re-checked against the explorer;
* :mod:`repro.fuzz.ledger` — the append-only JSONL corpus ledger
  (:class:`repro.core.persist.SegmentLog` underneath) that makes runs
  resumable and re-runs cheap;
* :mod:`repro.fuzz.runner` — the corpus loop: resume, record, interrupt
  handling, optional fleet fan-out.

See ``docs/FUZZING.md`` for the corpus format and resume semantics.
"""

from repro.fuzz.case import (  # noqa: F401
    FUZZ_VERSION,
    FuzzCase,
    LOOSE,
    SOUND,
    TIGHT,
    UNSOUND,
    UNSTABLE,
    case_fingerprint,
    probe_knobs,
)
from repro.fuzz.differential import run_case  # noqa: F401
from repro.fuzz.ledger import CorpusLedger  # noqa: F401
from repro.fuzz.runner import FuzzRunner  # noqa: F401
