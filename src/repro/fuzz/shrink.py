"""Greedy shrinking of UNSOUND findings, re-checked against the explorer.

A raw UNSOUND witness names a whole generated application plus a probe
pair; most of it is usually irrelevant.  The shrinker minimises in two
greedy passes, each candidate deletion accepted only when the *shrunken*
case still reproduces the finding — a semantic violation at the admitted
levels whose probe stays clean at SERIALIZABLE (the same double check
:mod:`repro.fuzz.differential` classifies with, so shrinking can never
turn an UNSOUND case into an UNSTABLE one):

1. **instance deletion** — drop probe instances one at a time;
2. **statement deletion** — drop top-level statements from the involved
   transaction bodies one at a time, rebuilding the type with a trivial
   ``Q_i``/snapshot (a deleted statement's locals must not linger in the
   result formula).  A statement whose bound locals a later statement
   still references is never deleted — the shrunken program must stay
   executable, not merely re-checkable.

Deletion order is fixed (last to first), so equal inputs shrink to equal
reproducers — the shrunk dict is part of the deterministic ledger row.
"""

from __future__ import annotations

import dataclasses

from repro.core.conditions import SERIALIZABLE
from repro.core.formula import TRUE, Formula
from repro.core.program import TransactionType
from repro.core.terms import Local, Term


def _node_locals(value) -> set:
    """Every :class:`Local` mentioned anywhere inside a statement field."""
    if isinstance(value, (Term, Formula)):
        return {atom for atom in value.atoms() if isinstance(atom, Local)}
    if isinstance(value, Local):
        return {value}
    if isinstance(value, (tuple, list)):
        out: set = set()
        for item in value:
            out |= _node_locals(item)
        return out
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = set()
        for field in dataclasses.fields(value):
            out |= _node_locals(getattr(value, field.name))
        return out
    return set()


def _bound_locals(stmt) -> set:
    """Locals a statement binds (its dataflow outputs)."""
    bound: set = set()
    into = getattr(stmt, "into", None)
    if isinstance(into, Local):
        bound.add(into)
    for attr in ("binds", "bind"):
        for pair in getattr(stmt, attr, ()) or ():
            if isinstance(pair, tuple) and len(pair) == 2 and isinstance(pair[1], Local):
                bound.add(pair[1])
    return bound


def _deletable(body: tuple, index: int) -> bool:
    """A statement may go only if no later statement uses what it binds."""
    bound = _bound_locals(body[index])
    if not bound:
        return True
    used_later: set = set()
    for stmt in body[index + 1 :]:
        used_later |= _node_locals(stmt)
    return not (bound & used_later)


def _without_statement(txn: TransactionType, index: int) -> TransactionType:
    body = txn.body[:index] + txn.body[index + 1 :]
    # the deleted statement's locals may appear in Q_i/snapshot; weaken both
    # — the violation-persistence re-check decides if that loses the bug
    return TransactionType(
        name=txn.name,
        params=txn.params,
        body=body,
        consistency=txn.consistency,
        param_pre=txn.param_pre,
        result=TRUE,
        snapshot=(),
    )


def _distinct_txns(instances) -> list:
    """Distinct transaction objects in probe order (a same-type pair
    shares one object, shrunk once for both instances)."""
    seen: list = []
    for txn, _args, _name in instances:
        if not any(txn is known for known in seen):
            seen.append(txn)
    return seen


def _reproduces(instances, levels, invariant, initial, probe_schedules) -> bool:
    """Does the candidate still violate at ``levels`` but not SERIALIZABLE?"""
    from repro.fuzz.differential import explore_probe

    _schedules, violations = explore_probe(
        initial, instances, levels, invariant, max_schedules=probe_schedules
    )
    if not violations:
        return False
    serializable = {levels_name: SERIALIZABLE for levels_name in levels}
    _schedules, baseline = explore_probe(
        initial, instances, serializable, invariant, max_schedules=probe_schedules
    )
    return not baseline


def shrink_unsound(
    app,
    instances: list,
    levels: dict,
    invariant,
    initial,
    *,
    probe_schedules: int,
) -> dict | None:
    """Minimise one UNSOUND probe; returns the shrunk reproducer row.

    ``instances`` is the probe's ``(txn, args, name)`` list.  Returns
    ``None`` only if the finding stopped reproducing outright (a flake the
    deterministic explorer should never produce — reported as such).
    """
    from repro.fuzz.differential import explore_probe

    current = list(instances)
    if not _reproduces(current, levels, invariant, initial, probe_schedules):
        return None

    removed_instances = 0
    for index in range(len(current) - 1, -1, -1):
        if len(current) <= 1:
            break
        candidate = current[:index] + current[index + 1 :]
        if _reproduces(candidate, levels, invariant, initial, probe_schedules):
            current = candidate
            removed_instances += 1

    removed_statements = 0
    worklist = _distinct_txns(current)
    while worklist:
        txn = worklist.pop(0)
        index = len(txn.body) - 1
        while index >= 0 and len(txn.body) > 1:
            if not _deletable(txn.body, index):
                index -= 1
                continue
            shrunk_txn = _without_statement(txn, index)
            candidate = [
                (shrunk_txn, a, n) if t is txn else (t, a, n)
                for t, a, n in current
            ]
            if _reproduces(candidate, levels, invariant, initial, probe_schedules):
                current = candidate
                txn = shrunk_txn
                removed_statements += 1
            index -= 1

    _schedules, violations = explore_probe(
        initial, current, levels, invariant, max_schedules=probe_schedules
    )
    summary, history, committed = violations[0]
    return {
        "instances": [name for _txn, _args, name in current],
        "args": [dict(sorted(args.items())) for _txn, args, _name in current],
        "bodies": {
            txn.name: [
                getattr(stmt, "label", None) or type(stmt).__name__
                for stmt in txn.body
            ]
            for txn, _args, _name in current
        },
        "removed_instances": removed_instances,
        "removed_statements": removed_statements,
        "summary": summary,
        "history": history,
        "committed": committed,
    }
