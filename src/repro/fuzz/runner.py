"""The resumable corpus runner: seeds in, settled ledger rows out.

One :class:`FuzzRunner` owns one seed range, one generator knob string
and one corpus directory.  Per seed it (cheaply) regenerates the
application, fingerprints it, skips the seed when the ledger already
holds its row, and otherwise runs the full differential check
(:func:`repro.fuzz.differential.run_case`) and records the row
immediately — per-case durability is what makes SIGKILL mid-corpus lose
at most one seed.

Interruption contract: SIGTERM flips a flag checked between cases, so
the runner finishes the case in flight, leaves a loadable ledger and
reports ``interrupted: True``.  A rerun with the same arguments settles
exactly the remaining seeds and the final ledger is byte-identical to an
uninterrupted run's (:meth:`CorpusLedger.canonical_bytes`).

Fan-out: :meth:`FuzzRunner.run_fleet` dispatches unsettled seeds as
``fuzz`` jobs across a running PR-9 fleet via
:class:`repro.service.client.AsyncServiceClient` — the differential
check is deterministic, so remote rows are byte-identical to local ones
and land in the same ledger.
"""

from __future__ import annotations

import signal
import threading

from repro.fuzz.case import (
    FuzzCase,
    LOOSE,
    SOUND,
    TIGHT,
    UNSOUND,
    UNSTABLE,
    case_fingerprint,
    probe_knobs,
)
from repro.fuzz.differential import (
    DEFAULT_BUDGET,
    DEFAULT_PAIRS,
    DEFAULT_PROBE_SCHEDULES,
    run_case,
)
from repro.fuzz.ledger import CorpusLedger
from repro.workloads.appgen import AppGenConfig, generate_application

#: Default corpus directory, next to the verdict cache's ``.repro-cache``.
DEFAULT_CORPUS_DIR = ".repro-corpus"


class FuzzRunner:
    """Drive one corpus of seeds through the differential check."""

    def __init__(
        self,
        seeds: range,
        knobs: str | None = None,
        corpus_dir: str = DEFAULT_CORPUS_DIR,
        *,
        budget: int = DEFAULT_BUDGET,
        pairs: int = DEFAULT_PAIRS,
        probe_schedules: int = DEFAULT_PROBE_SCHEDULES,
        force_level: str | None = None,
        shrink: bool = True,
        progress=None,
    ) -> None:
        self.seeds = seeds
        self.knobs = knobs
        self.budget = budget
        self.pairs = pairs
        self.probe_schedules = probe_schedules
        self.force_level = force_level
        self.shrink = shrink
        self.progress = progress  # callable(str) or None
        self.ledger = CorpusLedger(corpus_dir)
        self._stop = threading.Event()

    # -- interruption --------------------------------------------------------

    def request_stop(self) -> None:
        """Finish the case in flight, then stop (the SIGTERM path)."""
        self._stop.set()

    def _install_sigterm(self):
        """Route SIGTERM to :meth:`request_stop`; returns a restore thunk."""
        try:
            previous = signal.signal(
                signal.SIGTERM, lambda _signum, _frame: self.request_stop()
            )
        except ValueError:  # not the main thread: rely on request_stop()
            return lambda: None
        return lambda: signal.signal(signal.SIGTERM, previous)

    # -- the corpus loop -----------------------------------------------------

    def _case_key(self, seed: int) -> tuple:
        config = AppGenConfig.from_knobs(seed, self.knobs)
        probe = probe_knobs(
            self.budget, self.pairs, self.probe_schedules, self.force_level
        )
        return config, case_fingerprint(generate_application(config), config, probe)

    def _note(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(self) -> dict:
        """Settle every unsettled seed in range; returns the run summary."""
        self.ledger.load()
        restore = self._install_sigterm()
        explored = skipped = 0
        interrupted = False
        try:
            for seed in self.seeds:
                if self._stop.is_set():
                    interrupted = True
                    break
                config, fingerprint = self._case_key(seed)
                if self.ledger.settled(seed, fingerprint) is not None:
                    skipped += 1
                    continue
                case = run_case(
                    config,
                    budget=self.budget,
                    pairs=self.pairs,
                    probe_schedules=self.probe_schedules,
                    force_level=self.force_level,
                    shrink=self.shrink,
                )
                self.ledger.record(case.to_row())
                explored += 1
                self._note(
                    f"appgen:{seed}: {case.verdict}"
                    + (f"/{case.tightness}" if case.tightness else "")
                    + f" ({case.schedules} schedules)"
                )
        finally:
            restore()
        return self.summary(explored=explored, skipped=skipped, interrupted=interrupted)

    # -- fleet fan-out -------------------------------------------------------

    def run_fleet(
        self,
        host: str,
        port: int,
        *,
        inflight: int = 8,
        deadline_ms: int | None = None,
    ) -> dict:
        """Settle unsettled seeds via ``fuzz`` jobs on a running service.

        The check is deterministic, so a remote worker's row equals the
        row the local loop would have written; rows are recorded as
        results stream back, preserving per-case durability.
        """
        import asyncio

        self.ledger.load()
        pending = []
        skipped = 0
        for seed in self.seeds:
            _config, fingerprint = self._case_key(seed)
            if self.ledger.settled(seed, fingerprint) is not None:
                skipped += 1
            else:
                pending.append(seed)

        explored = errors = 0

        async def drive() -> None:
            nonlocal explored, errors
            from repro.service.client import AsyncServiceClient

            client = AsyncServiceClient(host, port, pool_size=inflight)
            gate = asyncio.Semaphore(inflight)

            async def one(seed: int) -> None:
                nonlocal explored, errors
                options = {
                    "budget": self.budget,
                    "pairs": self.pairs,
                    "max_schedules": self.probe_schedules,
                }
                if self.knobs:
                    options["profile"] = self.knobs
                if self.force_level:
                    options["level"] = self.force_level
                async with gate:
                    response = await client.fuzz(
                        f"appgen:{seed}", deadline_ms=deadline_ms, **options
                    )
                for entry in response.get("results", []):
                    row = entry.get("result")
                    if entry.get("timed_out") or "error" in entry or not row:
                        errors += 1
                        continue
                    if FuzzCase.from_row(row) is None:
                        errors += 1
                        continue
                    self.ledger.record(row)
                    explored += 1
                    self._note(f"appgen:{seed}: {row['verdict']} (remote)")

            try:
                await asyncio.gather(*(one(seed) for seed in pending))
            finally:
                await client.aclose()

        asyncio.run(drive())
        summary = self.summary(explored=explored, skipped=skipped, interrupted=False)
        summary["errors"] = errors
        return summary

    # -- reporting -----------------------------------------------------------

    def summary(self, *, explored: int, skipped: int, interrupted: bool) -> dict:
        """Run summary plus verdict tallies over the requested seed range."""
        verdicts = {SOUND: 0, UNSOUND: 0, UNSTABLE: 0}
        tightness = {TIGHT: 0, LOOSE: 0}
        open_seeds = 0
        for seed in self.seeds:
            _config, fingerprint = self._case_key(seed)
            row = self.ledger.settled(seed, fingerprint)
            case = FuzzCase.from_row(row) if row else None
            if case is None:
                open_seeds += 1
                continue
            verdicts[case.verdict] += 1
            if case.tightness is not None:
                tightness[case.tightness] += 1
        total = len(self.seeds)
        return {
            "seeds": total,
            "explored": explored,
            "skipped": skipped,
            "skip_rate": (skipped / total) if total else 0.0,
            "open": open_seeds,
            "interrupted": interrupted,
            "verdicts": verdicts,
            "tightness": tightness,
        }

    def findings(self) -> list:
        """Lint-style findings for every non-SOUND case in the seed range."""
        out = []
        for seed in self.seeds:
            _config, fingerprint = self._case_key(seed)
            row = self.ledger.settled(seed, fingerprint)
            case = FuzzCase.from_row(row) if row else None
            if case is None:
                continue
            finding = case.finding()
            if finding is not None:
                out.append(finding)
        return out
