"""Corpus case records: the verdict taxonomy and the ledger row schema.

Every fuzzed seed settles into exactly one **soundness verdict**:

``SOUND``
    No explored schedule at the chooser's assignment violates the
    semantic criterion — the paper's claim held for this program.
``UNSOUND``
    Some schedule at a level the chooser *admitted* violates the
    criterion while the same instance set is clean at SERIALIZABLE — a
    real chooser (or theorem-encoding) bug, reported with a replayable
    witness and a shrunk reproducer.
``UNSTABLE``
    A violation was observed, but the same instance set violates at
    SERIALIZABLE too.  The "invariant" inference produced is not
    actually preserved by the program (template over-claim the CEGIS
    pass missed), so the case says nothing about the chooser and is
    excluded from the soundness accounting.

Sound cases additionally carry a **tightness verdict** — the native
level-comparison check: weaken every transaction one rung down the
chooser's ladder and re-explore.  ``TIGHT`` means the weaker assignment
exhibits a violation witness (the chooser's level was necessary);
``LOOSE`` means even the weaker levels are clean on the explored probes
(the choice may be conservative — or the probes too small to show why
not).  ``None`` when every transaction already sits at the ladder floor.

A case is keyed by ``(seed, fingerprint)`` where the fingerprint digests
the fuzz algorithm version, the generator knob string and the generated
program text — any change to either re-opens the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.application import Application
from repro.workloads.appgen import AppGenConfig

#: Bump on any change to the differential algorithm or the row schema:
#: old corpus entries then miss cleanly and re-runs re-settle every seed.
FUZZ_VERSION = "fuzz1"

SOUND = "SOUND"
UNSOUND = "UNSOUND"
UNSTABLE = "UNSTABLE"

TIGHT = "TIGHT"
LOOSE = "LOOSE"

VERDICTS = (SOUND, UNSOUND, UNSTABLE)
TIGHTNESS = (TIGHT, LOOSE)


def probe_knobs(
    budget: int, pairs: int, probe_schedules: int, force_level: str | None
) -> str:
    """Canonical string of the check parameters that shape a verdict."""
    return (
        f"budget={budget};pairs={pairs};schedules={probe_schedules}"
        f";force={force_level or '-'}"
    )


def case_fingerprint(app: Application, config: AppGenConfig, probe: str = "") -> str:
    """Digest of everything that determines a seed's verdict.

    ``probe`` is the :func:`probe_knobs` string — different check budgets
    or a forced chooser override are different experiments and must not
    answer each other from the ledger.  Strings only —
    :func:`repro.core.cache.fingerprint_many` digests strings
    structurally, so the fingerprint is stable across processes (a fleet
    worker and the local runner agree on the key).
    """
    from repro.core.cache import fingerprint_many

    return fingerprint_many(FUZZ_VERSION, config.knobs(), probe, repr(app.transactions))


@dataclass
class FuzzCase:
    """One settled corpus case — the in-memory form of a ledger row.

    Deliberately excludes wall-clock times and worker counts: rows must
    be byte-identical between an interrupted-and-resumed run and an
    uninterrupted one (the resumability contract the tests enforce).
    """

    seed: int
    fingerprint: str
    knobs: str
    verdict: str
    tightness: str | None = None
    levels: dict = field(default_factory=dict)  # txn name -> chosen level
    probes: int = 0  # probe instance sets explored
    schedules: int = 0  # completed schedules across all explorations
    violation: dict | None = None  # first witness at the admitted levels
    shrunk: dict | None = None  # shrunk reproducer (UNSOUND only)

    def to_row(self) -> dict:
        """The JSONL ledger row (sorted keys via json.dumps at write)."""
        return {
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "knobs": self.knobs,
            "verdict": self.verdict,
            "tightness": self.tightness,
            "levels": dict(sorted(self.levels.items())),
            "probes": self.probes,
            "schedules": self.schedules,
            "violation": self.violation,
            "shrunk": self.shrunk,
        }

    @classmethod
    def from_row(cls, row: dict) -> "FuzzCase | None":
        """Decode a ledger row; ``None`` when it is not a valid case."""
        try:
            seed = row["seed"]
            fingerprint = row["fingerprint"]
            verdict = row["verdict"]
        except (KeyError, TypeError):
            return None
        if not isinstance(seed, int) or isinstance(seed, bool):
            return None
        if not isinstance(fingerprint, str) or verdict not in VERDICTS:
            return None
        tightness = row.get("tightness")
        if tightness is not None and tightness not in TIGHTNESS:
            return None
        return cls(
            seed=seed,
            fingerprint=fingerprint,
            knobs=row.get("knobs") or "",
            verdict=verdict,
            tightness=tightness,
            levels=dict(row.get("levels") or {}),
            probes=int(row.get("probes") or 0),
            schedules=int(row.get("schedules") or 0),
            violation=row.get("violation"),
            shrunk=row.get("shrunk"),
        )

    def finding(self) -> dict | None:
        """A ``repro lint``-style finding for a non-SOUND case, else None."""
        if self.verdict == UNSOUND:
            witness = (self.violation or {}).get("history")
            message = (
                f"appgen:{self.seed}: violation at admitted levels"
                f" {self.levels} — {(self.violation or {}).get('summary', '?')}"
            )
            return {
                "rule": "fuzz-unsound",
                "severity": "error",
                "transaction": None,
                "message": message,
                "seed": self.seed,
                "fingerprint": self.fingerprint,
                "witness": witness,
                "shrunk": self.shrunk,
            }
        if self.verdict == UNSTABLE:
            return {
                "rule": "fuzz-unstable-invariant",
                "severity": "warning",
                "transaction": None,
                "message": (
                    f"appgen:{self.seed}: inferred invariant violated even at"
                    " SERIALIZABLE — inference over-claimed; excluded from"
                    " soundness accounting"
                ),
                "seed": self.seed,
                "fingerprint": self.fingerprint,
                "witness": (self.violation or {}).get("history"),
                "shrunk": None,
            }
        return None
