#!/usr/bin/env python3
"""Quickstart: analyze a two-transaction application and pick levels.

Builds a minimal application from scratch — a monotone `Watcher` and an
incrementing `Bumper` over one item — runs the paper's Section 5 procedure
to find each type's lowest safe isolation level, then validates the
verdicts dynamically with random schedules on the engine.

Run:  python examples/quickstart.py
"""

from repro import (
    Application,
    DbState,
    InstanceSpec,
    InterferenceChecker,
    TransactionType,
    analyze_application,
    validate_level,
)
from repro.core.domains import DomainSpec, ItemDomain
from repro.core.formula import ge, le
from repro.core.program import Read, Write
from repro.core.report import level_table
from repro.core.terms import Item, Local


def build_application() -> Application:
    """Two transaction types over a single counter item ``x >= 0``."""
    # Watcher reads x; its annotation claims only the *monotone* fact
    # v <= x, which survives increments but not rollbacks.
    watcher = TransactionType(
        name="Watcher",
        body=(Read(Local("v"), Item("x"), post=le(Local("v"), Item("x"))),),
        consistency=ge(Item("x"), 0),
        # Q_i: the reported value never exceeds the live counter — the spec
        # a monitoring dashboard would carry ("we never over-report")
        result=le(Local("v"), Item("x")),
    )
    # Bumper increments x, preserving the invariant.
    bumper = TransactionType(
        name="Bumper",
        body=(
            Read(Local("b"), Item("x")),
            Write(Item("x"), Local("b") + 1),
        ),
        consistency=ge(Item("x"), 0),
        result=ge(Item("x"), 1),
    )
    # tiny finite domains for the bounded model checker
    spec = DomainSpec(items=(ItemDomain("x", (0, 1, 2)),))
    return Application("quickstart", (watcher, bumper), spec=spec)


def main() -> None:
    app = build_application()

    print("== static analysis (Theorems 1-4, Section 5 chooser) ==")
    checker = InterferenceChecker(app.spec, budget=2000, seed=0)
    report = analyze_application(app, checker)
    print(level_table(report))
    print()
    for choice in report.choices:
        print(choice.summary())
    print()
    print(f"interference tiers used: {checker.stats}")
    print()

    print("== dynamic validation (50 random schedules each) ==")
    initial = DbState(items={"x": 1})
    invariant = ge(Item("x"), 0)
    for level in ("READ UNCOMMITTED", "READ COMMITTED"):
        specs = [
            InstanceSpec(app.transaction("Watcher"), {}, level, "W"),
            InstanceSpec(app.transaction("Bumper"), {}, "READ COMMITTED", "B1"),
            InstanceSpec(
                app.transaction("Bumper"), {}, "READ COMMITTED", "B2", abort_after=2
            ),  # a bumper that rolls back, the Watcher's nemesis at RU
        ]
        tally = validate_level(initial, specs, invariant, rounds=50, seed=1)
        print(f"  Watcher at {level:18s}: {tally['violations']:2d}/50 violating schedules")
    print()
    print("The chooser's verdict (Watcher -> READ COMMITTED) is exactly the")
    print("boundary where the violations vanish.")


if __name__ == "__main__":
    main()
