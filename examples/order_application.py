#!/usr/bin/env python3
"""The Section 6 ordering application (Figures 2-5), end to end.

1. Runs the Section 5 chooser over Mailing_List / New_Order / Delivery /
   Audit and prints the level table (the paper's central result).
2. Shows the one-order-per-day variant needing READ COMMITTED with
   first-committer-wins.
3. Replays the READ UNCOMMITTED failure live: another New_Order's rollback
   strands this New_Order's dirty read of MAXDATE, leaving a delivery-date
   gap.

Run:  python examples/order_application.py          (full analysis, ~5 min)
      python examples/order_application.py --fast   (skip the full chooser)
"""

import sys

from repro import DbState, InstanceSpec, InterferenceChecker, Simulator
from repro.apps import orders
from repro.core.chooser import analyze_application
from repro.core.conditions import READ_COMMITTED, READ_COMMITTED_FCW, check_transaction_at
from repro.core.report import level_table
from repro.sched.semantic import check_semantic_correctness

BUDGET = 3000


def full_chooser() -> None:
    print("== 1. the Section 5 chooser over Figures 2-5 ==")
    app = orders.make_application("no_gap")
    checker = InterferenceChecker(app.spec, budget=BUDGET, seed=3)
    report = analyze_application(app, checker)
    print(level_table(report))
    print()


def one_order_variant() -> None:
    print("== 2. the one-order-per-day variant (Thm 3 territory) ==")
    app = orders.make_application("one_order")
    checker = InterferenceChecker(app.spec, budget=BUDGET, seed=3)
    target = app.transaction("New_Order")
    rc = check_transaction_at(app, target, READ_COMMITTED, checker)
    fcw = check_transaction_at(app, target, READ_COMMITTED_FCW, checker)
    print(f"  New_Order @ READ COMMITTED:     {'OK' if rc.ok else 'FAILS'}")
    for ob in rc.failures[:2]:
        print(f"    {ob.describe()}")
    print(f"  New_Order @ READ COMMITTED FCW: {'OK' if fcw.ok else 'FAILS'}  ({fcw.note})")
    print()
    print("  The strong annotation maxdate = maximum_date is interfered with")
    print("  by any other New_Order's bump; but the read is followed by an")
    print("  update of the same item, so first-committer-wins protects it.")
    print()


def live_gap_anomaly() -> None:
    print("== 3. the READ UNCOMMITTED rollback anomaly, live ==")
    initial = DbState(
        items={"maximum_date": 1},
        tables={
            "ORDERS": [{"order_info": 1, "cust_name": "a", "deliv_date": 1, "done": False}],
            "CUST": [{"cust_name": "a", "address": "x", "num_orders": 1}],
        },
    )
    new_order = orders.make_new_order("no_gap")
    for level in ("READ UNCOMMITTED", "READ COMMITTED"):
        specs = [
            InstanceSpec(new_order, {"customer": "b", "address": "x", "order_info": 2},
                         level, "T1"),
            InstanceSpec(new_order, {"customer": "c", "address": "x", "order_info": 3},
                         "READ COMMITTED", "T2", abort_after=5),
        ]
        # T2 bumps MAXDATE and inserts; T1 reads MAXDATE (dirty at RU,
        # blocked at RC); T2 rolls back; T1 finishes
        result = Simulator(initial.copy(), specs, script=[1, 1, 0, 1, 1, 1] + [0] * 8).run()
        dates = sorted(row["deliv_date"] for row in result.final.rows("ORDERS"))
        report = check_semantic_correctness(result, orders.invariant("no_gap"))
        print(f"  T1 at {level}:")
        print(f"    delivery dates present: {dates}")
        print(f"    {report.summary()}")
    print()
    print("  At READ UNCOMMITTED day 2 has no order — the 'no gaps' business")
    print("  rule is broken exactly as the paper predicts; READ COMMITTED's")
    print("  short read locks close the hole.")


if __name__ == "__main__":
    fast = "--fast" in sys.argv
    if not fast:
        full_chooser()
    else:
        print("(skipping the full chooser; run without --fast for the level table)\n")
    one_order_variant()
    live_gap_anomaly()
