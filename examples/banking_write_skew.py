#!/usr/bin/env python3
"""Example 3 / Figure 1 end to end: write skew under SNAPSHOT isolation.

Walks the paper's banking example through every layer of the library:

1. the static Theorem 5 analysis flags exactly the Withdraw_sav /
   Withdraw_ch pair (disjoint write sets, interfering read-step posts);
2. a scripted schedule on the engine realises the anomaly: both
   withdrawals commit and the combined balance goes negative;
3. first-committer-wins saves two same-account withdrawals (one aborts);
4. a statistical sweep shows the violation frequency per isolation level.

Run:  python examples/banking_write_skew.py
"""

from repro import DbState, InstanceSpec, InterferenceChecker, Simulator, validate_level
from repro.apps import banking
from repro.core.conditions import SNAPSHOT, check_transaction_at
from repro.core.formula import ge
from repro.core.report import failure_details
from repro.core.terms import Field, IntConst
from repro.sched.anomalies import detect_write_skew
from repro.sched.semantic import check_semantic_correctness
from repro.sched.serializability import check_conflict_serializability

INVARIANT = ge(
    Field("acct_sav", IntConst(0), "bal") + Field("acct_ch", IntConst(0), "bal"), 0
)


def static_analysis() -> None:
    print("== 1. static analysis: Theorem 5 (SNAPSHOT) ==")
    app = banking.make_application()
    checker = InterferenceChecker(app.spec, budget=4000, seed=1)
    for name in app.transaction_names():
        result = check_transaction_at(app, app.transaction(name), SNAPSHOT, checker)
        print(f"  {result.summary()}")
    print()
    result = check_transaction_at(
        app, app.transaction("Withdraw_sav"), SNAPSHOT, checker
    )
    print(failure_details(result, limit=2))
    print()


def scripted_write_skew() -> None:
    print("== 2. the write-skew schedule, live on the engine ==")
    initial = DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}})
    specs = [
        InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T1"),
        InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, "SNAPSHOT", "T2"),
    ]
    # both take their snapshots and read, then both write, then both commit
    result = Simulator(initial, specs, script=[0, 0, 1, 1] + [0, 1] * 4).run()
    sav = result.final.read_field("acct_sav", 0, "bal")
    ch = result.final.read_field("acct_ch", 0, "bal")
    print(f"  committed: {[o.name for o in result.committed]}")
    print(f"  final balances: sav={sav} ch={ch}  (sum {sav + ch})")
    print(f"  semantic check:  {check_semantic_correctness(result, INVARIANT).summary()}")
    print(f"  serializable:    {check_conflict_serializability(result).serializable}")
    print(f"  anomaly:         {detect_write_skew(result)}")
    print()


def first_committer_wins() -> None:
    print("== 3. same account, same array: first-committer-wins ==")
    initial = DbState(arrays={"acct_sav": {0: {"bal": 2}}, "acct_ch": {0: {"bal": 0}}})
    specs = [
        InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T1"),
        InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 2}, "SNAPSHOT", "T2"),
    ]
    result = Simulator(initial, specs, script=[0, 0, 1, 1] + [0, 1] * 4).run()
    print(f"  committed: {[o.name for o in result.committed]}")
    print(f"  aborted:   {[(o.name, o.abort_reasons) for o in result.aborted]}")
    print(f"  final sav: {result.final.read_field('acct_sav', 0, 'bal')}")
    print(f"  semantic check: {check_semantic_correctness(result, INVARIANT).summary()}")
    print()


def statistical_sweep() -> None:
    print("== 4. violation frequency per level (100 random schedules) ==")
    initial = DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}})
    for level in ("READ COMMITTED", "SNAPSHOT", "REPEATABLE READ", "SERIALIZABLE"):
        specs = [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, level, "T1"),
            InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, level, "T2"),
        ]
        tally = validate_level(initial, specs, INVARIANT, rounds=100, seed=7)
        print(f"  {level:18s}: {tally['violations']:3d}/100")
    print()
    print("SNAPSHOT admits the skew; REPEATABLE READ's long read locks and")
    print("SERIALIZABLE close it — exactly Theorem 5's verdict.")


def assertional_concurrency_control() -> None:
    print()
    print("== 5. closing the skew without locks: the assertional CC ==")
    from repro import AssertionGuard

    initial = DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}})
    violations = vetoes = 0
    for seed in range(40):
        specs = [
            InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T1"),
            InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, "SNAPSHOT", "T2"),
        ]
        guard = AssertionGuard()
        sim = Simulator(initial.copy(), specs, seed=seed, retry=True, observers=[guard])
        result = sim.run()
        if not check_semantic_correctness(result, INVARIANT).correct:
            violations += 1
        vetoes += result.stats.get("guard_vetoes", 0)
    print(f"  SNAPSHOT + AssertionGuard: {violations}/40 violations, {vetoes} vetoes")
    print("  The run-time guard (the idea of the paper's reference [3])")
    print("  vetoes exactly the invalidating steps: semantic correctness")
    print("  without REPEATABLE READ's lock waits.")


if __name__ == "__main__":
    static_analysis()
    scripted_write_skew()
    first_committer_wins()
    statistical_sweep()
    assertional_concurrency_control()
