#!/usr/bin/env python3
"""TPC-C-lite at a combination of isolation levels (paper Section 7).

The paper's closing plan: "analyze the TPC-C benchmark transactions and
run them at a combination of isolation levels to evaluate the
performance."  This script does both halves on TPC-C-lite:

1. derives a per-type level assignment (the analysis-backed mix);
2. races that mix against uniform assignments under the standard TPC-C
   transaction mix and prints throughput / waits / aborts / violations.

Run:  python examples/tpcc_mixed_levels.py
"""

from repro.apps import tpcc
from repro.core.formula import AbstractPred
from repro.core.report import format_table
from repro.workloads.generator import WorkloadConfig, tpcc_workload
from repro.workloads.runner import compare_assignments

MIXED = {
    "TPCC_NewOrder": "READ COMMITTED FCW",   # next_o_id read-then-write: FCW protects it
    "TPCC_Payment": "READ COMMITTED FCW",    # every read followed by a write of the item
    "TPCC_OrderStatus": "READ COMMITTED",    # read-only report over committed data
    "TPCC_Delivery": "REPEATABLE READ",      # its SELECT must be stable (Thm 6)
    "TPCC_StockLevel": "READ UNCOMMITTED",   # approximate monitoring, weak spec
}


def counters_consistent(state, env) -> bool:
    """The workload's Q_Sch: order-id counters bound the orders; stock >= 0."""
    for district in range(tpcc.DISTRICTS):
        bound = state.read_field("district", district, "next_o_id")
        for row in state.rows("ORDERS"):
            if row.get("d_id") == district and row.get("o_id") >= bound:
                return False
    oids = {}
    for row in state.rows("ORDERS"):
        key = (row.get("d_id"), row.get("o_id"))
        oids[key] = oids.get(key, 0) + 1
    if any(count > 1 for count in oids.values()):
        return False  # duplicate order numbers: the lost-update signature
    return all(
        state.read_field("stock", item, "quantity") >= 0 for item in range(tpcc.ITEMS)
    )


INVARIANT = AbstractPred("tpcc counters consistent", evaluator=counters_consistent)


def main() -> None:
    print("analysis-backed assignment:")
    for name, level in MIXED.items():
        print(f"  {name:18s} -> {level}")
    print()

    assignments = {
        "mixed (analysis)": MIXED,
        "all READ COMMITTED": {name: "READ COMMITTED" for name in MIXED},
        "all SNAPSHOT": {name: "SNAPSHOT" for name in MIXED},
        "all REPEATABLE READ": {name: "REPEATABLE READ" for name in MIXED},
        "all SERIALIZABLE": {name: "SERIALIZABLE" for name in MIXED},
    }

    def make_specs(assignment):
        return tpcc_workload(
            WorkloadConfig(size=10, hot_fraction=0.6, seed=11), levels=assignment
        )

    comparison = compare_assignments(
        make_specs, tpcc.initial_state(), assignments, rounds=6, seed=13,
        invariant=INVARIANT,
    )
    rows = [
        (
            label,
            f"{metrics.throughput:.1f}",
            f"{metrics.wait_rate:.3f}",
            f"{metrics.abort_rate:.3f}",
            metrics.deadlocks,
            metrics.semantic_violations,
        )
        for label, metrics in comparison.items()
    ]
    print(
        format_table(
            ("assignment", "throughput", "waits", "aborts", "deadlocks", "violations"),
            rows,
        )
    )
    print()
    print("Reading the shape: the mixed assignment is the fastest row with")
    print("zero violations.  Uniform READ COMMITTED is comparable in speed")
    print("but admits lost updates on the order-number counters; uniform")
    print("SERIALIZABLE is clean but pays for its locks in deadlocks.")


if __name__ == "__main__":
    main()
