"""E11 — the assertional concurrency control ([3], the paper's lineage).

The paper's reference [3] (Bernstein, Gerstl, Leung & Lewis, ICDE 1998)
builds a concurrency control that tracks assertions at run time and blocks
the interleavings that would invalidate one — making *every* schedule
semantically correct without locks' serialization.  This bench runs the
statically-unsafe write-skew pair at SNAPSHOT with and without the guard,
and against the locking fix (REPEATABLE READ): the guard closes the
anomaly while keeping SNAPSHOT's no-wait reads.
"""

import pytest

from benchmarks._report import emit
from repro.apps import banking
from repro.core.formula import ge
from repro.core.report import format_table
from repro.core.state import DbState
from repro.core.terms import Field, IntConst
from repro.sched.monitor import AssertionGuard
from repro.sched.semantic import check_semantic_correctness
from repro.sched.simulator import InstanceSpec, Simulator

ROUNDS = 40

INVARIANT = ge(
    Field("acct_sav", IntConst(0), "bal") + Field("acct_ch", IntConst(0), "bal"), 0
)


def _specs(level):
    return [
        InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, level, "T1"),
        InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, level, "T2"),
    ]


def _initial():
    return DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}})


def _run(level, guarded, seed):
    observers = [AssertionGuard()] if guarded else []
    sim = Simulator(_initial(), _specs(level), seed=seed, retry=True, observers=observers)
    result = sim.run()
    report = check_semantic_correctness(result, INVARIANT)
    return result, report


@pytest.fixture(scope="module")
def tallies():
    configs = {
        "SNAPSHOT, unguarded": ("SNAPSHOT", False),
        "SNAPSHOT + assertional CC": ("SNAPSHOT", True),
        "REPEATABLE READ (locking fix)": ("REPEATABLE READ", False),
    }
    out = {}
    for label, (level, guarded) in configs.items():
        violations = vetoes = waits = commits = 0
        for seed in range(ROUNDS):
            result, report = _run(level, guarded, seed)
            violations += 0 if report.correct else 1
            vetoes += result.stats.get("guard_vetoes", 0)
            waits += result.stats.get("waits", 0)
            commits += len(result.committed)
        out[label] = (violations, vetoes, waits, commits)
    return out


def test_bench_assertional_cc(benchmark, tallies):
    benchmark(lambda: _run("SNAPSHOT", True, 0))
    rows = [
        (label, f"{violations}/{ROUNDS}", vetoes, waits, commits)
        for label, (violations, vetoes, waits, commits) in tallies.items()
    ]
    emit(
        "E11-assertional-cc",
        format_table(
            ("configuration", "violations", "guard vetoes", "lock waits", "commits"), rows
        ),
    )


def test_guard_closes_the_anomaly(tallies):
    assert tallies["SNAPSHOT, unguarded"][0] > 0
    assert tallies["SNAPSHOT + assertional CC"][0] == 0


def test_guard_matches_locking_correctness(tallies):
    assert tallies["SNAPSHOT + assertional CC"][0] == tallies["REPEATABLE READ (locking fix)"][0]


def test_guard_keeps_snapshot_waitfreedom(tallies):
    """SNAPSHOT reads never wait; the guard pays in vetoes, not waits."""
    _v, vetoes, waits, _c = tallies["SNAPSHOT + assertional CC"]
    assert waits == 0 and vetoes > 0
