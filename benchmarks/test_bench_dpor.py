"""E16 — source-set DPOR vs sleep-set lite on the exhaustive explorer.

Three measurements:

* **withdraw-race-3** — the three-instance lost-update workload, explored
  to completion by both pruning modes at each interesting level.  Race
  reversal visits a fraction of lite's runs (the acceptance bar is >=10x
  at SNAPSHOT, where level-aware begin/commit accesses pay off most) and
  reaches exactly the same final states.
* **tpcc district-mix** — two NewOrders and a Payment on one district,
  both modes given the same run budget: optimal finishes the exhaustive
  certification, lite truncates.
* **fingerprint cost** — the structural tuple fingerprint vs the legacy
  repr+sha256 construction it replaced, timed over the states of one
  completed run.

Emits ``BENCH_dpor.json`` for CI trend tracking.
"""

import hashlib
import time

import pytest

from benchmarks._report import emit, emit_json
from repro.core.report import format_table
from repro.pipeline.scenarios import scenarios_for
from repro.sched.explore import _state_token, explore, state_fingerprint
from repro.sched.simulator import Simulator

LEVELS = ("READ COMMITTED", "REPEATABLE READ", "SNAPSHOT")

#: run budget under which optimal must finish district-mix and lite must not
MIX_BUDGET = 1000

FINGERPRINT_ROUNDS = 200


def timed_explore(scenario, level, **kwargs):
    levels = {spec.txn_type.name: level for spec in scenario.specs({})}
    start = time.perf_counter()
    result = explore(scenario.initial(), scenario.specs(levels), retry=True, **kwargs)
    return result, time.perf_counter() - start


def final_states(result):
    return {
        (
            _state_token(schedule.final),
            tuple(sorted((o.name, o.status) for o in schedule.outcomes)),
        )
        for schedule in result.results
    }


@pytest.fixture(scope="module")
def races():
    scenario = next(s for s in scenarios_for("banking") if s.name == "withdraw-race-3")
    out = {}
    for level in LEVELS:
        out[level] = {
            "lite": timed_explore(scenario, level, max_schedules=50_000, dpor="lite"),
            "optimal": timed_explore(
                scenario, level, max_schedules=50_000, dpor="optimal"
            ),
        }
    return out


def test_bench_race_reversal_reduction(races):
    """Optimal explores >=10x fewer runs than lite without losing a state."""
    rows = []
    payload = {}
    for level in LEVELS:
        lite, lite_wall = races[level]["lite"]
        optimal, opt_wall = races[level]["optimal"]
        assert not lite.truncated and not optimal.truncated
        assert final_states(optimal) == final_states(lite)
        ratio = lite.runs / optimal.runs
        rows.append(
            (level, lite.runs, optimal.runs, f"{ratio:.1f}x",
             optimal.races, optimal.reversals,
             f"{lite_wall * 1000:.0f}/{opt_wall * 1000:.0f}")
        )
        payload[level] = {
            "lite": lite.to_dict(),
            "optimal": optimal.to_dict(),
            "ratio": round(ratio, 2),
            "wall_ms": {
                "lite": round(lite_wall * 1000, 1),
                "optimal": round(opt_wall * 1000, 1),
            },
        }
    # the acceptance bar: a 10x schedule reduction on the bundled scenario
    assert payload["SNAPSHOT"]["ratio"] >= 10.0
    emit(
        "E16-race-reversal (withdraw-race-3)",
        format_table(
            ("level", "lite runs", "optimal runs", "ratio", "races",
             "reversals", "wall ms l/o"),
            rows,
        ),
    )


@pytest.fixture(scope="module")
def mix():
    scenario = next(s for s in scenarios_for("tpcc-lite") if s.name == "district-mix")
    return {
        "lite": timed_explore(
            scenario, "SERIALIZABLE", max_schedules=MIX_BUDGET, dpor="lite"
        ),
        "optimal": timed_explore(
            scenario, "SERIALIZABLE", max_schedules=MIX_BUDGET, dpor="optimal"
        ),
    }


def test_bench_tpcc_exhaustive_certification(mix):
    """Under one budget, optimal finishes the tpcc mix; lite cannot."""
    lite, _ = mix["lite"]
    optimal, _ = mix["optimal"]
    assert optimal.truncated is False, "optimal must certify district-mix exhaustively"
    assert lite.truncated is True, "the budget must genuinely separate the modes"
    assert optimal.runs < MIX_BUDGET <= lite.runs


def legacy_fingerprint(simulator):
    """The repr+sha256 construction the structural tuple replaced.

    Covers only what ``repr`` can canonically render: store contents and
    scalar runtime progress.  Lock tables, waits-for edges, workspaces and
    transaction logs carry objects whose default reprs embed memory
    addresses, so the legacy token simply omitted them — cheaper per call,
    but blind to state the structural fingerprint distinguishes.  Under
    the MVCC store ``current``/``committed`` are materialised from the
    version chains on every access, so this construction now also pays
    two full materialisations per call.
    """
    store = simulator.engine.store
    parts = [
        repr(sorted(store.current.items.items())),
        repr(store.current.arrays),
        repr(store.current.tables),
        repr(sorted(store.committed.items.items())),
        repr(store.committed.arrays),
        repr(store.committed.tables),
        repr(sorted(store.versions.items())),
    ]
    for runtime in simulator._runtimes:
        parts.append(
            repr((runtime.index, runtime.status, runtime.blocked, runtime.ops_done))
        )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


@pytest.fixture(scope="module")
def fingerprints():
    scenario = next(s for s in scenarios_for("banking") if s.name == "withdraw-race")
    levels = {name: "READ COMMITTED" for name in scenario.focus}
    simulator = Simulator(scenario.initial(), scenario.specs(levels), script=[0, 1] * 20)
    simulator.run()
    start = time.perf_counter()
    for _ in range(FINGERPRINT_ROUNDS):
        structural = state_fingerprint(simulator)
    structural_wall = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(FINGERPRINT_ROUNDS):
        legacy = legacy_fingerprint(simulator)
    legacy_wall = time.perf_counter() - start
    return {
        "rounds": FINGERPRINT_ROUNDS,
        "structural_us": round(structural_wall / FINGERPRINT_ROUNDS * 1e6, 1),
        "legacy_us": round(legacy_wall / FINGERPRINT_ROUNDS * 1e6, 1),
        "stable": state_fingerprint(simulator) == structural,
    }


def test_bench_fingerprint_cost(races, mix, fingerprints):
    """Emit the E16 report: reduction, tpcc separation, fingerprint cost."""
    assert fingerprints["stable"], "fingerprints must be deterministic"
    race_payload = {}
    for level in LEVELS:
        lite, lite_wall = races[level]["lite"]
        optimal, opt_wall = races[level]["optimal"]
        race_payload[level] = {
            "lite": lite.to_dict(),
            "optimal": optimal.to_dict(),
            "ratio": round(lite.runs / optimal.runs, 2),
            "wall_ms": {
                "lite": round(lite_wall * 1000, 1),
                "optimal": round(opt_wall * 1000, 1),
            },
        }
    mix_lite, mix_lite_wall = mix["lite"]
    mix_optimal, mix_opt_wall = mix["optimal"]
    emit(
        "E16-fingerprint-cost",
        format_table(
            ("fingerprint", "us/call"),
            [
                ("structural tuple", fingerprints["structural_us"]),
                ("legacy repr+sha256", fingerprints["legacy_us"]),
            ],
        ),
    )
    emit_json(
        "BENCH_dpor",
        {
            "config": {
                "scenario": "withdraw-race-3",
                "levels": list(LEVELS),
                "mix_budget": MIX_BUDGET,
                "fingerprint_rounds": FINGERPRINT_ROUNDS,
            },
            "withdraw_race_3": race_payload,
            "tpcc_district_mix": {
                "level": "SERIALIZABLE",
                "lite": mix_lite.to_dict(),
                "optimal": mix_optimal.to_dict(),
                "wall_ms": {
                    "lite": round(mix_lite_wall * 1000, 1),
                    "optimal": round(mix_opt_wall * 1000, 1),
                },
            },
            "fingerprint": fingerprints,
        },
    )
