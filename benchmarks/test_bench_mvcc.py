"""E18 — MVCC storage: snapshot-begin cost and vacuum reclamation.

Two measurements against the frozen legacy engine:

* **snapshot-begin scaling** — beginning a SNAPSHOT transaction on the
  legacy engine deep-copies the committed state (cost grows with the
  database), while the MVCC store captures ``(next_xid, in_flight)`` —
  a constant-size token.  The acceptance bar is the *shape*: across a
  64x growth in database size the MVCC begin cost must stay within a
  small constant factor while the legacy copy grows by at least the
  size ratio's square root (it is linear in practice; the bar is loose
  because CI timers are noisy).
* **vacuum reclamation** — sustained single-row churn with auto-vacuum
  holds the version count flat and reclaims one superseded version per
  commit, while a pinned long-running snapshot blocks reclamation until
  the reader exits.  These are exact counts, not timings.

Emits ``BENCH_mvcc.json`` for CI trend tracking.
"""

import time

import pytest

from benchmarks._report import emit, emit_json
from repro.core.report import format_table
from repro.core.state import DbState
from repro.engine.legacy import LegacyEngine
from repro.engine.manager import Engine
from repro.engine.storage import STORAGE_STATS

SIZES = (64, 512, 4096)

BEGIN_ROUNDS = 200

CHURN_COMMITS = 300


def scaled_state(rows: int) -> DbState:
    """A tpcc-flavoured state with ``rows`` table rows and matching arrays."""
    return DbState(
        items={f"counter_{i}": i for i in range(8)},
        arrays={"acct": {i: {"bal": 100, "tier": i % 3} for i in range(rows // 4)}},
        tables={"stock": [{"sku": i, "qty": i % 50} for i in range(rows)]},
    )


def timed_begins(engine, rounds: int) -> float:
    """Mean microseconds per SNAPSHOT begin (the txns are never used)."""
    start = time.perf_counter()
    for _ in range(rounds):
        engine.begin("SNAPSHOT")
    return (time.perf_counter() - start) / rounds * 1e6


@pytest.fixture(scope="module")
def begin_costs():
    out = {}
    for rows in SIZES:
        mvcc = Engine(scaled_state(rows), vacuum="off")
        legacy = LegacyEngine(scaled_state(rows))
        # interleave warmup then measurement so neither engine is favoured
        timed_begins(mvcc, 10), timed_begins(legacy, 10)
        out[rows] = {
            "mvcc_us": round(timed_begins(mvcc, BEGIN_ROUNDS), 2),
            "legacy_us": round(timed_begins(legacy, BEGIN_ROUNDS), 2),
        }
    return out


def test_bench_snapshot_begin_is_flat(begin_costs):
    """MVCC begin cost must not scale with database size; legacy must."""
    smallest, largest = SIZES[0], SIZES[-1]
    mvcc_growth = begin_costs[largest]["mvcc_us"] / begin_costs[smallest]["mvcc_us"]
    legacy_growth = (
        begin_costs[largest]["legacy_us"] / begin_costs[smallest]["legacy_us"]
    )
    size_ratio = largest / smallest
    assert mvcc_growth < 8, f"MVCC snapshot begin scaled with size: {begin_costs}"
    assert legacy_growth > size_ratio**0.5, (
        f"legacy deep copy unexpectedly flat: {begin_costs}"
    )
    assert (
        begin_costs[largest]["mvcc_us"] < begin_costs[largest]["legacy_us"]
    ), f"MVCC begin slower than a deep copy at {largest} rows: {begin_costs}"


@pytest.fixture(scope="module")
def churn():
    """Single-row churn: auto-vacuum vs GC-off vs a pinned long reader."""
    out = {}

    engine = Engine(scaled_state(SIZES[0]), vacuum="auto")
    STORAGE_STATS.reset()
    for value in range(CHURN_COMMITS):
        txn = engine.begin("READ COMMITTED")
        engine.write_item(txn, "counter_0", value)
        engine.commit(txn)
    out["auto"] = {
        "versions_after": engine.store.version_count(),
        "reclaimed": STORAGE_STATS.vacuum_reclaimed,
        "vacuum_passes": STORAGE_STATS.vacuum_passes,
    }

    engine = Engine(scaled_state(SIZES[0]), vacuum="off")
    baseline = engine.store.version_count()
    for value in range(CHURN_COMMITS):
        txn = engine.begin("READ COMMITTED")
        engine.write_item(txn, "counter_0", value)
        engine.commit(txn)
    bloated = engine.store.version_count()
    out["off"] = {
        "versions_after": bloated,
        "bloat": bloated - baseline,
        "reclaimed_by_manual_pass": engine.run_vacuum(),
    }

    engine = Engine(scaled_state(SIZES[0]), vacuum="auto")
    reader = engine.begin("SNAPSHOT")
    engine.read_item(reader, "counter_0")
    baseline = engine.store.version_count()
    for value in range(CHURN_COMMITS):
        txn = engine.begin("READ COMMITTED")
        engine.write_item(txn, "counter_0", value)
        engine.commit(txn)
    pinned = engine.store.version_count()
    engine.commit(reader)  # horizon advances; trailing auto-vacuum reclaims
    out["pinned_reader"] = {
        "versions_while_pinned": pinned,
        "pinned_extra": pinned - baseline,
        "versions_after_reader_exit": engine.store.version_count(),
    }
    STORAGE_STATS.reset()
    return out


def test_bench_vacuum_reclaims_churn(churn):
    """Auto-vacuum keeps the hot chain at one live version; off hoards all."""
    assert churn["auto"]["reclaimed"] >= CHURN_COMMITS - 1
    assert churn["auto"]["vacuum_passes"] == CHURN_COMMITS
    assert churn["off"]["bloat"] == CHURN_COMMITS
    assert churn["off"]["reclaimed_by_manual_pass"] == CHURN_COMMITS
    assert churn["off"]["versions_after"] - churn["off"]["reclaimed_by_manual_pass"] == (
        churn["auto"]["versions_after"]
    )


def test_bench_pinned_reader_blocks_reclamation(churn):
    """A live snapshot pins one historical version plus the fresh head."""
    stats = churn["pinned_reader"]
    # the reader pins the begin-time version; churn only ever needs the
    # pinned version + the newest head, so the extra stays tiny and flat
    assert 1 <= stats["pinned_extra"] <= 2
    assert stats["versions_after_reader_exit"] < stats["versions_while_pinned"]


def test_bench_emit_report(begin_costs, churn):
    rows = [
        (
            str(size),
            f"{begin_costs[size]['mvcc_us']:.2f}",
            f"{begin_costs[size]['legacy_us']:.2f}",
        )
        for size in SIZES
    ]
    table = format_table(("rows", "mvcc begin (us)", "legacy begin (us)"), rows)
    extra = (
        f"churn={CHURN_COMMITS} commits: auto reclaimed "
        f"{churn['auto']['reclaimed']} over {churn['auto']['vacuum_passes']} passes; "
        f"off bloated by {churn['off']['bloat']}; pinned reader held "
        f"{churn['pinned_reader']['pinned_extra']} extra version(s)"
    )
    emit("BENCH_mvcc", f"{table}\n{extra}")
    emit_json(
        "BENCH_mvcc",
        {
            "config": {
                "sizes": list(SIZES),
                "begin_rounds": BEGIN_ROUNDS,
                "churn_commits": CHURN_COMMITS,
            },
            "snapshot_begin": {str(size): begin_costs[size] for size in SIZES},
            "vacuum": churn,
        },
    )
