"""E3 — Figures 2–5 / Section 6: the ordering application's level table.

Regenerates the paper's central worked example: the lowest correct
isolation level for each of the four transaction types, the READ
COMMITTED FCW result for the one-order-per-day variant, and the
strengthened Mailing_List escalation.

Paper's table:

    Mailing_List  -> READ UNCOMMITTED
    New_Order     -> READ COMMITTED        (no-gaps rule)
    New_Order     -> READ COMMITTED FCW    (one-order-per-day rule)
    Delivery      -> REPEATABLE READ
    Audit         -> SERIALIZABLE
"""

import pytest

from benchmarks._report import emit
from repro.apps import orders
from repro.core.chooser import analyze_application
from repro.core.conditions import (
    READ_COMMITTED,
    READ_COMMITTED_FCW,
    READ_UNCOMMITTED,
    REPEATABLE_READ,
    SERIALIZABLE,
    check_transaction_at,
)
from repro.core.interference import InterferenceChecker
from repro.core.report import format_table, level_table

BUDGET = 3000

PAPER_LEVELS = {
    "Mailing_List": READ_UNCOMMITTED,
    "New_Order": READ_COMMITTED,
    "Delivery": REPEATABLE_READ,
    "Audit": SERIALIZABLE,
}


@pytest.fixture(scope="module")
def chooser_report():
    app = orders.make_application("no_gap")
    checker = InterferenceChecker(app.spec, budget=BUDGET, seed=3)
    return analyze_application(app, checker)


@pytest.fixture(scope="module")
def one_order_results():
    app = orders.make_application("one_order")
    checker = InterferenceChecker(app.spec, budget=BUDGET, seed=3)
    target = app.transaction("New_Order")
    return {
        READ_COMMITTED: check_transaction_at(app, target, READ_COMMITTED, checker),
        READ_COMMITTED_FCW: check_transaction_at(app, target, READ_COMMITTED_FCW, checker),
    }


def test_bench_level_assignment(benchmark, chooser_report, one_order_results):
    """The full Section 6 table (single-shot: the analysis is minutes-long)."""
    app = orders.make_application("no_gap")
    checker = InterferenceChecker(app.spec, budget=BUDGET, seed=3)

    def cheap_kernel():
        return check_transaction_at(
            app, app.transaction("Mailing_List"), READ_UNCOMMITTED, checker
        )

    benchmark.pedantic(cheap_kernel, rounds=3, iterations=1)

    rows = [
        (choice.transaction, choice.level, PAPER_LEVELS[choice.transaction])
        for choice in chooser_report.choices
    ]
    rows.append(
        (
            "New_Order [one-order-per-day]",
            READ_COMMITTED_FCW
            if one_order_results[READ_COMMITTED_FCW].ok
            and not one_order_results[READ_COMMITTED].ok
            else "UNEXPECTED",
            READ_COMMITTED_FCW,
        )
    )
    emit(
        "E3-fig2-5-level-table",
        format_table(("transaction", "measured lowest level", "paper"), rows)
        + "\n\n"
        + level_table(chooser_report),
    )


def test_assignment_matches_paper(chooser_report):
    assert chooser_report.levels() == PAPER_LEVELS


def test_one_order_variant_needs_fcw(one_order_results):
    assert not one_order_results[READ_COMMITTED].ok
    assert one_order_results[READ_COMMITTED_FCW].ok


def test_strengthened_mailing_list_escalates():
    app = orders.make_application("no_gap", strengthened_mailing=True)
    checker = InterferenceChecker(app.spec, budget=BUDGET, seed=3)
    target = app.transaction("Mailing_List_strengthened")
    ru = check_transaction_at(app, target, READ_UNCOMMITTED, checker)
    rc = check_transaction_at(app, target, READ_COMMITTED, checker)
    assert not ru.ok and rc.ok
    assert any(ob.mode == "rollback" for ob in ru.failures)
    emit(
        "E3b-strengthened-mailing-list",
        "\n".join(
            [
                "strengthened spec ('labels refer to customers'):",
                f"  READ UNCOMMITTED: {'OK' if ru.ok else 'FAILS'}"
                f"  (culprit: {ru.failures[0].mode} of {ru.failures[0].source})",
                f"  READ COMMITTED:   {'OK' if rc.ok else 'FAILS'}",
            ]
        ),
    )
