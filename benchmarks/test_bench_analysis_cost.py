"""E1 — the Section 2 analysis-cost claim.

The paper: naive Owicki–Gries non-interference checking needs ``(KN)²``
triples; taking the isolation level's locking discipline into account
collapses that — down to ``K²`` for SNAPSHOT "regardless of the number of
operations per transaction".  This bench counts, for every example
application and level, exactly how many obligations the theorems demand,
and charts the reduction.
"""

import pytest

from benchmarks._report import emit
from repro.apps import banking, customers, employees, orders, tpcc
from repro.core.conditions import (
    READ_COMMITTED,
    READ_COMMITTED_FCW,
    READ_UNCOMMITTED,
    REPEATABLE_READ,
    SERIALIZABLE,
    SNAPSHOT,
    naive_triple_count,
    obligation_count,
)
from repro.core.report import format_table

LEVELS = (
    READ_UNCOMMITTED,
    READ_COMMITTED,
    READ_COMMITTED_FCW,
    REPEATABLE_READ,
    SNAPSHOT,
    SERIALIZABLE,
)

APPS = {
    "banking": banking.make_application,
    "customers": customers.make_application,
    "employees": employees.make_application,
    "orders[no_gap]": lambda: orders.make_application("no_gap"),
    "tpcc-lite": tpcc.make_application,
}


@pytest.fixture(scope="module")
def cost_table():
    rows = []
    for app_name, factory in APPS.items():
        app = factory()
        naive = naive_triple_count(app)
        per_level = {
            level: sum(obligation_count(app, txn, level) for txn in app.transactions)
            for level in LEVELS
        }
        rows.append((app_name, naive, per_level, len(app.transactions)))
    return rows


def test_bench_obligation_reduction(benchmark, cost_table):
    """The reduction table, with obligation counting as the timed kernel."""
    app = APPS["orders[no_gap]"]()

    def kernel():
        return sum(
            obligation_count(app, txn, level)
            for txn in app.transactions
            for level in LEVELS
        )

    benchmark(kernel)

    table_rows = []
    for app_name, naive, per_level, _k in cost_table:
        table_rows.append(
            (
                app_name,
                naive,
                per_level[READ_UNCOMMITTED],
                per_level[READ_COMMITTED],
                per_level[READ_COMMITTED_FCW],
                per_level[REPEATABLE_READ],
                per_level[SNAPSHOT],
                per_level[SERIALIZABLE],
            )
        )
    emit(
        "E1-analysis-cost",
        format_table(
            ("application", "naive (KN)^2", "RU", "RC", "RC-FCW", "RR", "SI", "SER"),
            table_rows,
        ),
    )


def test_unit_levels_beat_naive(cost_table):
    """The unit-treatment theorems (RC and up) stay below the naive
    quadratic on every application; Theorem 1 (RU) still checks individual
    writes and only wins on applications of realistic size."""
    for app_name, naive, per_level, _k in cost_table:
        for level in (READ_COMMITTED, READ_COMMITTED_FCW, REPEATABLE_READ, SNAPSHOT):
            count = per_level[level]
            assert count < naive, f"{app_name} at {level}: {count} >= naive {naive}"


def test_snapshot_cost_is_k_squared(cost_table):
    """Theorem 5: exactly 2·K² obligations app-wide (read-step + Q per pair)."""
    for app_name, _naive, per_level, k in cost_table:
        assert per_level[SNAPSHOT] == 2 * k * k, app_name


def test_serializable_cost_is_zero(cost_table):
    for _app_name, _naive, per_level, _k in cost_table:
        assert per_level[SERIALIZABLE] == 0


def test_ru_is_heaviest_conditional_level(cost_table):
    """Theorem 1 checks individual writes: the costliest of the theorems."""
    for app_name, _naive, per_level, _k in cost_table:
        conditional = [per_level[READ_COMMITTED], per_level[SNAPSHOT]]
        assert per_level[READ_UNCOMMITTED] >= max(conditional), app_name
