"""E5 — Example 2: Hours / Print_Record over the emp array.

Paper facts regenerated: Print_Record must run at READ COMMITTED or above
(Hours' two writes must appear atomic), and REPEATABLE READ's long read
locks are *not* needed.  A scripted READ UNCOMMITTED schedule exhibits the
torn snapshot dynamically.
"""

import pytest

from benchmarks._report import emit
from repro.apps import employees
from repro.core.chooser import analyze_application
from repro.core.conditions import READ_COMMITTED, READ_UNCOMMITTED
from repro.core.interference import InterferenceChecker
from repro.core.report import level_table
from repro.core.state import DbState
from repro.core.terms import Local
from repro.sched.simulator import InstanceSpec, Simulator


@pytest.fixture(scope="module")
def report():
    app = employees.make_application()
    checker = InterferenceChecker(app.spec, budget=6000, seed=5)
    return analyze_application(app, checker)


def test_bench_example2_chooser(benchmark, report):
    app = employees.make_application()
    checker = InterferenceChecker(app.spec, budget=6000, seed=5)

    def kernel():
        from repro.core.conditions import check_transaction_at

        return check_transaction_at(
            app, app.transaction("Print_Record"), READ_COMMITTED, checker
        )

    benchmark(kernel)
    emit("E5-example2-employees", level_table(report))


def test_print_record_level(report):
    assert report.levels()["Print_Record"] == READ_COMMITTED


def test_print_record_fails_ru(report):
    choice = report.choice_for("Print_Record")
    assert choice.attempts[0].level == READ_UNCOMMITTED
    assert not choice.attempts[0].ok


def test_bench_torn_snapshot_dynamics(benchmark):
    """Reading between Hours' writes at RU yields rate*hrs != sal."""
    initial = DbState(arrays={"emp": {0: {"rate": 2, "num_hrs": 3, "sal": 6}}})

    def run(level):
        specs = [
            InstanceSpec(employees.PRINT_RECORD, {"i": 0}, level, "P"),
            InstanceSpec(employees.HOURS, {"i": 0, "h": 2}, "READ COMMITTED", "H"),
        ]
        sim = Simulator(initial.copy(), specs, script=[1, 1, 0, 0, 1, 1] + [0, 1] * 4)
        return sim.run()

    result_ru = benchmark(lambda: run("READ UNCOMMITTED"))
    env = result_ru.outcome_by_name("P").env
    torn = env[Local("R")] * env[Local("H")] != env[Local("S")]
    assert torn

    result_rc = run("READ COMMITTED")
    env_rc = result_rc.outcome_by_name("P").env
    consistent = env_rc[Local("R")] * env_rc[Local("H")] == env_rc[Local("S")]
    assert consistent
    emit(
        "E5b-torn-snapshot",
        "\n".join(
            [
                "Print_Record concurrent with Hours (two separate writes):",
                f"  READ UNCOMMITTED: printed (rate={env[Local('R')]},"
                f" hrs={env[Local('H')]}, sal={env[Local('S')]})  -> torn snapshot",
                f"  READ COMMITTED:   printed (rate={env_rc[Local('R')]},"
                f" hrs={env_rc[Local('H')]}, sal={env_rc[Local('S')]})  -> consistent",
            ]
        ),
    )
