"""Shared reporting for the benchmark suite.

Every benchmark regenerates one of the paper's artifacts (see DESIGN.md's
experiment index).  Since pytest captures stdout, each experiment writes
its table to ``benchmarks/results/<exp>.txt`` as well as printing it, so
the reproduced rows survive a quiet run and EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"==== {experiment} ===="
    body = f"{banner}\n{text.rstrip()}\n"
    print(body)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(body)
