"""Shared reporting for the benchmark suite.

Every benchmark regenerates one of the paper's artifacts (see DESIGN.md's
experiment index).  Since pytest captures stdout, each experiment writes
its table to ``benchmarks/results/<exp>.txt`` as well as printing it, so
the reproduced rows survive a quiet run and EXPERIMENTS.md can cite them.

Every ``BENCH_*.json`` additionally records the machine and process
topology it was measured on (:func:`topology`): scaling numbers from a
1-core CI container and a 32-core workstation are not comparable, and a
result file that does not say which it came from is a trap for whoever
reads it later.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def topology() -> dict:
    """The machine/process topology a benchmark ran under.

    ``usable_cores`` is the scheduling affinity (what a cgroup-limited CI
    container actually gets), which may be far below ``cpu_count``; scaling
    assertions should gate on it.
    """
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        usable = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count() or 1,
        "usable_cores": usable,
        "platform": platform.system().lower(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def emit(experiment: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"==== {experiment} ===="
    body = f"{banner}\n{text.rstrip()}\n"
    print(body)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(body)


def emit_json(bench: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable result next to the text table.

    ``payload`` follows the benchmark schema::

        {bench, config, wall_ms, obligations, tier_counts}

    Extra keys are allowed; ``bench`` is filled in from the argument so
    callers cannot mislabel a file, and ``topology`` is filled in from
    :func:`topology` unless the caller already recorded one (fleet benches
    extend it with their worker counts).  CI picks these up as artifacts.
    """
    record = dict(payload)
    record["bench"] = bench
    record.setdefault("topology", topology())
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{bench}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True, default=str) + "\n")
    return path
