"""Shared reporting for the benchmark suite.

Every benchmark regenerates one of the paper's artifacts (see DESIGN.md's
experiment index).  Since pytest captures stdout, each experiment writes
its table to ``benchmarks/results/<exp>.txt`` as well as printing it, so
the reproduced rows survive a quiet run and EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"==== {experiment} ===="
    body = f"{banner}\n{text.rstrip()}\n"
    print(body)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(body)


def emit_json(bench: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable result next to the text table.

    ``payload`` follows the benchmark schema::

        {bench, config, wall_ms, obligations, tier_counts}

    Extra keys are allowed; ``bench`` is filled in from the argument so
    callers cannot mislabel a file.  CI picks these up as artifacts.
    """
    record = dict(payload)
    record["bench"] = bench
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{bench}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True, default=str) + "\n")
    return path
