"""E4 — Example 1: the cust array in the conventional model.

The positive READ UNCOMMITTED example: the weak-spec Mailing_List's
critical assertions depend on no database resource, so every Theorem 1
obligation (including New_Order's rollback) discharges at the cheapest
tier and the chooser returns READ UNCOMMITTED.
"""

import pytest

from benchmarks._report import emit
from repro.apps import customers
from repro.core.chooser import analyze_application
from repro.core.conditions import READ_UNCOMMITTED
from repro.core.interference import InterferenceChecker
from repro.core.report import level_table


@pytest.fixture(scope="module")
def report():
    app = customers.make_application()
    checker = InterferenceChecker(app.spec, budget=4000, seed=5)
    result = analyze_application(app, checker)
    return result, checker.stats


def test_bench_example1_chooser(benchmark, report):
    app = customers.make_application()
    checker = InterferenceChecker(app.spec, budget=4000, seed=5)

    def kernel():
        return analyze_application(app, checker)

    benchmark(kernel)
    chooser_report, stats = report
    emit(
        "E4-example1-customers",
        level_table(chooser_report)
        + f"\n\ninterference-tier usage: {stats}",
    )


def test_mailing_list_at_read_uncommitted(report):
    chooser_report, _stats = report
    assert chooser_report.levels()["Mailing_List_c"] == READ_UNCOMMITTED


def test_discharged_without_model_checking(report):
    """The weak spec discharges by footprint disjointness alone.

    With SDG pre-pruning on (the default), the disjoint obligations are
    excused before dispatch; either way none reach the model checker.
    """
    _report, stats = report
    assert stats["disjoint"] + stats["sdg_pruned"] > 0
    assert stats["bmc"] == 0
