"""E12 — what DPOR-lite pruning buys the exhaustive explorer.

Two workloads, each explored with and without pruning:

* **incrementer pair** — two conflicting read-modify-write transactions at
  READ COMMITTED: small enough that the unpruned DFS terminates, so the
  run counts are directly comparable and outcome coverage can be checked
  exactly.
* **banking withdraw-race** — the certification pipeline's Fig. 1 scenario
  at READ COMMITTED.  Both sides terminate here (a schedule cap guards the
  unpruned one anyway); the pruned side visits measurably fewer schedules
  and still finds every lost-update violation.

Emits ``BENCH_explore.json`` for CI trend tracking.
"""

import time

import pytest

from benchmarks._report import emit, emit_json
from repro.core.program import Read, TransactionType, Write
from repro.core.report import format_table
from repro.core.state import DbState
from repro.core.terms import Item, Local
from repro.pipeline.scenarios import banking_scenarios
from repro.sched.explore import explore
from repro.sched.semantic import check_semantic_correctness
from repro.sched.simulator import InstanceSpec

UNPRUNED_CAP = 400  # bounds the capped unpruned banking exploration


def incrementer_specs():
    txn = TransactionType(
        name="Inc",
        body=(Read(Local("v"), Item("x")), Write(Item("x"), Local("v") + 1)),
    )
    return DbState(items={"x": 0}), [
        InstanceSpec(txn, {}, "READ COMMITTED", "A"),
        InstanceSpec(txn, {}, "READ COMMITTED", "B"),
    ]


def timed_explore(initial, specs, **kwargs):
    start = time.perf_counter()
    result = explore(initial, specs, **kwargs)
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def runs():
    out = {}
    initial, specs = incrementer_specs()
    out["inc_full"] = timed_explore(initial.copy(), specs, pruning=False)
    out["inc_pruned"] = timed_explore(initial.copy(), specs, pruning=True)

    scenario = next(s for s in banking_scenarios() if s.name == "withdraw-race")
    levels = {name: "READ COMMITTED" for name in scenario.focus}
    out["bank_capped"] = timed_explore(
        scenario.initial(),
        scenario.specs(levels),
        pruning=False,
        max_schedules=UNPRUNED_CAP,
    )
    out["bank_pruned"] = timed_explore(scenario.initial(), scenario.specs(levels))
    out["bank_violations"] = sum(
        not check_semantic_correctness(
            schedule, scenario.invariant, scenario.cumulative
        ).correct
        for schedule in out["bank_pruned"][0].results
    )
    return out


def final_states(result):
    outcomes = set()
    for schedule in result.results:
        items = tuple(sorted(schedule.final.items.items()))
        arrays = tuple(
            (array, tuple((i, tuple(sorted(row.items()))) for i, row in sorted(rows.items())))
            for array, rows in sorted(schedule.final.arrays.items())
        )
        committed = tuple(sorted(o.name for o in schedule.committed))
        outcomes.add((items, arrays, committed))
    return outcomes


def test_bench_explore_pruning(runs):
    """Pruning shrinks the DFS without losing any reachable outcome."""
    inc_full, full_wall = runs["inc_full"]
    inc_pruned, pruned_wall = runs["inc_pruned"]
    assert inc_pruned.runs < inc_full.runs
    assert final_states(inc_pruned) == final_states(inc_full)

    bank_capped, capped_wall = runs["bank_capped"]
    bank_pruned, bank_wall = runs["bank_pruned"]
    assert not bank_pruned.truncated
    assert bank_pruned.runs < bank_capped.runs
    assert final_states(bank_pruned) == final_states(bank_capped)
    # the smaller tree still surfaces the RC lost update
    assert runs["bank_violations"] > 0

    rows = [
        ("incrementers / full DFS", inc_full.runs, inc_full.schedules,
         f"{inc_full.pruned_sleep}/{inc_full.pruned_state}", f"{full_wall * 1000:.0f}"),
        ("incrementers / pruned", inc_pruned.runs, inc_pruned.schedules,
         f"{inc_pruned.pruned_sleep}/{inc_pruned.pruned_state}", f"{pruned_wall * 1000:.0f}"),
        (f"withdraw-race / capped@{UNPRUNED_CAP}", bank_capped.runs, bank_capped.schedules,
         f"{bank_capped.pruned_sleep}/{bank_capped.pruned_state}", f"{capped_wall * 1000:.0f}"),
        ("withdraw-race / pruned", bank_pruned.runs, bank_pruned.schedules,
         f"{bank_pruned.pruned_sleep}/{bank_pruned.pruned_state}", f"{bank_wall * 1000:.0f}"),
    ]
    emit(
        "E12-exploration-pruning",
        format_table(
            ("configuration", "runs", "schedules", "pruned sleep/state", "wall ms"), rows
        ),
    )
    emit_json(
        "BENCH_explore",
        {
            "config": {
                "levels": "READ COMMITTED",
                "unpruned_cap": UNPRUNED_CAP,
            },
            "incrementers": {
                "full": inc_full.to_dict(),
                "pruned": inc_pruned.to_dict(),
                "reduction": round(1 - inc_pruned.runs / inc_full.runs, 3),
            },
            "withdraw_race": {
                "capped_unpruned": bank_capped.to_dict(),
                "pruned": bank_pruned.to_dict(),
                "violations_found": runs["bank_violations"],
            },
            "wall_ms": {
                "incrementers_full": round(full_wall * 1000, 1),
                "incrementers_pruned": round(pruned_wall * 1000, 1),
                "withdraw_race_capped": round(capped_wall * 1000, 1),
                "withdraw_race_pruned": round(bank_wall * 1000, 1),
            },
        },
    )
