"""E15 — warm-server throughput vs cold CLI invocations.

The service exists to amortise analysis state across requests: a resident
process keeps the verdict cache hot, coalesces duplicate work and batches
concurrent requests (docs/SERVICE.md).  This bench boots one
:class:`ReproService` on an ephemeral port, measures the same analyze
request under 1, 8 and 32 concurrent HTTP clients, and compares against
the honest alternative: a cold ``repro analyze --json`` subprocess per
request (fresh interpreter, empty caches).

Headline assertions: every concurrent client gets the byte-identical
deterministic payload, nothing is rejected or timed out at these widths,
and one warm-server request beats one cold CLI invocation.
"""

import asyncio
import json
import os
import subprocess
import sys
import time

import pytest

import repro
from benchmarks._report import emit, emit_json
from repro.core.report import format_table
from repro.service.client import ServiceClient
from repro.service.server import ReproService, ServiceConfig

APP = "banking"
BUDGET = 150
CONCURRENCY = (1, 8, 32)


def _quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _cold_cli_ms():
    """One cold batch invocation: fresh interpreter, empty caches."""
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", APP,
         "--budget", str(BUDGET), "--json"],
        env=env, capture_output=True, text=True, timeout=300,
    )
    wall_ms = (time.perf_counter() - start) * 1000
    assert proc.returncode == 0, proc.stderr
    return wall_ms, json.loads(proc.stdout)


@pytest.fixture(scope="module")
def measurements():
    cold_ms, cold_payload = _cold_cli_ms()

    async def main():
        service = ReproService(ServiceConfig(port=0, no_persist=True))
        await service.start()

        def one_request():
            client = ServiceClient(port=service.port, timeout=120)
            start = time.perf_counter()
            response = client.analyze(APP, budget=BUDGET)
            latency_ms = (time.perf_counter() - start) * 1000
            return latency_ms, response

        # warm the verdict cache once; the warm state is what we measure
        await asyncio.to_thread(one_request)
        rounds = {}
        for width in CONCURRENCY:
            start = time.perf_counter()
            outcomes = await asyncio.gather(
                *[asyncio.to_thread(one_request) for _ in range(width)]
            )
            wall_ms = (time.perf_counter() - start) * 1000
            rounds[width] = {"wall_ms": wall_ms, "outcomes": outcomes}
        metrics_text = await asyncio.to_thread(
            ServiceClient(port=service.port).metrics
        )
        coalesced = service.telemetry.coalesced.value()
        service.begin_drain()
        await asyncio.wait_for(service._stopped.wait(), timeout=60)
        return rounds, metrics_text, coalesced

    rounds, metrics_text, coalesced = asyncio.run(main())
    return {
        "cold_ms": cold_ms,
        "cold_payload": cold_payload,
        "rounds": rounds,
        "metrics_text": metrics_text,
        "coalesced": coalesced,
    }


def _round_stats(round_data):
    latencies = sorted(latency for latency, _ in round_data["outcomes"])
    width = len(latencies)
    return {
        "clients": width,
        "wall_ms": round(round_data["wall_ms"], 1),
        "throughput_rps": round(1000.0 * width / round_data["wall_ms"], 2),
        "p50_ms": round(_quantile(latencies, 0.50), 1),
        "p99_ms": round(_quantile(latencies, 0.99), 1),
    }


def test_bench_service(measurements):
    """Emit the E15 table and BENCH_service.json."""
    stats = [_round_stats(measurements["rounds"][w]) for w in CONCURRENCY]
    rows = [
        (str(s["clients"]), f"{s['wall_ms']:.0f}", f"{s['throughput_rps']:.2f}",
         f"{s['p50_ms']:.0f}", f"{s['p99_ms']:.0f}")
        for s in stats
    ]
    rows.append(("cold CLI", f"{measurements['cold_ms']:.0f}",
                 f"{1000.0 / measurements['cold_ms']:.2f}", "-", "-"))
    emit(
        "E15-service-throughput",
        format_table(
            ("clients", "wall ms", "req/s", "p50 ms", "p99 ms"), rows
        ),
    )
    emit_json(
        "BENCH_service",
        {
            "config": {
                "app": APP,
                "kind": "analyze",
                "budget": BUDGET,
                "concurrency": list(CONCURRENCY),
            },
            "cold_cli_ms": round(measurements["cold_ms"], 1),
            "rounds": stats,
            "coalesced_total": measurements["coalesced"],
        },
    )


def test_all_clients_get_identical_payloads(measurements):
    """Every concurrent client sees the batch CLI's deterministic bytes."""
    expected = dict(measurements["cold_payload"])
    for key in ("tiers", "cache", "persist"):  # run-varying batch stats
        expected.pop(key, None)
    expected_bytes = json.dumps(expected, indent=2)
    for width in CONCURRENCY:
        for _, response in measurements["rounds"][width]["outcomes"]:
            assert response["timed_out"] is False
            (entry,) = response["results"]
            assert entry["exit_code"] == 0
            assert json.dumps(entry["result"], indent=2) == expected_bytes


def test_no_rejections_at_bench_widths(measurements):
    """Default admission cap (64) absorbs 32 concurrent duplicates."""
    assert "repro_rejected_total 0" in measurements["metrics_text"]
    assert "repro_deadline_timeouts_total 0" in measurements["metrics_text"]


def test_warm_server_beats_cold_cli(measurements):
    """The point of residency: one warm request < one cold process."""
    single = _round_stats(measurements["rounds"][1])
    assert single["p50_ms"] < measurements["cold_ms"], (
        f"warm request {single['p50_ms']}ms not faster than"
        f" cold CLI {measurements['cold_ms']:.0f}ms"
    )


def test_concurrent_duplicates_coalesce(measurements):
    """Duplicate fan-in shares executions instead of re-running them."""
    assert measurements["coalesced"] > 0
