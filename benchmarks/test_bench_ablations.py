"""E10 — ablations of the design choices (DESIGN.md §6).

1. **Checker tiers** — disable footprint-disjointness and/or the symbolic
   tier and measure how obligations redistribute (and that verdicts do not
   change: the tiers are a performance structure, not a soundness one).
2. **Predicate write locks** — run the anomaly-relevant engine paths with
   phantom protection off: SERIALIZABLE readers stop blocking phantom
   inserts, exactly the hole the [2] locking rules exist to close.
3. **Concurrency assumptions** — drop the employees application's
   "one Hours per employee per day" assumption and watch the chooser
   escalate Hours, quantifying what the paper's implicit assumption buys.
"""

import time

import pytest

from benchmarks._report import emit
from repro.apps import banking, employees
from repro.core.chooser import choose_level
from repro.core.conditions import SNAPSHOT, check_transaction_at
from repro.core.interference import InterferenceChecker
from repro.core.report import format_table
from repro.core.state import DbState
from repro.sched.histories import replay


class TestTierAblation:
    @pytest.fixture(scope="class")
    def tier_runs(self):
        app = banking.make_application()
        configs = {
            "all tiers": {},
            "no disjoint": {"use_disjoint": False},
            "no symbolic": {"use_symbolic": False},
            "bmc only": {"use_disjoint": False, "use_symbolic": False},
        }
        out = {}
        for label, kwargs in configs.items():
            # use_sdg=False: this ablation measures the checker's own tiers,
            # so SDG pre-pruning must not intercept the disjoint obligations
            checker = InterferenceChecker(
                app.spec, budget=4000, seed=1, use_sdg=False, **kwargs
            )
            start = time.perf_counter()
            result = check_transaction_at(
                app, app.transaction("Withdraw_sav"), SNAPSHOT, checker
            )
            elapsed = time.perf_counter() - start
            out[label] = (result, dict(checker.stats), elapsed)
        return out

    def test_bench_tier_ablation(self, benchmark, tier_runs):
        app = banking.make_application()

        def kernel():
            checker = InterferenceChecker(app.spec, budget=4000, seed=1)
            return check_transaction_at(
                app, app.transaction("Deposit_ch"), SNAPSHOT, checker
            )

        benchmark(kernel)
        rows = [
            (
                label,
                "FAILS" if not result.ok else "OK",
                stats["disjoint"],
                stats["symbolic"],
                stats["bmc"],
                f"{elapsed:.1f}s",
            )
            for label, (result, stats, elapsed) in tier_runs.items()
        ]
        emit(
            "E10a-tier-ablation",
            format_table(
                ("configuration", "verdict", "disjoint", "symbolic", "bmc", "time"), rows
            ),
        )

    def test_verdict_stable_across_tiers(self, tier_runs):
        """Disabling tiers shifts work, never changes the answer."""
        verdicts = {label: result.ok for label, (result, _s, _t) in tier_runs.items()}
        assert len(set(verdicts.values())) == 1, verdicts

    def test_failure_sources_stable(self, tier_runs):
        sources = {
            label: {ob.source for ob in result.failures}
            for label, (result, _s, _t) in tier_runs.items()
        }
        assert len({frozenset(v) for v in sources.values()}) == 1, sources


class TestPhantomProtectionAblation:
    HISTORY = "rp1[T:a=1] ins2[T:a=1] c2 rp1[T:a=1] c1"

    def _run(self, protected: bool):
        from repro.engine.manager import Engine
        from repro.sched import histories

        initial = DbState(tables={"T": [{"a": 1}]})
        # replay() constructs its own engine; patch via a tiny local copy
        state = initial.copy()
        engine = Engine(state, phantom_protection=protected)
        reader = engine.begin("SERIALIZABLE")
        writer = engine.begin("READ COMMITTED")
        first = engine.select(reader, "T", lambda r: r.get("a") == 1)
        blocked = False
        try:
            engine.insert(writer, "T", {"a": 1})
            engine.commit(writer)
        except Exception:
            blocked = True
        second = engine.select(reader, "T", lambda r: r.get("a") == 1)
        engine.commit(reader)
        return first, second, blocked

    def test_bench_phantom_protection(self, benchmark):
        benchmark(lambda: self._run(True))
        first_on, second_on, blocked_on = self._run(True)
        first_off, second_off, blocked_off = self._run(False)
        rows = [
            ("predicate locks ON", len(first_on), len(second_on),
             "insert blocked" if blocked_on else "insert ran"),
            ("predicate locks OFF", len(first_off), len(second_off),
             "insert blocked" if blocked_off else "insert ran"),
        ]
        emit(
            "E10b-phantom-protection",
            format_table(
                ("engine configuration", "1st SELECT rows", "2nd SELECT rows", "phantom insert"),
                rows,
            ),
        )
        assert blocked_on and len(second_on) == len(first_on)
        assert not blocked_off and len(second_off) == len(first_off) + 1

    def test_serializable_loses_phantom_freedom_without_predicate_locks(self):
        first, second, blocked = self._run(False)
        # a SERIALIZABLE reader sees a phantom: the level's guarantee is gone
        assert not blocked and len(second) > len(first)


class TestAssumptionAblation:
    def test_bench_assumption_ablation(self, benchmark):
        with_assumption = employees.make_application()
        without = employees.make_application()
        without.assumptions.clear()

        def kernel():
            checker = InterferenceChecker(with_assumption.spec, budget=6000, seed=5)
            return choose_level(with_assumption, "Hours", checker)

        benchmark.pedantic(kernel, rounds=2, iterations=1)

        rows = []
        for label, app in (("with 'distinct employees'", with_assumption),
                           ("without the assumption", without)):
            checker = InterferenceChecker(app.spec, budget=6000, seed=5)
            choice = choose_level(app, "Hours", checker)
            rows.append((label, choice.level))
        emit(
            "E10c-assumption-ablation",
            format_table(("employees application", "Hours' chosen level"), rows),
        )
        levels = dict(rows)
        # the assumption is load-bearing: dropping it escalates Hours
        from repro.core.conditions import LEVEL_ORDER

        assert (
            LEVEL_ORDER[levels["without the assumption"]]
            > LEVEL_ORDER[levels["with 'distinct employees'"]]
        )
