"""E8 — wall-clock payoff of the verdict cache and parallel dispatch.

The engine's obligations are heavily shared: a tier-1/2 verdict depends
only on (assertion formula, source, statement, assumption), never on the
target transaction, so the same interference question recurs across
levels of the chooser ladder and across targets (docs/PERFORMANCE.md).
This bench runs the full 5-level analysis of tpcc-lite — the largest
bundled application — three ways:

* ``serial_cold``   — workers=1, cache disabled: the seed baseline;
* ``cached_cold``   — workers=1, empty shared cache: measures hit rate;
* ``warm_workers4`` — workers=4 against the now-warm cache.

and asserts the headline claims: >= 1.5x speedup for the warm parallel
run, >= 30% hit rate on a cold full multi-level run, and identical
verdicts under every configuration.
"""

import time

import pytest

from benchmarks._report import emit, emit_json
from repro.apps import tpcc
from repro.core.cache import VerdictCache
from repro.core.chooser import analyze_application
from repro.core.conditions import EXTENDED_LADDER
from repro.core.interference import InterferenceChecker
from repro.core.prover import clear_prover_caches
from repro.core.report import format_table

BUDGET = 24  # keeps a full tpcc-lite ladder under a minute per run
SEED = 0


def _verdict_map(report):
    """Comparable digest of an application report: every obligation's fate."""
    digest = {}
    for choice in report.choices:
        for attempt in choice.attempts:
            for index, ob in enumerate(attempt.obligations):
                key = (choice.transaction, attempt.level, index)
                if ob.verdict is None:
                    digest[key] = ("excused", ob.excused)
                else:
                    digest[key] = (
                        ob.verdict.interferes,
                        ob.verdict.method,
                        ob.verdict.confidence,
                    )
    for check in report.snapshot_checks:
        digest[("SNAPSHOT", check.transaction, check.level)] = check.ok
    return digest


def _run(cache, workers):
    app = tpcc.make_application()
    checker = InterferenceChecker(
        app.spec, budget=BUDGET, seed=SEED, cache=cache, workers=workers
    )
    start = time.perf_counter()
    report = analyze_application(
        app, checker, ladder=EXTENDED_LADDER, include_snapshot=True
    )
    wall = time.perf_counter() - start
    return report, checker, wall


def _cold_hit_rate(checker):
    """Hit rate of one checker's own run (the shared cache keeps counting)."""
    hits = checker.stats["cache_hits"]
    misses = checker.stats["cache_misses"]
    return hits / (hits + misses) if hits + misses else 0.0


@pytest.fixture(scope="module")
def runs():
    clear_prover_caches()
    baseline = _run(VerdictCache(enabled=False), workers=1)

    clear_prover_caches()
    cache = VerdictCache()
    cached_cold = _run(cache, workers=1)
    warm = _run(cache, workers=4)
    return {"serial_cold": baseline, "cached_cold": cached_cold, "warm_workers4": warm}


def test_bench_parallel_speedup(runs):
    """Warm cache + workers=4 beats the seed serial baseline by >= 1.5x."""
    _, base_checker, base_wall = runs["serial_cold"]
    _, cold_checker, cold_wall = runs["cached_cold"]
    _, warm_checker, warm_wall = runs["warm_workers4"]

    speedup = base_wall / warm_wall
    assert speedup >= 1.5, f"warm run only {speedup:.2f}x faster than serial baseline"

    rows = [
        ("serial_cold (seed baseline)", f"{base_wall * 1000:.0f}", "1.00",
         base_checker.stats["cache_hits"]),
        ("cached_cold", f"{cold_wall * 1000:.0f}",
         f"{base_wall / cold_wall:.2f}", cold_checker.stats["cache_hits"]),
        ("warm_workers4", f"{warm_wall * 1000:.0f}",
         f"{speedup:.2f}", warm_checker.stats["cache_hits"]),
    ]
    emit(
        "E8-parallel-speedup",
        format_table(("configuration", "wall ms", "speedup", "cache hits"), rows),
    )
    tier_counts = {
        tier: base_checker.stats[tier] for tier in ("disjoint", "symbolic", "bmc")
    }
    emit_json(
        "BENCH_parallel",
        {
            "config": {
                "app": "tpcc-lite",
                "budget": BUDGET,
                "seed": SEED,
                "ladder": list(EXTENDED_LADDER),
                "snapshot": True,
                "workers": {"serial_cold": 1, "cached_cold": 1, "warm_workers4": 4},
            },
            "wall_ms": {
                "serial_cold": round(base_wall * 1000, 1),
                "cached_cold": round(cold_wall * 1000, 1),
                "warm_workers4": round(warm_wall * 1000, 1),
            },
            "obligations": sum(tier_counts.values()) + base_checker.stats["assumed"],
            "tier_counts": tier_counts,
            "speedup": round(speedup, 2),
            "cold_hit_rate": round(_cold_hit_rate(cold_checker), 4),
        },
    )


def test_cold_hit_rate_exceeds_30_percent(runs):
    """Sharing across levels and targets pays off within a single cold run."""
    _, checker, _ = runs["cached_cold"]
    assert _cold_hit_rate(checker) >= 0.30


def test_verdicts_identical_across_configurations(runs):
    """Cache and parallelism are invisible to the analysis outcome."""
    base_report, _, _ = runs["serial_cold"]
    cold_report, _, _ = runs["cached_cold"]
    warm_report, _, _ = runs["warm_workers4"]

    base = _verdict_map(base_report)
    assert _verdict_map(cold_report) == base
    assert _verdict_map(warm_report) == base
    assert cold_report.levels() == base_report.levels()
    assert warm_report.levels() == base_report.levels()
