"""E7 — the Berenson et al. anomaly matrix the paper builds on.

For each canonical phenomenon history and each isolation level, replay the
history through the engine and decide whether the anomaly *occurred*.
Occurrence is judged on observed values, not mere completion — SNAPSHOT
histories often run to completion while the snapshot shields the reader
from the anomaly.  The expected matrix is [2]'s, which is the ground the
paper's per-level theorems stand on.
"""

import pytest

from benchmarks._report import emit
from repro.core.report import format_table
from repro.core.state import DbState
from repro.sched.histories import replay

RU = "READ UNCOMMITTED"
RC = "READ COMMITTED"
FCW = "READ COMMITTED FCW"
RR = "REPEATABLE READ"
SI = "SNAPSHOT"
SER = "SERIALIZABLE"

LEVELS = (RU, RC, FCW, SI, RR, SER)


def _first_values(result, token):
    return [s.value for s in result.steps if s.token == token]


def dirty_read_occurred(result):
    values = _first_values(result, "r1[x]")
    return bool(values) and values[0] == 1  # saw the uncommitted write


def lost_update_occurred(result):
    # T2's committed update must actually have happened and then been
    # silently overwritten — a blocked w2 is prevention, not an anomaly
    w2_ok = any(s.token == "w2[x=2]" and s.status == "ok" for s in result.steps)
    c2_ok = any(s.token == "c2" and s.status == "ok" for s in result.steps)
    return w2_ok and c2_ok and result.final.read_item("x") == 3


def fuzzy_read_occurred(result):
    values = _first_values(result, "r1[x]")
    return len(values) == 2 and values[0] != values[1]


def phantom_occurred(result):
    reads = _first_values(result, "rp1[T:a=1]")
    return len(reads) == 2 and reads[0] is not None and reads[1] is not None and len(
        reads[1]
    ) > len(reads[0])


def write_skew_occurred(result):
    return (
        result.final.has_item("x")
        and result.final.read_item("x") == -1
        and result.final.read_item("y") == -1
    )


#: (name, history, initial, both_at_level, occurred-predicate)
CASES = [
    ("P1 dirty read", "w2[x=1] r1[x] c2 c1", None, False, dirty_read_occurred),
    ("P4 lost update", "r1[x] r2[x] w2[x=2] c2 w1[x=3] c1", None, False, lost_update_occurred),
    ("P2 fuzzy read", "r1[x] w2[x=5] c2 r1[x] c1", None, False, fuzzy_read_occurred),
    (
        "P3 phantom",
        "rp1[T:a=1] ins2[T:a=1] c2 rp1[T:a=1] c1",
        DbState(tables={"T": [{"a": 1}]}),
        False,
        phantom_occurred,
    ),
    (
        "A5B write skew",
        "r1[x] r1[y] r2[x] r2[y] w1[x=-1] w2[y=-1] c1 c2",
        DbState(items={"x": 1, "y": 1}),
        True,
        write_skew_occurred,
    ),
]

#: [2]'s matrix: the levels at which each phenomenon is POSSIBLE.
EXPECTED_POSSIBLE = {
    "P1 dirty read": {RU},
    "P4 lost update": {RU, RC},
    "P2 fuzzy read": {RU, RC, FCW},
    "P3 phantom": {RU, RC, FCW, RR},
    "A5B write skew": {RU, RC, FCW, SI},
}


def _probe(history, initial, level, both):
    levels = {1: level, 2: level if both else RC}
    result = replay(history, levels, initial=initial.copy() if initial else None)
    return result


@pytest.fixture(scope="module")
def matrix():
    out = {}
    for name, history, initial, both, occurred in CASES:
        out[name] = {
            level: occurred(_probe(history, initial, level, both)) for level in LEVELS
        }
    return out


def test_bench_anomaly_matrix(benchmark, matrix):
    name, history, initial, both, _pred = CASES[0]

    def kernel():
        return _probe(history, initial, RC, both)

    benchmark(kernel)
    rows = []
    for case_name, _h, _i, _b, _p in CASES:
        cells = ["ANOMALY" if matrix[case_name][level] else "-" for level in LEVELS]
        rows.append((case_name, *cells))
    emit("E7-anomaly-matrix", format_table(("phenomenon", *LEVELS), rows))


@pytest.mark.parametrize("case", [c[0] for c in CASES])
def test_matrix_matches_berenson(matrix, case):
    possible = {level for level in LEVELS if matrix[case][level]}
    assert possible == EXPECTED_POSSIBLE[case], f"{case}: {possible}"


def test_serializable_prevents_everything(matrix):
    for case, by_level in matrix.items():
        assert not by_level[SER], case


def test_snapshot_admits_only_write_skew(matrix):
    """The paper's motivation for Theorem 5's special treatment."""
    for case, by_level in matrix.items():
        if case == "A5B write skew":
            assert by_level[SI]
        else:
            assert not by_level[SI], case
