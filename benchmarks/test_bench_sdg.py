"""E13 — SDG obligation pre-pruning: equivalence and cost.

Two claims, benchmarked:

1. **Soundness / equivalence** — with SDG pruning on vs. off the chooser
   returns byte-identical level assignments for every bundled application
   (the pruned obligations are exactly the ones the checker's disjointness
   tier would prove, so only the dispatch work disappears).
2. **Cost** — pruning removes a strictly positive number of obligations
   per application and shaves dispatch/cache overhead off the analysis
   wall-clock.

Emits ``BENCH_sdg.json`` with per-application pruned/discharged counts and
wall-clock deltas.  tpcc is analysed at a reduced budget — its BMC tier
dominates either way and one equivalence data point suffices per app.
"""

import time

import pytest

from benchmarks._report import emit, emit_json
from repro.apps import registry
from repro.core.cache import VerdictCache
from repro.core.chooser import analyze_application
from repro.core.interference import InterferenceChecker
from repro.core.prover import clear_prover_caches
from repro.core.report import format_table

#: BMC budget per application: enough to decide every bundled app, small
#: enough for a CI-friendly double (on/off) run.  tpcc's BMC tier costs
#: ~1.8s per sample batch, so it gets the smallest budget.
BUDGETS = {"tpcc": 30, "orders": 60, "orders-strict": 60}
DEFAULT_BUDGET = 200


def _analyze(name, app, use_sdg: bool):
    # cold prover memo per run keeps the on/off timings symmetric; budgets
    # key on the registry name (``tpcc``), not ``app.name`` (``tpcc-lite``)
    clear_prover_caches()
    checker = InterferenceChecker(
        app.spec,
        budget=BUDGETS.get(name, DEFAULT_BUDGET),
        cache=VerdictCache(enabled=False),
        use_sdg=use_sdg,
    )
    start = time.perf_counter()
    report = analyze_application(app, checker)
    wall_ms = (time.perf_counter() - start) * 1000
    return report.levels(), dict(checker.stats), wall_ms


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for name, factory in sorted(registry().items()):
        app = factory()
        out[name] = (_analyze(name, app, True), _analyze(name, app, False))
    return out


def test_bench_sdg_pruning(sweep):
    rows = []
    payload = {"apps": {}}
    for name, ((_lv_on, stats_on, ms_on), (_lv_off, stats_off, ms_off)) in sweep.items():
        discharged_off = sum(stats_off[t] for t in ("disjoint", "symbolic", "bmc"))
        discharged_on = sum(stats_on[t] for t in ("disjoint", "symbolic", "bmc"))
        rows.append(
            (
                name,
                stats_on["sdg_pruned"],
                discharged_on,
                discharged_off,
                f"{ms_on:.0f}",
                f"{ms_off:.0f}",
                f"{ms_off - ms_on:+.0f}",
            )
        )
        payload["apps"][name] = {
            "pruned": stats_on["sdg_pruned"],
            "discharged_with_sdg": discharged_on,
            "discharged_without_sdg": discharged_off,
            "wall_ms_with_sdg": round(ms_on, 1),
            "wall_ms_without_sdg": round(ms_off, 1),
            "wall_ms_delta": round(ms_off - ms_on, 1),
        }
    emit(
        "E13-sdg-pruning",
        format_table(
            (
                "application",
                "pruned",
                "discharged (sdg)",
                "discharged (no sdg)",
                "ms (sdg)",
                "ms (no sdg)",
                "delta",
            ),
            rows,
        ),
    )
    emit_json("BENCH_sdg", payload)


def test_levels_byte_identical_with_and_without_sdg(sweep):
    """Acceptance: SDG pruning never changes a level assignment."""
    for name, ((lv_on, _s_on, _t_on), (lv_off, _s_off, _t_off)) in sweep.items():
        assert lv_on == lv_off, name


def test_every_app_prunes_something(sweep):
    """Acceptance: a strictly positive pruned count per application."""
    for name, ((_lv, stats_on, _t), _off) in sweep.items():
        assert stats_on["sdg_pruned"] > 0, name


def test_pruned_equals_the_disjoint_tier(sweep):
    """What pruning removes is exactly the checker's disjointness tier."""
    for name, ((_lv_on, stats_on, _t_on), (_lv_off, stats_off, _t_off)) in sweep.items():
        assert stats_on["sdg_pruned"] == stats_off["disjoint"], name
        assert stats_on["disjoint"] == 0, name
