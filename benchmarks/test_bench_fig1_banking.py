"""E2 — Figure 1 / Example 3: the banking application under SNAPSHOT.

Regenerates the paper's Example 3 discussion as a pairwise safety matrix:
for each (target, partner) pair of transaction types, whether the partner
can invalidate the target's read-step postcondition or result under
Theorem 5 — plus a live write-skew schedule on the engine demonstrating
each static "unsafe" verdict dynamically.
"""

import pytest

from benchmarks._report import emit
from repro.apps import banking
from repro.core.conditions import SNAPSHOT, check_transaction_at
from repro.core.formula import ge
from repro.core.interference import InterferenceChecker
from repro.core.report import format_table
from repro.core.state import DbState
from repro.core.terms import Field, IntConst
from repro.sched.anomalies import detect_write_skew
from repro.sched.semantic import check_semantic_correctness
from repro.sched.simulator import InstanceSpec, Simulator

NAMES = ("Withdraw_sav", "Withdraw_ch", "Deposit_sav", "Deposit_ch")

#: the paper's Example 3 verdicts: which partners make the target unsafe
PAPER_UNSAFE = {
    "Withdraw_sav": {"Withdraw_ch"},
    "Withdraw_ch": {"Withdraw_sav"},
    "Deposit_sav": set(),
    "Deposit_ch": set(),
}


@pytest.fixture(scope="module")
def matrix():
    app = banking.make_application()
    checker = InterferenceChecker(app.spec, budget=4000, seed=1)
    results = {}
    for name in NAMES:
        check = check_transaction_at(app, app.transaction(name), SNAPSHOT, checker)
        unsafe_partners = {ob.source for ob in check.failures}
        results[name] = (check, unsafe_partners)
    return results


def test_bench_snapshot_pairwise_matrix(benchmark, matrix):
    app = banking.make_application()
    checker = InterferenceChecker(app.spec, budget=4000, seed=1)

    def kernel():
        return check_transaction_at(
            app, app.transaction("Deposit_sav"), SNAPSHOT, checker
        )

    benchmark(kernel)

    rows = []
    for name in NAMES:
        check, unsafe = matrix[name]
        cells = ["UNSAFE" if partner in unsafe else "ok" for partner in NAMES]
        rows.append((name, *cells, "FAILS" if not check.ok else "OK"))
    emit(
        "E2-fig1-banking-snapshot",
        format_table(("target \\ partner", *NAMES, "Thm 5"), rows),
    )


def test_matrix_matches_paper(matrix):
    """The write-skew pair is flagged; everything else is safe."""
    for name in NAMES:
        _check, unsafe = matrix[name]
        assert unsafe == PAPER_UNSAFE[name], f"{name}: {unsafe}"


def test_bench_live_write_skew(benchmark):
    """The unsafe pair produces a real write-skew anomaly on the engine."""
    initial = DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}})
    specs = [
        InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T1"),
        InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, "SNAPSHOT", "T2"),
    ]
    script = [0, 0, 1, 1] + [0, 1] * 4

    def run():
        return Simulator(initial.copy(), specs, script=script).run()

    result = benchmark(run)
    invariant = ge(
        Field("acct_sav", IntConst(0), "bal") + Field("acct_ch", IntConst(0), "bal"), 0
    )
    report = check_semantic_correctness(result, invariant)
    skew = detect_write_skew(result)
    total = result.final.read_field("acct_sav", 0, "bal") + result.final.read_field(
        "acct_ch", 0, "bal"
    )
    assert not report.correct and skew and total < 0
    emit(
        "E2-write-skew-schedule",
        "\n".join(
            [
                "scripted SNAPSHOT schedule: both withdrawals read (sav=0, ch=1),",
                "each debits a different account, both commit (disjoint write sets).",
                f"final balances: sav={result.final.read_field('acct_sav', 0, 'bal')}"
                f" ch={result.final.read_field('acct_ch', 0, 'bal')}  (sum {total} < 0)",
                f"semantic check: {report.summary()}",
                f"anomaly detector: {skew[0]!r}",
            ]
        ),
    )


def test_bench_safe_pair_has_no_skew(benchmark):
    """Two same-account Withdraw_sav instances: FCW aborts one (Example 3)."""
    initial = DbState(arrays={"acct_sav": {0: {"bal": 2}}, "acct_ch": {0: {"bal": 0}}})
    specs = [
        InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, "SNAPSHOT", "T1"),
        InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 2}, "SNAPSHOT", "T2"),
    ]
    script = [0, 0, 1, 1] + [0, 1] * 4

    def run():
        return Simulator(initial.copy(), specs, script=script).run()

    result = benchmark(run)
    assert result.stats["fcw_aborts"] == 1
    assert len(result.committed) == 1
    invariant = ge(
        Field("acct_sav", IntConst(0), "bal") + Field("acct_ch", IntConst(0), "bal"), 0
    )
    assert check_semantic_correctness(result, invariant).correct
