"""E9 — the Section 2 performance claim.

"A semantically correct schedule can perform significantly better than any
equivalent serial schedule" [5], and weak levels are used "in order to
increase throughput and reduce response time" (Section 1).  This bench
sweeps the banking workload over isolation levels and contention and
charts throughput / waits / aborts — absolute numbers are simulator ticks,
the *ordering* (RU >= RC >= SI >= RR ~= SER under contention, converging
as contention vanishes) is the reproduced shape.
"""

import pytest

from benchmarks._report import emit
from repro.core.formula import conj, ge
from repro.core.report import format_table
from repro.core.terms import Field, IntConst
from repro.workloads.generator import WorkloadConfig, banking_initial, banking_workload
from repro.workloads.runner import sweep_contention, sweep_levels

ACCOUNTS = 4
NAMES = ("Withdraw_sav", "Withdraw_ch", "Deposit_sav", "Deposit_ch")
LEVELS = ("READ UNCOMMITTED", "READ COMMITTED", "READ COMMITTED FCW",
          "SNAPSHOT", "REPEATABLE READ", "SERIALIZABLE")


def invariant():
    return conj(
        *[
            ge(Field("acct_sav", IntConst(i), "bal") + Field("acct_ch", IntConst(i), "bal"), 0)
            for i in range(ACCOUNTS)
        ]
    )


def make_specs(assignment, hot=0.7, size=8, seed=21):
    return banking_workload(
        WorkloadConfig(size=size, hot_fraction=hot, seed=seed),
        accounts=ACCOUNTS,
        levels=assignment,
    )


@pytest.fixture(scope="module")
def level_sweep():
    return sweep_levels(
        lambda assignment: make_specs(assignment),
        banking_initial(ACCOUNTS),
        LEVELS,
        NAMES,
        rounds=6,
        seed=23,
        invariant=invariant(),
    )


@pytest.fixture(scope="module")
def contention_sweep():
    def specs_at(config):
        return banking_workload(
            config, accounts=ACCOUNTS, levels={name: "SERIALIZABLE" for name in NAMES}
        )

    return sweep_contention(
        specs_at,
        banking_initial(ACCOUNTS),
        hot_fractions=[0.0, 0.5, 1.0],
        rounds=6,
        seed=29,
        size=8,
        invariant=invariant(),
    )


def test_bench_throughput_by_level(benchmark, level_sweep):
    def kernel():
        from repro.workloads.runner import run_workload

        specs = make_specs({name: "READ COMMITTED" for name in NAMES})
        return run_workload(banking_initial(ACCOUNTS), specs, rounds=1, seed=23)

    benchmark(kernel)
    rows = [
        (
            level,
            f"{metrics.throughput:.1f}",
            f"{metrics.wait_rate:.3f}",
            f"{metrics.abort_rate:.3f}",
            metrics.deadlocks,
        )
        for level, metrics in level_sweep.items()
    ]
    emit(
        "E9-throughput-by-level",
        format_table(("level", "throughput", "wait rate", "abort rate", "deadlocks"), rows),
    )


def test_weak_levels_win_under_contention(level_sweep):
    """The paper's motivation: lower levels trade isolation for speed."""
    ru = level_sweep["READ UNCOMMITTED"].throughput
    rc = level_sweep["READ COMMITTED"].throughput
    ser = level_sweep["SERIALIZABLE"].throughput
    assert ru > ser
    assert rc > ser


def test_serializable_matches_repeatable_read_here(level_sweep):
    """No phantoms in the conventional banking workload: SER ~= RR."""
    rr = level_sweep["REPEATABLE READ"].throughput
    ser = level_sweep["SERIALIZABLE"].throughput
    assert abs(rr - ser) / max(rr, ser) < 0.25


def test_bench_contention_crossover(benchmark, contention_sweep):
    benchmark(lambda: dict(contention_sweep))
    rows = [
        (
            f"hot={hot:.1f}",
            f"{metrics.throughput:.1f}",
            f"{metrics.wait_rate:.3f}",
            metrics.deadlocks,
        )
        for hot, metrics in contention_sweep.items()
    ]
    emit(
        "E9b-serializable-vs-contention",
        format_table(("contention", "throughput", "wait rate", "deadlocks"), rows),
    )


def test_contention_degrades_serializable(contention_sweep):
    """Full heat concentrates every transaction on one account: deadlocks
    multiply and throughput collapses relative to the uniform workload."""
    assert contention_sweep[1.0].deadlocks > contention_sweep[0.0].deadlocks
    assert contention_sweep[1.0].throughput < contention_sweep[0.0].throughput
