"""E8 — the paper's Section 7 future work: TPC-C at mixed isolation levels.

The paper closes by planning to run the TPC-C transactions "at a
combination of isolation levels to evaluate the performance".  This bench
does exactly that on TPC-C-lite: the analysis-derived mixed assignment
versus all-SERIALIZABLE (and the other uniform levels), under the standard
mix at moderate contention.  Expected shape: the mixed assignment clearly
out-throughputs all-SERIALIZABLE while staying semantically clean on the
application's counter invariant.
"""

import pytest

from benchmarks._report import emit
from repro.apps import tpcc
from repro.core.formula import AbstractPred
from repro.core.report import format_table
from repro.workloads.generator import WorkloadConfig, tpcc_workload
from repro.workloads.runner import compare_assignments

#: the level assignment the static analysis supports (see DESIGN.md E8)
MIXED = {
    "TPCC_NewOrder": "READ COMMITTED FCW",
    "TPCC_Payment": "READ COMMITTED FCW",
    "TPCC_OrderStatus": "READ COMMITTED",
    "TPCC_Delivery": "REPEATABLE READ",
    "TPCC_StockLevel": "READ UNCOMMITTED",
}

ASSIGNMENTS = {
    "mixed (analysis)": MIXED,
    "all READ COMMITTED": {name: "READ COMMITTED" for name in MIXED},
    "all SNAPSHOT": {name: "SNAPSHOT" for name in MIXED},
    "all SERIALIZABLE": {name: "SERIALIZABLE" for name in MIXED},
}


def _counters_consistent(state, env) -> bool:
    """next_o_id bounds every order id of its district; stock >= 0."""
    for district in range(tpcc.DISTRICTS):
        bound = state.read_field("district", district, "next_o_id")
        for row in state.rows("ORDERS"):
            if row.get("d_id") == district and row.get("o_id") >= bound:
                return False
    for item in range(tpcc.ITEMS):
        if state.read_field("stock", item, "quantity") < 0:
            return False
    return True


INVARIANT = AbstractPred("tpcc counters consistent", evaluator=_counters_consistent)


def make_specs(assignment):
    return tpcc_workload(WorkloadConfig(size=10, hot_fraction=0.6, seed=11), levels=assignment)


@pytest.fixture(scope="module")
def comparison():
    return compare_assignments(
        make_specs,
        tpcc.initial_state(),
        ASSIGNMENTS,
        rounds=6,
        seed=13,
        invariant=INVARIANT,
    )


def test_bench_tpcc_mixed_levels(benchmark, comparison):
    def kernel():
        from repro.workloads.runner import run_workload

        return run_workload(
            tpcc.initial_state(), make_specs(MIXED), rounds=1, seed=13, invariant=INVARIANT
        )

    benchmark(kernel)
    rows = [
        (
            label,
            f"{metrics.throughput:.1f}",
            f"{metrics.wait_rate:.3f}",
            f"{metrics.abort_rate:.3f}",
            metrics.deadlocks,
            metrics.semantic_violations,
        )
        for label, metrics in comparison.items()
    ]
    emit(
        "E8-tpcc-mixed-levels",
        format_table(
            ("assignment", "throughput", "wait rate", "abort rate", "deadlocks", "violations"),
            rows,
        ),
    )


def test_mixed_beats_all_serializable(comparison):
    """The paper's anticipated result, in shape."""
    assert (
        comparison["mixed (analysis)"].throughput
        > comparison["all SERIALIZABLE"].throughput
    )


def test_mixed_assignment_is_clean(comparison):
    assert comparison["mixed (analysis)"].semantic_violations == 0


def test_all_serializable_is_clean(comparison):
    assert comparison["all SERIALIZABLE"].semantic_violations == 0


def test_everything_commits_under_mixed(comparison):
    metrics = comparison["mixed (analysis)"]
    assert metrics.aborted == 0 or metrics.abort_rate < 0.2
