"""E19 — sharded fleet throughput: 1/8/32 clients x 1/2/4 workers.

The fleet router (``repro serve --fleet N``) shards jobs across worker
processes by JobSpec fingerprint, which buys two things at once: distinct
jobs spread over N cores, and duplicate jobs still land on one shard
where the worker's batcher coalesces them.  This bench measures both.

Workload: each round submits ``width`` concurrent analyze requests
through the pooled :class:`AsyncServiceClient`.  Seeds are paired — every
spec appears twice in a round — so half the requests are coalescable
duplicates, and every round uses fresh seeds so the work is real CPU
(seed and budget are part of the interference cache fingerprint: a new
seed is a cold analysis).  Every fleet size sees the identical workload.

Scaling honesty: the aggregate-throughput assertion (>= 2.5x for 4
workers vs 1 at 32 clients) only fires when the machine actually has >= 4
usable cores — pure-Python analysis cannot scale past the cores the
container grants, and a benchmark asserting otherwise would only ever
pass by measuring something else.  On smaller machines the bench asserts
the fleet does not *collapse* (router overhead stays bounded) and records
the measured ratio plus the machine topology in BENCH_service_sharded.json
so readers can interpret the number.
"""

import asyncio
import time

import pytest

from benchmarks._report import emit, emit_json, topology
from repro.core.report import format_table
from repro.service.client import AsyncServiceClient
from repro.service.router import FleetConfig, FleetRouter
from repro.service.server import ServiceConfig

APP = "banking"
BUDGET = 150
CONCURRENCY = (1, 8, 32)
FLEETS = (1, 2, 4)

#: Aggregate throughput target for 4 workers vs 1 at 32 clients — asserted
#: only when the machine has at least this many usable cores.
SCALING_TARGET = 2.5
SCALING_CORES = 4

#: On smaller machines the fleet must still not collapse under the extra
#: routing hop: 4-worker throughput stays within 2x of 1-worker.
NO_COLLAPSE_FLOOR = 0.5


def _sum_metric(metrics_text: str, name: str) -> float:
    total = 0.0
    for line in metrics_text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += float(line.rsplit(" ", 1)[1])
    return total


def _quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


async def _run_fleet(fleet: int) -> dict:
    """Boot a fleet, run every concurrency round, scrape, drain."""
    config = FleetConfig(
        port=0,
        fleet=fleet,
        worker=ServiceConfig(port=0, no_persist=True, window=0.0, workers=2),
        health_interval=0.25,
    )
    router = FleetRouter(config)
    await router.start()
    client = AsyncServiceClient("127.0.0.1", router.port, pool_size=32, timeout=300)

    async def one_request(seed: int):
        start = time.perf_counter()
        response = await client.analyze(APP, budget=BUDGET, seed=seed)
        latency_ms = (time.perf_counter() - start) * 1000
        return latency_ms, response

    rounds = {}
    seed_base = 1000  # identical seed schedule for every fleet size
    submitted = 0
    for width in CONCURRENCY:
        # paired seeds: every spec appears twice -> half the round can
        # coalesce on its shard; fresh seeds -> the other half is real work
        seeds = [seed_base + i // 2 for i in range(width)]
        seed_base += width
        submitted += width
        start = time.perf_counter()
        outcomes = await asyncio.gather(*[one_request(seed) for seed in seeds])
        wall_ms = (time.perf_counter() - start) * 1000
        rounds[width] = {"wall_ms": wall_ms, "outcomes": outcomes}

    metrics_text = await client.metrics()
    health = await client.health()
    await client.aclose()
    router.begin_drain()
    await asyncio.wait_for(router._stopped.wait(), timeout=60)
    return {
        "fleet": fleet,
        "rounds": rounds,
        "submitted": submitted,
        "coalesced": _sum_metric(metrics_text, "repro_coalesced_total"),
        "respawns": _sum_metric(metrics_text, "repro_router_respawns_total"),
        "healthy_workers": health["healthy_workers"],
        "client_stats": dict(client.stats),
    }


@pytest.fixture(scope="module")
def measurements():
    async def main():
        return {fleet: await _run_fleet(fleet) for fleet in FLEETS}

    return asyncio.run(main())


def _round_stats(round_data):
    latencies = sorted(latency for latency, _ in round_data["outcomes"])
    width = len(latencies)
    return {
        "clients": width,
        "wall_ms": round(round_data["wall_ms"], 1),
        "throughput_rps": round(1000.0 * width / round_data["wall_ms"], 2),
        "p50_ms": round(_quantile(latencies, 0.50), 1),
        "p99_ms": round(_quantile(latencies, 0.99), 1),
    }


def _scaling_ratio(measurements) -> float:
    one = _round_stats(measurements[1]["rounds"][32])["throughput_rps"]
    four = _round_stats(measurements[4]["rounds"][32])["throughput_rps"]
    return four / one


def test_bench_service_sharded(measurements):
    """Emit the E19 table and BENCH_service_sharded.json."""
    machine = topology()
    rows = []
    fleets_payload = {}
    for fleet in FLEETS:
        data = measurements[fleet]
        stats = [_round_stats(data["rounds"][w]) for w in CONCURRENCY]
        hit_rate = data["coalesced"] / data["submitted"]
        fleets_payload[str(fleet)] = {
            "rounds": stats,
            "coalesced_total": data["coalesced"],
            "coalescing_hit_rate": round(hit_rate, 3),
            "pool_stats": data["client_stats"],
        }
        for s in stats:
            rows.append(
                (str(fleet), str(s["clients"]), f"{s['wall_ms']:.0f}",
                 f"{s['throughput_rps']:.2f}", f"{s['p50_ms']:.0f}",
                 f"{s['p99_ms']:.0f}")
            )
    ratio = _scaling_ratio(measurements)
    asserted = machine["usable_cores"] >= SCALING_CORES
    rows.append(("4 vs 1", "32", "-", f"{ratio:.2f}x", "-", "-"))
    emit(
        "E19-service-sharded",
        format_table(
            ("workers", "clients", "wall ms", "req/s", "p50 ms", "p99 ms"), rows
        )
        + f"\nscaling 4v1 at 32 clients: {ratio:.2f}x"
        f" ({'asserted >= ' + str(SCALING_TARGET) if asserted else 'recorded only: ' + str(machine['usable_cores']) + ' usable cores'})",
    )
    emit_json(
        "BENCH_service_sharded",
        {
            "config": {
                "app": APP,
                "kind": "analyze",
                "budget": BUDGET,
                "concurrency": list(CONCURRENCY),
                "fleet_sizes": list(FLEETS),
                "worker_config": {"workers": 2, "job_workers": 1, "window": 0.0},
            },
            "fleets": fleets_payload,
            "scaling_ratio_32clients_4v1": round(ratio, 3),
            "scaling_assertion": (
                f"asserted >= {SCALING_TARGET}" if asserted
                else f"recorded only ({machine['usable_cores']} usable cores"
                f" < {SCALING_CORES})"
            ),
            "topology": {**machine, "fleet_sizes": list(FLEETS)},
        },
    )


def test_every_request_succeeds_at_every_topology(measurements):
    """No 5xx, no rejections, no timeouts at any width x fleet point."""
    for fleet in FLEETS:
        for width in CONCURRENCY:
            for _latency, response in measurements[fleet]["rounds"][width]["outcomes"]:
                assert response["timed_out"] is False
                for entry in response["results"]:
                    assert entry.get("error") is None
                    assert entry["exit_code"] == 0


def test_fleet_stays_healthy_with_no_respawns(measurements):
    """The bench load alone must never kill or restart a worker."""
    for fleet in FLEETS:
        assert measurements[fleet]["healthy_workers"] == fleet
        assert measurements[fleet]["respawns"] == 0


def test_per_shard_coalescing_is_preserved(measurements):
    """Duplicate specs route to one shard and coalesce there, at every
    fleet size — the property sharding by fingerprint exists to keep."""
    for fleet in FLEETS:
        assert measurements[fleet]["coalesced"] > 0, (
            f"fleet={fleet}: paired duplicate specs never coalesced"
        )


def test_pooled_client_reuses_connections(measurements):
    """The async client's keep-alive pool does what it claims."""
    for fleet in FLEETS:
        stats = measurements[fleet]["client_stats"]
        assert stats["reuses"] > 0
        assert stats["connects"] <= 32 + stats["stale_retries"]


def test_aggregate_throughput_scales_or_is_honestly_recorded(measurements):
    """>= 2.5x for 4 workers vs 1 at 32 clients — asserted only where the
    machine can physically deliver it; a no-collapse floor everywhere."""
    ratio = _scaling_ratio(measurements)
    if topology()["usable_cores"] >= SCALING_CORES:
        assert ratio >= SCALING_TARGET, (
            f"4-worker fleet only {ratio:.2f}x a 1-worker fleet at 32 clients"
        )
    else:
        assert ratio >= NO_COLLAPSE_FLOOR, (
            f"fleet overhead collapse: 4 workers at {ratio:.2f}x of 1 worker"
        )
