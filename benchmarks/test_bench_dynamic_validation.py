"""E6 — dynamic validation of the static verdicts.

For each application: at the level the chooser picked, N random schedules
must show zero semantic violations; one level below, violations appear.
The static analysis and the engine were built independently of each other
— agreement here is the reproduction's cross-check.
"""

import pytest

from benchmarks._report import emit
from repro.apps import banking, employees
from repro.core.formula import conj, ge
from repro.core.report import format_table
from repro.core.state import DbState
from repro.core.terms import Field, IntConst
from repro.sched.semantic import validate_level
from repro.sched.simulator import InstanceSpec

ROUNDS = 60


def banking_invariant():
    return ge(
        Field("acct_sav", IntConst(0), "bal") + Field("acct_ch", IntConst(0), "bal"), 0
    )


def banking_specs(level):
    return [
        InstanceSpec(banking.WITHDRAW_SAV, {"i": 0, "w": 1}, level, "T1"),
        InstanceSpec(banking.WITHDRAW_CH, {"i": 0, "w": 1}, level, "T2"),
    ]


def banking_initial():
    return DbState(arrays={"acct_sav": {0: {"bal": 0}}, "acct_ch": {0: {"bal": 1}}})


@pytest.fixture(scope="module")
def banking_tallies():
    levels = ("READ COMMITTED", "SNAPSHOT", "REPEATABLE READ", "SERIALIZABLE")
    return {
        level: validate_level(
            banking_initial(), banking_specs(level), banking_invariant(),
            rounds=ROUNDS, seed=7,
        )
        for level in levels
    }


def test_bench_banking_validation(benchmark, banking_tallies):
    def kernel():
        return validate_level(
            banking_initial(), banking_specs("SNAPSHOT"), banking_invariant(),
            rounds=5, seed=7,
        )

    benchmark(kernel)
    rows = [
        (level, f"{tally['violations']}/{tally['rounds']}",
         tally["serial_divergences"])
        for level, tally in banking_tallies.items()
    ]
    emit(
        "E6-dynamic-validation-banking",
        format_table(("level", "semantic violations", "serial divergences"), rows),
    )


def test_chosen_level_clean(banking_tallies):
    """The withdrawals' chosen ANSI level (REPEATABLE READ) is clean."""
    assert banking_tallies["REPEATABLE READ"]["violations"] == 0
    assert banking_tallies["SERIALIZABLE"]["violations"] == 0


def test_below_chosen_level_dirty(banking_tallies):
    """One level below (READ COMMITTED) and at the rejected SNAPSHOT,
    violations appear — the static failure verdicts are not vacuous."""
    assert banking_tallies["READ COMMITTED"]["violations"] > 0
    assert banking_tallies["SNAPSHOT"]["violations"] > 0


def test_witness_schedules_recorded(banking_tallies):
    witnesses = banking_tallies["SNAPSHOT"]["witnesses"]
    assert witnesses and all(len(w) == 3 for w in witnesses)


@pytest.fixture(scope="module")
def employees_tallies():
    initial = DbState(arrays={"emp": {0: {"rate": 2, "num_hrs": 1, "sal": 2}}})
    from repro.core.formula import eq
    from repro.core.terms import Mul

    invariant = eq(
        Mul(Field("emp", IntConst(0), "rate"), Field("emp", IntConst(0), "num_hrs")),
        Field("emp", IntConst(0), "sal"),
    )

    def specs(level):
        return [
            InstanceSpec(employees.PRINT_RECORD, {"i": 0}, level, "P"),
            InstanceSpec(employees.HOURS, {"i": 0, "h": 1}, "READ COMMITTED", "H"),
        ]

    return {
        level: validate_level(initial, specs(level), invariant, rounds=ROUNDS, seed=9)
        for level in ("READ UNCOMMITTED", "READ COMMITTED")
    }


def test_bench_employees_validation(benchmark, employees_tallies):
    benchmark(lambda: dict(employees_tallies))
    rows = [
        (level, f"{tally['violations']}/{tally['rounds']}")
        for level, tally in employees_tallies.items()
    ]
    emit(
        "E6b-dynamic-validation-employees",
        format_table(("Print_Record level", "snapshot-consistency violations"), rows),
    )


def test_employees_verdicts(employees_tallies):
    assert employees_tallies["READ UNCOMMITTED"]["violations"] > 0
    assert employees_tallies["READ COMMITTED"]["violations"] == 0
