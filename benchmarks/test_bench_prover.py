"""E14 — prover-layer performance: hash-consing, fast path, persistence.

Four configurations of the same tpcc-lite analysis (extended ladder plus
snapshot isolation, BMC budget 24, one worker):

- ``baseline``    — hash-consing and the LP-free fast path both disabled;
  the closest in-tree stand-in for the pre-optimisation prover.
- ``cold``        — all layers on, every process-level cache empty.
- ``warm``        — a second run in the same process (verdict cache and
  prover memos intact).
- ``persist_warmed`` — every process-level cache wiped (prover memos,
  fingerprint cache, hash-consing tables) and the verdict cache reloaded
  from a persistent store flushed after the cold run, approximating a
  fresh process pointed at a warmed ``--cache-dir``.

All timings are CPU time (``time.process_time``): the benchmark machines
are small and wall clock is noisy, while the CPU ratio between configs is
stable.  The seed reference was measured the same way from a git worktree
at the pre-PR commit, so ``speedup_vs_seed`` compares like with like.

Emits ``BENCH_prover.json`` and the E14 text table.
"""

import time

import pytest

from benchmarks._report import emit, emit_json
from repro.apps import tpcc
from repro.core import prover, terms
from repro.core.cache import VerdictCache, clear_fingerprint_cache
from repro.core.chooser import analyze_application
from repro.core.conditions import EXTENDED_LADDER
from repro.core.interference import InterferenceChecker
from repro.core.persist import PersistentStore
from repro.core.prover import clear_prover_caches, prover_cache_stats
from repro.core.report import format_table
from repro.core.terms import clear_hashcons_tables

BUDGET = 24

#: Pre-PR prover cost for this exact workload, recorded once so the bench
#: does not need to rebuild the old tree.  Measured with
#: ``time.process_time()`` around ``analyze_application`` on tpcc-lite
#: (extended ladder + snapshot, budget 24, workers=1) from a git worktree
#: at the last commit before the prover-core PR, on the same machine class
#: as the current numbers.
SEED_REFERENCE = {
    "cpu_s": 55.06,
    "wall_s": 46.85,
    "commit": "abe2034",
    "method": "process_time around analyze_application, tpcc-lite, "
    "extended ladder + snapshot, budget 24, workers=1",
}


def _reset_process_caches():
    clear_prover_caches()
    clear_fingerprint_cache()
    clear_hashcons_tables()


def _run(cache, hash_consing=True, fast_path=True):
    saved = (terms.HASH_CONSING, prover.USE_FAST_PATH)
    terms.HASH_CONSING, prover.USE_FAST_PATH = hash_consing, fast_path
    try:
        # the app is built under the flag so baseline terms are not interned
        app = tpcc.make_application()
        checker = InterferenceChecker(app.spec, budget=BUDGET, workers=1, cache=cache)
        start = time.process_time()
        report = analyze_application(
            app, checker, ladder=EXTENDED_LADDER, include_snapshot=True
        )
        cpu_s = time.process_time() - start
    finally:
        terms.HASH_CONSING, prover.USE_FAST_PATH = saved
    return report.levels(), cpu_s, checker


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    results = {}

    _reset_process_caches()
    levels, cpu_s, _ = _run(VerdictCache(), hash_consing=False, fast_path=False)
    results["baseline"] = {"levels": levels, "cpu_s": cpu_s}

    _reset_process_caches()
    cache = VerdictCache()
    levels, cpu_s, _ = _run(cache)
    results["cold"] = {"levels": levels, "cpu_s": cpu_s}
    results["cold"]["prover"] = prover_cache_stats()

    store_dir = tmp_path_factory.mktemp("verdicts")
    PersistentStore(store_dir).flush(cache)

    levels, cpu_s, _ = _run(cache)
    results["warm"] = {"levels": levels, "cpu_s": cpu_s}

    _reset_process_caches()
    warmed = VerdictCache()
    PersistentStore(store_dir).load(warmed)
    levels, cpu_s, _ = _run(warmed)
    results["persist_warmed"] = {
        "levels": levels,
        "cpu_s": cpu_s,
        "persist_hits": warmed.stats.persist_hits,
    }
    return results


def test_bench_prover(sweep):
    speedup = SEED_REFERENCE["cpu_s"] / max(sweep["cold"]["cpu_s"], 1e-9)
    rows = [
        (config, f"{data['cpu_s']:.2f}", f"{SEED_REFERENCE['cpu_s'] / max(data['cpu_s'], 1e-9):.1f}x")
        for config, data in sweep.items()
    ]
    rows.append(("seed (recorded)", f"{SEED_REFERENCE['cpu_s']:.2f}", "1.0x"))
    emit(
        "E14-prover-layers",
        format_table(("config", "cpu s", "vs seed"), rows)
        + f"\n\npersist-warmed run answered {sweep['persist_warmed']['persist_hits']}"
        " obligations from disk-loaded verdicts"
        + f"\nseed reference: commit {SEED_REFERENCE['commit']}, {SEED_REFERENCE['method']}",
    )
    emit_json(
        "BENCH_prover",
        {
            "config": {
                "app": "tpcc-lite",
                "budget": BUDGET,
                "ladder": "extended+snapshot",
                "workers": 1,
                "timer": "process_time",
            },
            "seed_reference": SEED_REFERENCE,
            "results": {
                name: {k: v for k, v in data.items() if k != "levels"}
                for name, data in sweep.items()
            },
            "levels": sweep["cold"]["levels"],
            "speedup_vs_seed": round(speedup, 2),
        },
    )


def test_levels_byte_identical_across_configs(sweep):
    """Acceptance: no optimisation layer changes a level assignment."""
    expected = sweep["baseline"]["levels"]
    for config, data in sweep.items():
        assert data["levels"] == expected, config


def test_cold_run_beats_seed_by_5x(sweep):
    """Acceptance: ≥5x cold-run improvement from the in-process layers alone
    (no persistence involved in the cold config)."""
    speedup = SEED_REFERENCE["cpu_s"] / max(sweep["cold"]["cpu_s"], 1e-9)
    assert speedup >= 5.0, f"cold speedup only {speedup:.2f}x"


def test_persist_warmed_close_to_in_memory_warm(sweep):
    """Acceptance: a disk-warmed 'second process' lands within 10x of the
    in-memory warm run (it must redo fingerprints, but no prover work)."""
    assert sweep["persist_warmed"]["persist_hits"] > 0
    warm = sweep["warm"]["cpu_s"]
    persisted = sweep["persist_warmed"]["cpu_s"]
    assert persisted <= 10 * warm, f"persist {persisted:.2f}s vs warm {warm:.2f}s"


def test_fast_path_carried_the_cold_run(sweep):
    """The LP-free path decides cubes in the cold run; linprog stays rare."""
    prover_stats = sweep["cold"]["prover"]
    decided = prover_stats["fastpath_sat"] + prover_stats["fastpath_unsat"]
    assert decided > 0
    assert prover_stats["lp_calls"] <= decided
