"""E20 — corpus fuzzing throughput: seeds/hour at 1 vs N workers, warm skips.

``repro fuzz`` settles one differential case per seed (inference +
chooser + probe exploration), and every settled case lands in the
append-only corpus ledger.  This bench measures the three numbers that
matter operationally:

* cold local throughput (seeds/hour with the in-process runner),
* fleet speedup (the same seed range driven through ``serve --fleet N``
  via the ``/fuzz`` job kind — fuzz cases are embarrassingly parallel
  across seeds, so this should track usable cores), and
* the ledger-warm skip rate (a re-run must answer ~everything from the
  corpus without re-exploring).

Determinism ride-along: the local and fleet corpora are checked
byte-identical (``canonical_bytes``), which is the strongest cheap pin on
the whole pipeline — a worker computing anything differently from the
in-process runner flips the comparison before any verdict test would.

Scaling honesty (same policy as E19): the 2-worker >= 1.3x assertion only
fires with >= 2 usable cores; otherwise the ratio is recorded with the
topology and only a no-collapse floor is asserted.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from benchmarks._report import emit, emit_json, topology
from repro.core.report import format_table
from repro.fuzz.case import SOUND, UNSOUND
from repro.fuzz.ledger import CorpusLedger
from repro.fuzz.runner import FuzzRunner

SEEDS = range(0, 6)
MAX_SCHEDULES = 96
FLEETS = (1, 2)

#: 2-worker speedup target, asserted only with >= 2 usable cores.
SCALING_TARGET = 1.3
#: Everywhere else the fleet must at least not collapse under transport.
NO_COLLAPSE_FLOOR = 0.5
#: A warm re-run does no exploration; it must be at least this much
#: faster than the cold run (in practice it is ~100x).
WARM_SPEEDUP_FLOOR = 5.0


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _serve_env() -> dict:
    import repro

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _canonical(corpus_dir) -> bytes:
    ledger = CorpusLedger(corpus_dir)
    ledger.load()
    return ledger.canonical_bytes()


def _timed_local(corpus_dir) -> dict:
    runner = FuzzRunner(SEEDS, corpus_dir=corpus_dir, probe_schedules=MAX_SCHEDULES)
    start = time.perf_counter()
    summary = runner.run()
    return {"wall_s": time.perf_counter() - start, "summary": summary}


def _timed_fleet(corpus_dir, fleet: int) -> dict:
    port = _free_port()
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--fleet", str(fleet), "--port", str(port), "--no-persist",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
        env=_serve_env(),
    )
    try:
        from repro.service.client import ServiceClient

        ServiceClient(port=port).wait_ready(timeout=60)
        runner = FuzzRunner(
            SEEDS, corpus_dir=corpus_dir, probe_schedules=MAX_SCHEDULES
        )
        start = time.perf_counter()
        summary = runner.run_fleet("127.0.0.1", port, inflight=len(SEEDS))
        wall = time.perf_counter() - start
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)
    return {"wall_s": wall, "summary": summary}


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    base = tmp_path_factory.mktemp("fuzz-bench")
    cold = _timed_local(base / "local")
    warm_start = time.perf_counter()
    warm_summary = FuzzRunner(
        SEEDS, corpus_dir=base / "local", probe_schedules=MAX_SCHEDULES
    ).run()
    warm = {"wall_s": time.perf_counter() - warm_start, "summary": warm_summary}
    fleets = {
        fleet: _timed_fleet(base / f"fleet{fleet}", fleet) for fleet in FLEETS
    }
    corpora = {
        "local": _canonical(base / "local"),
        **{f"fleet{fleet}": _canonical(base / f"fleet{fleet}") for fleet in FLEETS},
    }
    return {"cold": cold, "warm": warm, "fleets": fleets, "corpora": corpora}


def _seeds_per_hour(run: dict) -> float:
    return len(SEEDS) * 3600.0 / run["wall_s"]


def test_bench_fuzz(measurements):
    """Emit the E20 table and BENCH_fuzz.json."""
    machine = topology()
    cold, warm = measurements["cold"], measurements["warm"]
    rows = [
        ("local cold", f"{cold['wall_s']:.1f}", f"{_seeds_per_hour(cold):.0f}",
         str(cold["summary"]["explored"])),
        ("local warm", f"{warm['wall_s']:.2f}", "-",
         str(warm["summary"]["explored"])),
    ]
    fleet_payload = {}
    for fleet in FLEETS:
        run = measurements["fleets"][fleet]
        rows.append(
            (f"fleet {fleet}", f"{run['wall_s']:.1f}",
             f"{_seeds_per_hour(run):.0f}", str(run["summary"]["explored"]))
        )
        fleet_payload[str(fleet)] = {
            "wall_s": round(run["wall_s"], 2),
            "seeds_per_hour": round(_seeds_per_hour(run), 1),
            "remote_errors": run["summary"].get("errors", 0),
        }
    ratio = measurements["fleets"][2]["wall_s"] and (
        _seeds_per_hour(measurements["fleets"][2])
        / _seeds_per_hour(measurements["fleets"][1])
    )
    asserted = machine["usable_cores"] >= 2
    rows.append(("2 vs 1", "-", f"{ratio:.2f}x", "-"))
    emit(
        "E20-fuzz",
        format_table(("topology", "wall s", "seeds/hour", "explored"), rows)
        + f"\nwarm skip rate: {warm['summary']['skip_rate']:.0%}"
        + f"\nscaling 2v1: {ratio:.2f}x"
        f" ({'asserted >= ' + str(SCALING_TARGET) if asserted else 'recorded only: ' + str(machine['usable_cores']) + ' usable cores'})",
    )
    emit_json(
        "BENCH_fuzz",
        {
            "config": {
                "seeds": [SEEDS.start, SEEDS.stop],
                "max_schedules": MAX_SCHEDULES,
                "fleet_sizes": list(FLEETS),
            },
            "local": {
                "cold_wall_s": round(cold["wall_s"], 2),
                "cold_seeds_per_hour": round(_seeds_per_hour(cold), 1),
                "warm_wall_s": round(warm["wall_s"], 3),
                "warm_skip_rate": warm["summary"]["skip_rate"],
            },
            "fleets": fleet_payload,
            "scaling_ratio_2v1": round(ratio, 3),
            "scaling_assertion": (
                f"asserted >= {SCALING_TARGET}" if asserted
                else f"recorded only ({machine['usable_cores']} usable cores < 2)"
            ),
            "verdicts": cold["summary"]["verdicts"],
            "topology": {**machine, "fleet_sizes": list(FLEETS)},
        },
    )


def test_chooser_is_sound_on_the_bench_corpus(measurements):
    """Every transport settles every seed, and none is UNSOUND."""
    for name, run in (
        ("cold", measurements["cold"]),
        *((f"fleet{f}", measurements["fleets"][f]) for f in FLEETS),
    ):
        verdicts = run["summary"]["verdicts"]
        assert sum(verdicts.values()) == len(SEEDS), name
        assert verdicts[UNSOUND] == 0, (name, verdicts)
        assert verdicts[SOUND] >= 1, (name, verdicts)


def test_ledger_warm_rerun_skips_everything(measurements):
    warm = measurements["warm"]["summary"]
    assert warm["explored"] == 0
    assert warm["skip_rate"] == 1.0
    assert (
        measurements["cold"]["wall_s"]
        >= WARM_SPEEDUP_FLOOR * measurements["warm"]["wall_s"]
    )


def test_local_and_fleet_corpora_are_byte_identical(measurements):
    corpora = measurements["corpora"]
    for name, canonical in corpora.items():
        assert canonical == corpora["local"], (
            f"{name} corpus diverged from the local runner's"
        )


def test_fleet_scaling_or_honestly_recorded(measurements):
    ratio = _seeds_per_hour(measurements["fleets"][2]) / _seeds_per_hour(
        measurements["fleets"][1]
    )
    if topology()["usable_cores"] >= 2:
        assert ratio >= SCALING_TARGET, f"2-worker fleet only {ratio:.2f}x"
    else:
        assert ratio >= NO_COLLAPSE_FLOOR, f"fleet collapse: {ratio:.2f}x"
